//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! deterministic (splitmix64 core), which is all the corpus generator and
//! tests require; it makes no cryptographic claims and its streams differ
//! from upstream `rand`'s ChaCha-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Mixing step of splitmix64 (Steele, Lea & Flood 2014).
#[inline]
fn splitmix64(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A source of random `u64`s. Subset of `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value truncated to 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material. Subset of `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`], generic over the
/// sampled type `T` so that integer-literal inference flows from the use
/// site into the range, exactly as in upstream `rand`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if the range is
    /// empty, matching upstream `rand`.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods. Subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: a splitmix64 stream. Unlike
    /// upstream's ChaCha12-based `StdRng` it is not cryptographically
    /// secure, but it is fast, seedable and statistically sound for
    /// corpus synthesis and tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that nearby seeds yield unrelated streams.
            StdRng { state: splitmix64(state ^ 0x6a09_e667_f3bc_c909) }
        }
    }
}

/// Sequence-related helpers. Subset of `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000)).count();
        assert!(same < 16, "streams of adjacent seeds look identical");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 yielded {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
