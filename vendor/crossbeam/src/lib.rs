//! Offline drop-in subset of the `crossbeam` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the one piece of crossbeam it uses: [`thread::scope`] with
//! crossbeam's error-returning contract, implemented over
//! `std::thread::scope` (stable since Rust 1.63).

/// Scoped threads with crossbeam's `Result`-returning API.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the [`scope`] closure; spawns threads
    /// that may borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a [`Scope`]; returns `Err` with the panic payload
    /// if the closure or an unjoined child thread panicked (crossbeam's
    /// contract, where std's `scope` would propagate the panic).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_is_reported_through_join() {
        let out = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        let payload = out.expect_err("panic must surface via join");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v =
            thread::scope(|s| s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap())
                .unwrap();
        assert_eq!(v, 42);
    }
}
