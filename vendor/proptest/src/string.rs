//! Generation of strings matching the regex subset proptest-style
//! string strategies use in this workspace: literals, escapes, character
//! classes with ranges (`[A-Za-z0-9_.\-\\ -~]`), the `\PC` printable
//! class, `.`, and groups/atoms with `?`, `*`, `+` or `{m,n}`
//! repetition. Alternation (`|`) is intentionally unsupported — the test
//! suites express it with `prop_oneof!`.

use crate::TestRng;

/// One parsed regex atom plus its repetition bounds.
#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Lit(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// `\PC` / `.`: any printable character (mostly ASCII, some
    /// multi-byte to exercise UTF-8 boundary handling).
    AnyPrintable,
    /// A parenthesized sub-pattern.
    Group(Vec<Piece>),
}

/// A few multi-byte printable characters mixed into `\PC` output so
/// consumers see non-ASCII UTF-8.
const WIDE: [char; 8] = ['é', 'ü', 'ß', 'Ω', 'ñ', '中', 'я', 'ç'];

/// Generates one string matching `pattern`. Panics on syntax the subset
/// does not cover, which is a bug in the calling test, not user input.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut rest: &[char] = &chars;
    let pieces = parse(&mut rest);
    assert!(rest.is_empty(), "unbalanced ')' in string strategy {pattern:?}");
    let mut out = String::new();
    emit_all(&pieces, rng, &mut out);
    out
}

fn emit_all(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for p in pieces {
        let span = p.max - p.min;
        let n = p.min + if span == 0 { 0 } else { rng.below(u64::from(span) + 1) as u32 };
        for _ in 0..n {
            emit_atom(&p.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|&(a, b)| (b as u64) - (a as u64) + 1).sum();
            let mut pick = rng.below(total);
            for &(a, b) in ranges {
                let size = (b as u64) - (a as u64) + 1;
                if pick < size {
                    out.push(char::from_u32(a as u32 + pick as u32).unwrap_or(a));
                    return;
                }
                pick -= size;
            }
        }
        Atom::AnyPrintable => {
            if rng.chance(0.9) {
                out.push((b' ' + rng.below(95) as u8) as char);
            } else {
                out.push(WIDE[rng.below(WIDE.len() as u64) as usize]);
            }
        }
        Atom::Group(pieces) => emit_all(pieces, rng, out),
    }
}

/// Parses a sequence of pieces until end of input or a closing paren
/// (which is consumed by the caller).
fn parse(input: &mut &[char]) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while let Some(&c) = input.first() {
        if c == ')' {
            break;
        }
        *input = &input[1..];
        let atom = match c {
            '(' => {
                let inner = parse(input);
                match input.first() {
                    Some(')') => *input = &input[1..],
                    _ => panic!("unclosed group in string strategy"),
                }
                Atom::Group(inner)
            }
            '[' => Atom::Class(parse_class(input)),
            '.' => Atom::AnyPrintable,
            '\\' => parse_escape(input),
            c => Atom::Lit(c),
        };
        let (min, max) = parse_repetition(input);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses the body of an escape sequence (after the backslash).
fn parse_escape(input: &mut &[char]) -> Atom {
    let c = *input.first().expect("dangling escape in string strategy");
    *input = &input[1..];
    match c {
        'n' => Atom::Lit('\n'),
        't' => Atom::Lit('\t'),
        'r' => Atom::Lit('\r'),
        'P' | 'p' => {
            // `\PC` (not-control) or `\pL`-style classes: consume the
            // category letter, emit printable characters.
            if !input.is_empty() {
                *input = &input[1..];
            }
            Atom::AnyPrintable
        }
        c => Atom::Lit(c),
    }
}

/// Parses a character class body after `[`, consuming the closing `]`.
fn parse_class(input: &mut &[char]) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = *input.first().expect("unclosed character class in string strategy");
        *input = &input[1..];
        let lo = match c {
            ']' => break,
            '\\' => {
                let e = *input.first().expect("dangling escape in character class");
                *input = &input[1..];
                match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    e => e,
                }
            }
            c => c,
        };
        // A `-` that is neither first ([-...]) nor last ([...-]) marks a
        // range; otherwise it is a literal.
        if input.first() == Some(&'-') && input.get(1).is_some_and(|&n| n != ']') {
            *input = &input[1..];
            let h = *input.first().unwrap();
            *input = &input[1..];
            let hi = if h == '\\' {
                let e = *input.first().expect("dangling escape in character class");
                *input = &input[1..];
                e
            } else {
                h
            };
            assert!(lo <= hi, "inverted class range in string strategy");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "empty character class in string strategy");
    ranges
}

/// Parses an optional repetition suffix; defaults to exactly one.
fn parse_repetition(input: &mut &[char]) -> (u32, u32) {
    match input.first() {
        Some('?') => {
            *input = &input[1..];
            (0, 1)
        }
        Some('*') => {
            *input = &input[1..];
            (0, 8)
        }
        Some('+') => {
            *input = &input[1..];
            (1, 8)
        }
        Some('{') => {
            *input = &input[1..];
            let mut digits = String::new();
            while input.first().is_some_and(|c| c.is_ascii_digit()) {
                digits.push(input[0]);
                *input = &input[1..];
            }
            let min: u32 = digits.parse().expect("malformed repetition");
            let max = match input.first() {
                Some(',') => {
                    *input = &input[1..];
                    let mut digits = String::new();
                    while input.first().is_some_and(|c| c.is_ascii_digit()) {
                        digits.push(input[0]);
                        *input = &input[1..];
                    }
                    if digits.is_empty() {
                        min + 8
                    } else {
                        digits.parse().expect("malformed repetition")
                    }
                }
                _ => min,
            };
            match input.first() {
                Some('}') => *input = &input[1..],
                _ => panic!("unclosed repetition in string strategy"),
            }
            (min, max)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(0xfeed, 0)
    }

    #[test]
    fn literal_and_class_patterns() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_matching("[TCSL#X]", &mut rng);
            assert_eq!(s.chars().count(), 1);
            assert!("TCSL#X".contains(&s));
        }
        for _ in 0..50 {
            let s = generate_matching("[a-z]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn space_to_tilde_range_and_escapes() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching("[ -~\\n\\t]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
        for _ in 0..50 {
            let s = generate_matching("[a-z0-9.\\-\\\\]{0,10}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-\\".contains(c)));
        }
    }

    #[test]
    fn printable_class_is_printable_utf8() {
        let mut rng = rng();
        let mut saw_multibyte = false;
        for _ in 0..60 {
            let s = generate_matching("\\PC{0,100}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
            saw_multibyte |= s.bytes().any(|b| b >= 0x80);
        }
        assert!(saw_multibyte, "\\PC never produced multi-byte UTF-8");
    }

    #[test]
    fn groups_with_repetition_and_option() {
        let mut rng = rng();
        for _ in 0..60 {
            let s = generate_matching("[a-z]{1,8}( [a-z]{1,8}){0,6}", &mut rng);
            for word in s.split(' ') {
                assert!((1..=8).contains(&word.len()), "{s:?}");
            }
        }
        for _ in 0..60 {
            let s = generate_matching("[A-Z][a-z]{1,6}( [A-Z][a-z]{1,6})?", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!(words.len() <= 2);
            for w in words {
                assert!(w.chars().next().unwrap().is_ascii_uppercase());
            }
        }
    }

    #[test]
    fn same_rng_state_reproduces() {
        let a = generate_matching("[A-Za-z_][A-Za-z0-9_]{0,12}", &mut TestRng::for_case(5, 9));
        let b = generate_matching("[A-Za-z_][A-Za-z0-9_]{0,12}", &mut TestRng::for_case(5, 9));
        assert_eq!(a, b);
    }
}
