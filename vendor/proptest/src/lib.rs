//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its test suites use: the [`proptest!`]
//! macro with `proptest_config`, [`prop_assert!`] / [`prop_assert_eq!`],
//! the [`Strategy`] trait with `prop_map`, [`prop_oneof!`], [`Just`],
//! `any::<T>()`, numeric-range and regex-string strategies,
//! `prop::collection::vec`, `prop::option::of` and
//! `prop::sample::Index`.
//!
//! Semantics: each test runs `cases` deterministic inputs derived from
//! the test's name (reproducible across runs and machines). Failing
//! cases are reported with their case number; there is no shrinking.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod string;

/// Mixing step of splitmix64.
#[inline]
fn splitmix64(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic generator driving value production.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test-identity hash and a case number.
    pub fn for_case(seed: u64, case: u64) -> Self {
        TestRng { state: splitmix64(seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// Next raw value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// FNV-1a hash of a test name, used to seed its deterministic cases.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a test case failed; produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with an explanatory message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals are regex-subset strategies, as in proptest.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0);
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11);

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`]; the coercion helper
/// behind [`prop_oneof!`].
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// `any::<T>()` support: types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Yields the canonical strategy for the type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<T>);

/// Canonical full-domain strategy for `T`, e.g. `any::<bool>()`.
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    A::arbitrary()
}

macro_rules! arbitrary_via {
    ($t:ty, $gen:expr) => {
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy(PhantomData)
            }
        }
        impl Strategy for ArbitraryStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                #[allow(clippy::redundant_closure_call)]
                ($gen)(rng)
            }
        }
    };
}

arbitrary_via!(bool, |rng: &mut TestRng| rng.next_u64() & 1 == 1);
arbitrary_via!(u8, |rng: &mut TestRng| rng.next_u64() as u8);
arbitrary_via!(u16, |rng: &mut TestRng| rng.next_u64() as u16);
arbitrary_via!(u32, |rng: &mut TestRng| rng.next_u64() as u32);
arbitrary_via!(u64, |rng: &mut TestRng| rng.next_u64());
arbitrary_via!(usize, |rng: &mut TestRng| rng.next_u64() as usize);
arbitrary_via!(i8, |rng: &mut TestRng| rng.next_u64() as i8);
arbitrary_via!(i16, |rng: &mut TestRng| rng.next_u64() as i16);
arbitrary_via!(i32, |rng: &mut TestRng| rng.next_u64() as i32);
arbitrary_via!(i64, |rng: &mut TestRng| rng.next_u64() as i64);
arbitrary_via!(f64, |rng: &mut TestRng| rng.unit_f64());
arbitrary_via!(f32, |rng: &mut TestRng| rng.unit_f64() as f32);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the length argument of [`vec()`].
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector strategy: `vec(elem, 0..40)` or `vec(elem, 3)`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `Some` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.chance(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, ArbitraryStrategy, Strategy, TestRng};
    use std::marker::PhantomData;

    /// An index into a collection whose length is only known at use
    /// time; obtained via `any::<prop::sample::Index>()`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary() -> ArbitraryStrategy<Index> {
            ArbitraryStrategy(PhantomData)
        }
    }

    impl Strategy for ArbitraryStrategy<Index> {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The `prop::` namespace as test files spell it.
pub mod prop {
    pub use crate::{collection, option, sample};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::for_case(seed, case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_domain() {
        let mut rng = crate::TestRng::for_case(1, 0);
        let s = prop_oneof![Just(0u32), 5u32..10];
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v == 0 || (5..10).contains(&v), "{v}");
        }
    }

    #[test]
    fn vec_and_option_shapes() {
        let mut rng = crate::TestRng::for_case(2, 0);
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0i32..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..4).contains(x)));
            let fixed = Strategy::generate(&prop::collection::vec(any::<bool>(), 3usize), &mut rng);
            assert_eq!(fixed.len(), 3);
        }
        let somes = (0..400)
            .filter(|_| Strategy::generate(&prop::option::of(0u8..9), &mut rng).is_some())
            .count();
        assert!((120..280).contains(&somes), "Some rate skewed: {somes}/400");
    }

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = crate::TestRng::for_case(3, 0);
        for _ in 0..100 {
            let ix = Strategy::generate(&any::<prop::sample::Index>(), &mut rng);
            assert!(ix.index(7) < 7);
            assert_eq!(ix.index(1), 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = ("[a-z]{1,8}", 0u64..50, any::<bool>());
        let a = Strategy::generate(&s, &mut crate::TestRng::for_case(9, 4));
        let b = Strategy::generate(&s, &mut crate::TestRng::for_case(9, 4));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies to arguments and runs bodies.
        #[test]
        fn macro_generates_and_checks(x in 0u32..10, v in prop::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|&b| b < 3), "bad elem in {:?}", v);
        }
    }

    proptest! {
        /// Default-config form parses too.
        #[test]
        fn macro_default_config(flag in any::<bool>()) {
            prop_assert_eq!(flag as u8 & 1, flag as u8);
        }
    }
}
