//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain wall-clock mean over
//! `sample_size` samples — adequate for the relative comparisons the
//! experiment tables make, without criterion's statistical machinery.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { name: name.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean wall-clock duration of one iteration, filled by [`iter`].
    ///
    /// [`iter`]: Bencher::iter
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean duration over the configured
    /// number of samples (plus a small warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { sample_size: self.criterion.sample_size, mean: Duration::ZERO };
        f(&mut b);
        println!("bench {:<40} {:>12.3?}", format!("{}/{}", self.name, id), b.mean);
    }

    /// Benchmarks `f` under `id` within this group. `id` may be a
    /// `&str`, `String` or [`BenchmarkId`], as in criterion proper.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { sample_size: self.sample_size, mean: Duration::ZERO };
        f(&mut b);
        println!("bench {:<40} {:>12.3?}", id, b.mean);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lookup", 10_000).to_string(), "lookup/10000");
    }
}
