//! Quickstart: generate a synthetic corpus, harvest a knowledge base
//! from it, and query the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig, Method};
use kbkit::kb_store::{ntriples, KbRead, TriplePattern};

fn main() {
    // 1. Generate a deterministic synthetic world + corpus (the stand-in
    //    for Wikipedia/web sources; see DESIGN.md).
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    println!(
        "corpus: {} entities, {} gold facts, {} documents",
        corpus.world.entities.len(),
        corpus.world.facts.len(),
        corpus.all_docs().len()
    );

    // 2. Harvest: taxonomy induction + distant-supervised pattern
    //    extraction + MaxSat consistency reasoning.
    let cfg = HarvestConfig { method: Method::Reasoning, ..Default::default() };
    let out = harvest(&corpus, &cfg).expect("harvest");
    println!("\nharvest: {}", "-".repeat(40));
    println!("{}", out.kb.stats());

    // 3. Query the knowledge base.
    let kb = &out.kb;
    if let Some(born_in) = kb.term("bornIn") {
        let births = kb.matching(&TriplePattern::with_p(born_in));
        println!("\nfirst harvested birthplaces:");
        for fact in births.iter().take(5) {
            println!(
                "  {} bornIn {}   (confidence {:.2}{})",
                kb.resolve(fact.triple.s).unwrap_or("?"),
                kb.resolve(fact.triple.o).unwrap_or("?"),
                fact.confidence,
                fact.span.map(|s| format!(", {s}")).unwrap_or_default()
            );
        }
    }

    // 4. Taxonomy queries.
    if let (Some(ent), Some(person)) = (kb.term("entrepreneur"), kb.term("person")) {
        println!("\nentrepreneur ⊑ person: {}", kb.taxonomy.is_subclass_of(ent, person));
    }

    // 5. Serialize and reload.
    let dump = ntriples::to_string(kb).expect("serialize");
    let reloaded = ntriples::from_str(&dump).expect("parse");
    println!(
        "\nserialized {} bytes; reloaded KB has {} facts (round-trip ok: {})",
        dump.len(),
        reloaded.len(),
        reloaded.len() == kb.len()
    );
}
