//! The tutorial's §4 motivating example: track and compare two rival
//! products in a social-media stream over several months.
//!
//! ```text
//! cargo run --release --example entity_tracking
//! ```

use kbkit::kb_analytics::exec::{aggregate_parallel, tracked_by_query};
use kbkit::kb_analytics::stream::from_corpus;
use kbkit::kb_analytics::{ComparisonReport, StreamPost, Tracker};
use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig, Method};
use kbkit::kb_ned::Ned;
use kbkit::kb_store::KbRead;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let world = &corpus.world;

    // Build the KB the tracker will resolve mentions against.
    let out = harvest(&corpus, &HarvestConfig { method: Method::Reasoning, ..Default::default() })
        .expect("harvest");
    let kb = &out.kb;

    // NED engine with anchor statistics from the corpus articles.
    let mut ned = Ned::new(kb);
    for doc in corpus.all_docs() {
        for m in &doc.mentions {
            if let Some(term) = kb.term(&world.entity(m.entity).canonical) {
                ned.add_anchor(&m.surface, term);
            }
        }
    }
    ned.finalize();

    // Track the two rival flagship phones.
    let (pa, pb) = world.rival_products;
    let name_a = &world.entity(pa).display;
    let name_b = &world.entity(pb).display;
    let term_a = kb.term(&world.entity(pa).canonical).expect("A in KB");
    let term_b = kb.term(&world.entity(pb).canonical).expect("B in KB");
    println!("tracking {name_a} vs {name_b} over {} posts...", corpus.posts.len());

    // Select the tracked set declaratively: every product some company
    // created. Falls back to the explicit pair if the tiny harvest
    // missed the `created` facts for either rival.
    let mut tracker = tracked_by_query(&ned, kb, "SELECT DISTINCT ?p WHERE { ?co created ?p }")
        .unwrap_or_else(|_| Tracker::new(&ned, vec![]));
    for t in [term_a, term_b] {
        if !tracker.tracked.contains(&t) {
            tracker.tracked.push(t);
        }
    }
    let posts: Vec<StreamPost> = corpus.posts.iter().map(from_corpus).collect();
    let series = aggregate_parallel(&tracker, kb, &posts, 4);

    let report =
        ComparisonReport::new(name_a, series[&term_a].clone(), name_b, series[&term_b].clone());
    println!("\n{report}");
}
