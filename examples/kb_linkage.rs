//! Entity linkage demo: deduplicate two record dumps of the same world,
//! then materialize the resulting `owl:sameAs` classes in a KB.
//!
//! ```text
//! cargo run --release --example kb_linkage
//! ```

use kbkit::kb_corpus::gold::linkage_dump;
use kbkit::kb_corpus::{CorpusConfig, World};
use kbkit::kb_link::blocking::{blocking_quality, candidate_pairs, Blocking};
use kbkit::kb_link::cluster::cluster_with_constraints;
use kbkit::kb_link::logreg::{LogRegMatcher, TrainConfig};
use kbkit::kb_link::record::from_corpus;
use kbkit::kb_store::{KbRead, KnowledgeBase};

fn main() {
    let world = World::generate(&CorpusConfig::tiny().world);
    let dump = linkage_dump(&world, 99);
    let records: Vec<_> = dump.records.iter().map(from_corpus).collect();
    println!(
        "two dumps: {} records total, {} gold duplicate pairs",
        records.len(),
        dump.gold_pairs.len()
    );

    // 1. Blocking.
    let pairs = candidate_pairs(&records, Blocking::Token);
    let q = blocking_quality(&pairs, &dump.gold_pairs);
    println!(
        "token blocking: {} candidate pairs (full cross product would be {}), pair recall {:.3}",
        q.pairs,
        records.iter().filter(|r| r.source == 0).count()
            * records.iter().filter(|r| r.source == 1).count(),
        q.pair_recall
    );

    // 2. Train a matcher on half the candidates, apply to the rest.
    let by_id: std::collections::HashMap<u32, _> = records.iter().map(|r| (r.id, r)).collect();
    let labeled: Vec<_> = pairs
        .iter()
        .step_by(2)
        .map(|&(a, b)| (by_id[&a], by_id[&b], dump.gold_pairs.contains(&(a, b))))
        .collect();
    let model = LogRegMatcher::train(&labeled, &TrainConfig::default());
    let matched: Vec<(u32, u32)> =
        pairs.iter().copied().filter(|&(a, b)| model.matches(by_id[&a], by_id[&b])).collect();
    println!("learned matcher accepted {} pairs", matched.len());

    // 3. Constrained transitive closure.
    let clusters = cluster_with_constraints(&records, &matched, true);
    println!("clustering refused {} constraint-violating merges", clusters.refused_merges);

    // 4. Materialize sameAs in a KB.
    let mut kb = KnowledgeBase::new();
    let terms: Vec<_> =
        records.iter().map(|r| kb.intern(&format!("src{}:{}", r.source, r.name))).collect();
    for (i, a) in records.iter().enumerate() {
        for (j, b) in records.iter().enumerate().skip(i + 1) {
            if clusters.same(a.id, b.id) {
                kb.sameas.declare(terms[i], terms[j]);
            }
        }
    }
    println!("\nfirst sameAs classes:");
    for class in kb.sameas.classes().iter().take(5) {
        let names: Vec<&str> = class.iter().filter_map(|&t| kb.resolve(t)).collect();
        println!("  {}", names.join("  ≡  "));
    }
}
