//! Named entity disambiguation demo: how prior, context and coherence
//! signals resolve an ambiguous surname differently.
//!
//! ```text
//! cargo run --release --example ned_demo
//! ```

use kbkit::kb_ned::{Ned, Strategy};
use kbkit::kb_store::{KbRead, KnowledgeBase};

fn main() {
    // A miniature KB with two people called "Varen":
    //  * Alan Varen, entrepreneur, founded AcmeCo, lives in Lundholm;
    //  * Bea Varen, musician, plays with the Torberg Philharmonic.
    let mut kb = KnowledgeBase::new();
    let alan = kb.intern("Alan_Varen");
    let bea = kb.intern("Bea_Varen");
    let acme = kb.intern("AcmeCo");
    let phil = kb.intern("Torberg_Philharmonic");
    let lund = kb.intern("Lundholm");
    let founded = kb.intern("founded");
    let plays = kb.intern("playsWith");
    let lives = kb.intern("livesIn");
    kb.add_triple(alan, founded, acme);
    kb.add_triple(alan, lives, lund);
    kb.add_triple(bea, plays, phil);
    let en = kb.labels.lang("en");
    kb.labels.add(alan, en, "Varen");
    kb.labels.add(alan, en, "Alan Varen");
    kb.labels.add(bea, en, "Varen");
    kb.labels.add(bea, en, "Bea Varen");
    kb.labels.add(acme, en, "AcmeCo");
    kb.labels.add(lund, en, "Lundholm");

    let mut ned = Ned::new(&kb);
    // Anchor statistics: the musician is mentioned more often overall,
    // so the popularity prior favors her.
    ned.add_anchor("Varen", bea);
    ned.add_anchor("Varen", bea);
    ned.add_anchor("Varen", bea);
    ned.add_anchor("Varen", alan);
    ned.add_anchor("AcmeCo", acme);
    ned.add_anchor("Lundholm", lund);
    ned.finalize();

    let text = "Varen spoke about AcmeCo and life in Lundholm.";
    println!("text: {text:?}\n");
    let mention = (0usize, 5usize); // "Varen"
    let all_mentions = [(0usize, 5usize), (18, 24), (37, 45)];

    for (label, strategy, mentions) in [
        ("prior only        ", Strategy::Prior, &all_mentions[..1]),
        ("prior + context   ", Strategy::Context, &all_mentions[..1]),
        ("joint + coherence ", Strategy::Coherence, &all_mentions[..]),
    ] {
        let out = ned.disambiguate(text, mentions, strategy);
        let resolved = out[0].and_then(|t| kb.resolve(t)).unwrap_or("<none>");
        println!("{label} -> \"Varen\" resolves to {resolved}");
    }
    let _ = mention;

    println!("\nThe prior picks the popular musician; context words (AcmeCo,");
    println!("Lundholm) and coherence with the co-occurring mentions flip the");
    println!("decision to the entrepreneur — the tutorial's NED recipe.");
}
