//! Open information extraction demo: harvest arbitrary SPO triples from
//! the corpus with no pre-specified relation vocabulary, then show the
//! mined relation-phrase inventory.
//!
//! ```text
//! cargo run --release --example open_ie
//! ```

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::openie::{extract_open, relation_inventory, OpenIeConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let docs = corpus.all_docs();
    println!("running Open IE over {} documents...", docs.len());

    let facts = extract_open(&docs, &OpenIeConfig::default());
    println!("extracted {} open facts\n", facts.len());

    println!("top extractions by confidence:");
    for f in facts.iter().take(10) {
        println!(
            "  ({:<22} | {:<16} | {:<22})  conf {:.2}   [\"{}\"]",
            f.arg1, f.relation, f.arg2, f.confidence, f.relation_surface
        );
    }

    println!("\nmined relation-phrase inventory (distinct arg pairs):");
    for (phrase, pairs) in relation_inventory(&facts).into_iter().take(12) {
        println!("  {pairs:>4}  {phrase}");
    }

    println!(
        "\nUnlike closed IE, none of these phrases were pre-specified — they\n\
         were discovered from verb phrases and kept by the lexical\n\
         constraint (each must occur with ≥2 distinct argument pairs)."
    );
}
