//! Conjunctive queries over a harvested knowledge base — the "semantic
//! search over entities and relations" the tutorial motivates.
//!
//! ```text
//! cargo run --release --example kb_query
//! ```

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_store::query::query;
use kbkit::kb_store::KbRead;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    let kb = &out.kb;
    println!("harvested KB: {} facts\n", kb.len());

    // Pick a country that actually has harvested residents so the demo
    // always shows results.
    let country = kb
        .matching(&kbkit::kb_store::TriplePattern::with_p(
            kb.term("locatedIn").expect("locatedIn harvested"),
        ))
        .first()
        .map(|f| kb.resolve(f.triple.o).unwrap().to_string())
        .expect("some city is located somewhere");

    let queries = [
        // Who was born in cities of that country?
        format!("?p bornIn ?city . ?city locatedIn {country}"),
        // Founders and where their companies are headquartered.
        "?founder founded ?co . ?co headquarteredIn ?city".to_string(),
        // Married couples who studied at the same university.
        "?a marriedTo ?b . ?a studiedAt ?u . ?b studiedAt ?u".to_string(),
    ];
    // Keep only queries whose constant relations were actually harvested
    // on this corpus (tiny corpora may miss rare paraphrase patterns).
    let queries: Vec<String> = queries
        .into_iter()
        .filter(|q| {
            q.split_whitespace()
                .filter(|tok| !tok.starts_with('?') && *tok != ".")
                .all(|tok| kb.term(tok).is_some())
        })
        .collect();
    for q in &queries {
        println!("query: {q}");
        match query(kb, q) {
            Ok(solutions) => {
                println!("  {} solutions", solutions.len());
                for b in solutions.iter().take(4) {
                    let rendered: Vec<String> = b
                        .iter_sorted()
                        .into_iter()
                        .map(|(var, term)| format!("?{var} = {}", kb.resolve(term).unwrap_or("?")))
                        .collect();
                    println!("    {}", rendered.join(", "));
                }
            }
            Err(e) => println!("  error: {e}"),
        }
        println!();
    }
}
