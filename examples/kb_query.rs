//! SPARQL-style queries over a harvested knowledge base — the
//! "semantic search over entities and relations" the tutorial
//! motivates, served by the `kb-query` engine (parser → cost-based
//! planner → concurrent service).
//!
//! ```text
//! cargo run --release --example kb_query
//! ```

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_query::QueryService;
use kbkit::kb_store::KbRead;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    println!("harvested KB: {} facts\n", out.kb.len());

    let snap = out.kb.into_snapshot().into_shared();
    let service = QueryService::new(snap.clone());

    // Generic joins with no constants always parse and run, whatever
    // the tiny corpus happened to harvest — no fragile dictionary
    // lookups needed up front.
    let mut queries = vec![
        "SELECT ?p ?city ?country WHERE { ?p bornIn ?city . ?city locatedIn ?country } LIMIT 20"
            .to_string(),
        "SELECT ?founder ?co ?city WHERE { ?founder founded ?co . ?co headquarteredIn ?city }"
            .to_string(),
        "SELECT DISTINCT ?a ?b WHERE { ?a marriedTo ?b . ?a studiedAt ?u . ?b studiedAt ?u }"
            .to_string(),
        "SELECT ?country COUNT(?p) AS ?n WHERE { ?p bornIn ?city . ?city locatedIn ?country } \
         GROUP BY ?country ORDER BY DESC(?n) ?country"
            .to_string(),
    ];

    // Derive a constant-bound query from actual results: take the first
    // country the generic join produced, so this query is populated by
    // construction.
    if let Ok(seed) = service.query("SELECT ?country WHERE { ?c locatedIn ?country } LIMIT 1") {
        if let Some(row) = seed.rows.first() {
            let country = kbkit::kb_query::cell_str(&row[0], snap.as_ref()).into_owned();
            queries.push(format!(
                "SELECT ?p ?city WHERE {{ ?p bornIn ?city . ?city locatedIn {country} \
                 OPTIONAL {{ ?p worksAt ?e }} }} ORDER BY ?p LIMIT 10"
            ));
        }
    }

    for q in &queries {
        println!("query: {q}");
        match service.plan_for(q) {
            Ok(plan) => {
                println!("  plan (estimated cost {:.1}):", plan.estimated_cost());
                for line in plan.explain() {
                    println!("    {line}");
                }
            }
            Err(e) => {
                println!("  plan error: {e}\n");
                continue;
            }
        }
        match service.query(q) {
            Ok(out) => {
                println!("  {} solutions", out.rows.len());
                for row in out.rows.iter().take(4) {
                    println!("    {}", out.render_row(row, snap.as_ref()));
                }
            }
            Err(e) => println!("  error: {e}"),
        }
        println!();
    }

    // The second run of each query is a pure cache hit.
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let _ = service.serve_batch(&refs, 4);
    let stats = service.cache_stats();
    println!(
        "cache: {} result hits, {} misses; {} plan hits, {} misses",
        stats.result_hits, stats.result_misses, stats.plan_hits, stats.plan_misses
    );
}
