//! AMIE-style rule mining and KB completion: mine Horn rules from the
//! harvested knowledge base, inspect them, and let them predict facts
//! the extractors missed.
//!
//! ```text
//! cargo run --release --example rule_mining
//! ```

use kbkit::kb_corpus::{gold, Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_harvest::rules::{apply_rules, mine_rules, RuleConfig};
use kbkit::kb_store::KbRead;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    let kb = &out.kb;
    println!("harvested KB: {} facts", kb.len());

    let cfg = RuleConfig {
        min_support: 4,
        min_pca_confidence: 0.6,
        min_std_confidence: 0.4,
        ..Default::default()
    };
    let rules = mine_rules(kb, &cfg);
    println!("\nmined {} rules:", rules.len());
    for rule in rules.iter().take(10) {
        println!("  {rule}");
    }

    let predictions = apply_rules(kb, &rules, &cfg);
    let gold_facts = gold::gold_fact_strings(&corpus.world);
    let correct = predictions
        .iter()
        .filter(|p| gold_facts.contains(&(p.subject.clone(), p.relation.clone(), p.object.clone())))
        .count();
    println!(
        "\nrule-based completion: {} predicted facts, {} verified against gold ({:.0}%)",
        predictions.len(),
        correct,
        if predictions.is_empty() {
            0.0
        } else {
            100.0 * correct as f64 / predictions.len() as f64
        }
    );
    for p in predictions.iter().take(6) {
        let mark =
            if gold_facts.contains(&(p.subject.clone(), p.relation.clone(), p.object.clone())) {
                "✓"
            } else {
                "✗"
            };
        println!("  {mark} {} {} {}", p.subject, p.relation, p.object);
    }
}
