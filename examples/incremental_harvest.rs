//! Incremental harvest: bootstrap a base snapshot from part of the
//! corpus, then install the rest as delta segments on a live
//! `QueryService` — queries keep serving throughout, and results whose
//! predicates a delta never touches stay cached across installs.
//!
//! ```text
//! cargo run --release --example incremental_harvest
//! ```

use std::sync::Arc;
use std::time::Instant;

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{HarvestConfig, IncrementalHarvester, Method};
use kbkit::kb_query::QueryService;
use kbkit::kb_store::KbRead;

fn main() {
    // 1. Generate a corpus and hold ~30% of the articles back — they
    //    play the role of documents that arrive after the first build.
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let split = corpus.articles.len() * 7 / 10;
    let boot = Corpus {
        world: corpus.world.clone(),
        articles: corpus.articles[..split].to_vec(),
        overviews: corpus.overviews.clone(),
        web_pages: corpus.web_pages.clone(),
        essays: corpus.essays.clone(),
        posts: Vec::new(),
    };

    // 2. Bootstrap: full harvest over the initial documents, keeping
    //    the trained pattern model + type index for later batches.
    let cfg = HarvestConfig { method: Method::Statistical, ..Default::default() };
    let (harvester, out) = IncrementalHarvester::bootstrap(&boot, &cfg).expect("bootstrap");
    let base = out.kb.snapshot().into_shared();
    println!("base snapshot: {} facts from {} articles", base.len(), split);

    // 3. Serve queries against the base, warming the result cache.
    //    `instanceOf` facts come from the bootstrap taxonomy only, so
    //    that entry's footprint is untouched by every later delta.
    let service = QueryService::new(base);
    let warm = "SELECT DISTINCT ?c WHERE { ?p bornIn ?c }";
    let stable = "SELECT DISTINCT ?c WHERE { ?x instanceOf ?c }";
    let before = service.query(warm).expect("warm query");
    service.query(stable).expect("stable query");
    println!("warm query: {} distinct birthplaces", before.rows.len());

    // 4. Late-arriving documents land as delta segments: each batch is
    //    extracted with the frozen model, frozen against the current
    //    view, and installed without rebuilding the base.
    for (i, chunk) in corpus.articles[split..].chunks(4).enumerate() {
        let refs: Vec<_> = chunk.iter().collect();
        let view = service.snapshot();
        let outcome = harvester.harvest_batch(&corpus.world, &refs, &view).expect("harvest batch");
        let t = Instant::now();
        service.apply_delta(Arc::new(outcome.delta));
        println!(
            "delta {i}: {} docs → {} facts, installed in {:.2?}",
            chunk.len(),
            outcome.accepted,
            t.elapsed()
        );
    }

    // 5. The cache kept entries whose predicate footprint no delta
    //    touched; invalidation was scoped, not wholesale.
    let stats = service.cache_stats();
    println!(
        "cache across {} delta installs: {} results retained, {} invalidated",
        stats.delta_installs, stats.result_retained, stats.result_invalidated
    );

    // 6. New facts are queryable immediately; compaction folds the
    //    stack back into one monolithic snapshot when the ratio says so.
    let after = service.query(warm).expect("post-delta query");
    let view = service.snapshot();
    println!(
        "after deltas: {} distinct birthplaces, {} live facts across {} segment(s)",
        after.rows.len(),
        view.len(),
        1 + view.delta_count()
    );
    let compacted = view.compact();
    println!("compacted: {} facts in one segment", compacted.len());
}
