//! # kb-obs
//!
//! The workspace's observability substrate: lock-free [`Counter`] /
//! [`Gauge`] atomics, a fixed-bucket [`Histogram`] with p50/p95/p99
//! readout, a scoped [`SpanTimer`] driven by an injectable [`Clock`],
//! and a [`Registry`] that catalogs metrics by name and renders them as
//! an aligned text table or a stable JSON object.
//!
//! Deliberately dependency-free (not even the vendored crates): the
//! write path is a handful of relaxed atomics, the read path is a
//! `Mutex`-guarded `BTreeMap` walk, and determinism comes from the
//! [`Clock`] trait — production uses [`WallClock`], tests use
//! [`ManualClock`] and never touch wall-clock time. See DESIGN.md
//! "Observability" for the metric naming scheme and the rationale for
//! not pulling in an external metrics crate.
//!
//! ```
//! use kb_obs::{ManualClock, Registry};
//! use std::sync::Arc;
//!
//! let clock = ManualClock::shared(0);
//! let reg = Registry::with_clock(clock.clone());
//! reg.counter("demo.events").inc();
//! {
//!     let _span = reg.span("demo.step_us");
//!     clock.advance(250);
//! } // records 250 µs on drop
//! assert!(reg.render_text().contains("demo.events"));
//! assert!(reg.render_json().contains("\"demo.events\":1"));
//! ```

mod clock;
mod metrics;
mod registry;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, SpanTimer, LATENCY_BUCKETS_US};
pub use registry::{global, Registry};
