//! The metric primitives: lock-free [`Counter`] and [`Gauge`] atomics,
//! a fixed-bucket [`Histogram`] with cheap quantile readout, and the
//! scoped [`SpanTimer`] that records a duration on drop.
//!
//! All primitives are wait-free on the write path (a handful of relaxed
//! atomic adds), so instrumenting a hot loop costs nanoseconds and
//! never introduces a lock that could perturb the thing being measured.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::Clock;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (registry-wide resets between CLI phases).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (sizes, depths, watermarks).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Default bucket upper bounds for latency histograms, in microseconds:
/// a 1-2-5 ladder from 1 µs to 10 s. Values above the last bound land
/// in an implicit overflow bucket.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// A point-in-time view of a histogram, with the standard percentile
/// readouts. Produced by [`Histogram::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples observed.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Median (bucket upper bound containing the 50th percentile).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// A fixed-bucket histogram: `bounds.len()` buckets of `value <=
/// bounds[i]`, plus one overflow bucket. Observation is two relaxed
/// atomic adds plus a binary search over the (small, immutable) bound
/// array; quantiles are read by walking the cumulative counts.
///
/// Quantiles are reported as the *upper bound* of the bucket holding
/// the requested rank (the overflow bucket reports the last finite
/// bound), so readouts are conservative within one bucket's resolution
/// — plenty for p50/p95/p99 dashboards, and entirely deterministic.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    counts: Box<[AtomicU64]>, // bounds.len() + 1 (overflow)
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// A histogram over the given strictly increasing bucket bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self { bounds: bounds.into(), counts, sum: AtomicU64::new(0), total: AtomicU64::new(0) }
    }

    /// A histogram with the default microsecond latency ladder
    /// ([`LATENCY_BUCKETS_US`]).
    pub fn latency() -> Self {
        Self::new(LATENCY_BUCKETS_US)
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples observed so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), or 0 for an empty histogram. The overflow
    /// bucket reports the last finite bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Count, sum and p50/p95/p99 in one read.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Resets every bucket to zero.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// A scoped timer: reads the injected [`Clock`] at construction and
/// records the elapsed microseconds into its histogram when dropped (or
/// explicitly [`stop`](SpanTimer::stop)ped).
///
/// ```
/// use std::sync::Arc;
/// use kb_obs::{Histogram, ManualClock, SpanTimer};
///
/// let clock = ManualClock::shared(0);
/// let hist = Arc::new(Histogram::latency());
/// {
///     let _span = SpanTimer::start(clock.clone(), hist.clone());
///     clock.advance(42);
/// } // drop records 42 µs
/// assert_eq!(hist.count(), 1);
/// assert_eq!(hist.sum(), 42);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    clock: Arc<dyn Clock>,
    hist: Arc<Histogram>,
    start: u64,
    stopped: bool,
}

impl SpanTimer {
    /// Starts timing now (per `clock`).
    pub fn start(clock: Arc<dyn Clock>, hist: Arc<Histogram>) -> Self {
        let start = clock.now_micros();
        Self { clock, hist, start, stopped: false }
    }

    /// Ends the span early, recording and returning the elapsed
    /// microseconds.
    pub fn stop(mut self) -> u64 {
        self.stopped = true;
        let elapsed = self.clock.now_micros().saturating_sub(self.start);
        self.hist.observe(elapsed);
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.stopped {
            let elapsed = self.clock.now_micros().saturating_sub(self.start);
            self.hist.observe(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10] {
            h.observe(v); // <= 10
        }
        for v in [11, 50] {
            h.observe(v); // <= 100
        }
        h.observe(5000); // overflow
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 5 + 10 + 11 + 50 + 5000);
        assert_eq!(h.quantile(0.5), 10); // rank 3 of 6 → first bucket
        assert_eq!(h.quantile(0.75), 100); // rank 5 → second bucket
        assert_eq!(h.quantile(0.99), 1000); // overflow reports last bound
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::latency();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot { count: 0, sum: 0, p50: 0, p95: 0, p99: 0 });
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn span_timer_records_on_drop_with_injected_clock() {
        let clock = ManualClock::shared(1_000);
        let hist = Arc::new(Histogram::latency());
        {
            let _span = SpanTimer::start(clock.clone(), hist.clone());
            clock.advance(250);
        }
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 250);
        assert_eq!(hist.quantile(0.5), 500); // 250 lands in the (200, 500] bucket
    }

    #[test]
    fn span_timer_stop_returns_elapsed() {
        let clock = ManualClock::shared(0);
        let hist = Arc::new(Histogram::latency());
        let span = SpanTimer::start(clock.clone(), hist.clone());
        clock.advance(7);
        assert_eq!(span.stop(), 7);
        assert_eq!(hist.count(), 1, "stop must record exactly once");
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = Arc::new(Histogram::new(&[1_000]));
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for v in 0..1_000 {
                        h.observe(v % 7);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
        assert_eq!(c.get(), 4_000);
    }
}
