//! The metric registry: a named catalog of counters, gauges and
//! histograms that renders as an aligned text table (for humans) and a
//! stable JSON object (for machines — the CI schema check and the bench
//! harness blobs parse this form).
//!
//! ## Naming scheme
//!
//! Metric names are `layer.component.metric`, lowercase with
//! underscores inside a segment: `harvest.facts.accepted`,
//! `store.snapshot.freeze_us`, `query.cache.result_hits`. Histograms of
//! durations carry a `_us` suffix (all spans record microseconds).
//!
//! ## Two registration styles
//!
//! * **Get-or-create** ([`counter`](Registry::counter) /
//!   [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram)):
//!   free functions deep in a pipeline share one handle per name. Used
//!   by the harvest and storage layers.
//! * **Register-replace** ([`register_counter`](Registry::register_counter)
//!   and friends): a component that *owns* its metric instances (so its
//!   own readouts stay exact even when several instances coexist, as in
//!   parallel tests) publishes them under a name, displacing whatever
//!   was there. Used by `QueryService`.
//!
//! The process-global registry is [`global()`]; deterministic tests
//! build a private `Registry` (usually via [`Registry::with_clock`] and
//! a [`ManualClock`](crate::ManualClock)) instead.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::{Clock, WallClock};
use crate::metrics::{Counter, Gauge, Histogram, SpanTimer};

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named catalog of metrics plus the clock every
/// [`span`](Registry::span) reads. See the module docs for the naming
/// scheme and the two registration styles.
#[derive(Debug)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    clock: Mutex<Arc<dyn Clock>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry on the real ([`WallClock`]) clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock))
    }

    /// An empty registry on an injected clock (tests pass a
    /// [`ManualClock`](crate::ManualClock) so span durations are exact).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry { metrics: Mutex::new(BTreeMap::new()), clock: Mutex::new(clock) }
    }

    /// The clock spans started from this registry read.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.lock().expect("registry clock poisoned").clone()
    }

    /// Swaps the clock (affects spans started after the call).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.lock().expect("registry clock poisoned") = clock;
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("registry poisoned");
        let m = map.entry(name.to_string()).or_insert_with(make);
        m.clone()
    }

    /// The counter registered under `name`, created at zero on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, created with the default
    /// microsecond latency buckets on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::latency()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Publishes a caller-owned counter under `name`, replacing any
    /// previous registration of that name.
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Metric::Counter(counter));
    }

    /// Publishes a caller-owned gauge under `name`, replacing any
    /// previous registration of that name.
    pub fn register_gauge(&self, name: &str, gauge: Arc<Gauge>) {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Metric::Gauge(gauge));
    }

    /// Publishes a caller-owned histogram under `name`, replacing any
    /// previous registration of that name.
    pub fn register_histogram(&self, name: &str, histogram: Arc<Histogram>) {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Metric::Histogram(histogram));
    }

    /// Starts a [`SpanTimer`] on the histogram registered under `name`
    /// (get-or-create), reading this registry's clock. Dropping the
    /// returned timer records the elapsed microseconds.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::start(self.clock(), self.histogram(name))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry poisoned").len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes every registered metric (the handles stay valid).
    pub fn reset(&self) {
        for (_, m) in self.metrics.lock().expect("registry poisoned").iter() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders every metric as an aligned text table, sorted by name.
    pub fn render_text(&self) -> String {
        let map = self.metrics.lock().expect("registry poisoned");
        let mut rows: Vec<(String, &'static str, String)> = Vec::with_capacity(map.len());
        for (name, m) in map.iter() {
            let value = match m {
                Metric::Counter(c) => c.get().to_string(),
                Metric::Gauge(g) => g.get().to_string(),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    format!(
                        "count={} sum={} p50={} p95={} p99={}",
                        s.count, s.sum, s.p50, s.p95, s.p99
                    )
                }
            };
            rows.push((name.clone(), m.kind(), value));
        }
        drop(map);
        let name_w = rows.iter().map(|(n, _, _)| n.len()).max().unwrap_or(6).max("metric".len());
        let kind_w = "histogram".len();
        let mut out = String::new();
        let _ = writeln!(out, "{:<name_w$}  {:<kind_w$}  value", "metric", "type");
        let _ = writeln!(out, "{}", "-".repeat(name_w + kind_w + 9));
        for (name, kind, value) in rows {
            let _ = writeln!(out, "{name:<name_w$}  {kind:<kind_w$}  {value}");
        }
        out
    }

    /// Renders every metric as one compact JSON object with a stable
    /// shape and stable (sorted) key order:
    ///
    /// ```json
    /// {"counters":{"a.b":1},
    ///  "gauges":{"c.d":-2},
    ///  "histograms":{"e.f_us":{"count":1,"sum":9,"p50":10,"p95":10,"p99":10}}}
    /// ```
    pub fn render_json(&self) -> String {
        let map = self.metrics.lock().expect("registry poisoned");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, m) in map.iter() {
            match m {
                Metric::Counter(c) => {
                    append_entry(&mut counters, name, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    append_entry(&mut gauges, name, &g.get().to_string());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let obj = format!(
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        s.count, s.sum, s.p50, s.p95, s.p99
                    );
                    append_entry(&mut histograms, name, &obj);
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }
}

/// Appends `"name":value` to a JSON object body, comma-separating from
/// any previous entry and escaping the name.
fn append_entry(body: &mut String, name: &str, value: &str) {
    if !body.is_empty() {
        body.push(',');
    }
    body.push('"');
    for ch in name.chars() {
        match ch {
            '"' => body.push_str("\\\""),
            '\\' => body.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(body, "\\u{:04x}", c as u32);
            }
            c => body.push(c),
        }
    }
    body.push_str("\":");
    body.push_str(value);
}

/// The process-global registry: what `kbkit metrics` renders and what
/// the instrumented layers write to by default.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn get_or_create_shares_one_handle_per_name() {
        let r = Registry::new();
        let a = r.counter("layer.component.events");
        let b = r.counter("layer.component.events");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clash_panics() {
        let r = Registry::new();
        let _ = r.counter("x.y.z");
        let _ = r.gauge("x.y.z");
    }

    #[test]
    fn register_replace_displaces_previous_instance() {
        let r = Registry::new();
        let old = Arc::new(Counter::new());
        old.add(10);
        r.register_counter("q.c.hits", old);
        let new = Arc::new(Counter::new());
        new.add(3);
        r.register_counter("q.c.hits", new);
        assert!(r.render_json().contains("\"q.c.hits\":3"));
    }

    #[test]
    fn span_records_into_named_histogram_with_injected_clock() {
        let clock = ManualClock::shared(0);
        let r = Registry::with_clock(clock.clone());
        {
            let _span = r.span("q.parse_us");
            clock.advance(120);
        }
        let h = r.histogram("q.parse_us");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.quantile(0.5), 200); // (100, 200] bucket
    }

    #[test]
    fn text_render_is_aligned_and_sorted() {
        let r = Registry::new();
        r.counter("b.long.counter_name").add(7);
        r.gauge("a.gauge").set(-4);
        r.histogram("c.lat_us").observe(3);
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("metric"));
        // Sorted: a.gauge before b.long.counter_name before c.lat_us.
        assert!(lines[2].starts_with("a.gauge"));
        assert!(lines[3].starts_with("b.long.counter_name"));
        assert!(lines[4].starts_with("c.lat_us"));
        assert!(lines[3].contains(" counter "));
        assert!(lines[4].contains("count=1"));
    }

    #[test]
    fn json_render_is_stable_and_escaped() {
        let clock = ManualClock::shared(0);
        let r = Registry::with_clock(clock.clone());
        r.counter("q.hits").add(2);
        r.gauge("s.depth").set(-1);
        {
            let _span = r.span("q.lat_us");
            clock.advance(9);
        }
        let json = r.render_json();
        assert_eq!(
            json,
            "{\"counters\":{\"q.hits\":2},\"gauges\":{\"s.depth\":-1},\
             \"histograms\":{\"q.lat_us\":{\"count\":1,\"sum\":9,\"p50\":10,\"p95\":10,\"p99\":10}}}"
        );
        // Re-render: byte-identical (stable ordering).
        assert_eq!(json, r.render_json());
    }

    #[test]
    fn reset_zeroes_everything_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.add(5);
        r.histogram("a.h").observe(1);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.histogram("a.h").count(), 0);
        c.inc();
        assert!(r.render_json().contains("\"a.b\":1"));
    }

    #[test]
    fn empty_registry_renders_valid_forms() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.render_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
        assert!(r.render_text().starts_with("metric"));
    }
}
