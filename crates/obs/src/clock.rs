//! Time sources for span timing.
//!
//! Every duration recorded through `kb-obs` flows through the [`Clock`]
//! trait, so tests can substitute a [`ManualClock`] and assert exact
//! histogram contents without ever touching the wall clock. Production
//! code uses the process-wide [`WallClock`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotone microsecond clock. Implementations must be cheap to read
/// and safe to share across threads.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds since an arbitrary (per-clock) epoch. Monotone
    /// non-decreasing.
    fn now_micros(&self) -> u64;
}

/// The process epoch for [`WallClock`]: fixed on first use so readings
/// are comparable across threads.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The real monotone clock ([`Instant`]-backed). Use only outside
/// tests; timing *tests* inject a [`ManualClock`] instead.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl WallClock {
    /// A shareable handle, for APIs taking `Arc<dyn Clock>`.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(WallClock)
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        epoch().elapsed().as_micros() as u64
    }
}

/// A deterministic clock that only moves when told to. The test-side
/// implementation of [`Clock`]: advance it between the start and end of
/// a span to fabricate any duration, reproducibly.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at `start_micros`.
    pub fn new(start_micros: u64) -> Self {
        Self { micros: AtomicU64::new(start_micros) }
    }

    /// A shareable handle, keeping a typed reference for `advance`.
    pub fn shared(start_micros: u64) -> Arc<ManualClock> {
        Arc::new(Self::new(start_micros))
    }

    /// Moves the clock forward by `delta` microseconds.
    pub fn advance(&self, delta_micros: u64) {
        self.micros.fetch_add(delta_micros, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute reading. Panics in debug builds if
    /// that would move time backwards.
    pub fn set(&self, micros: u64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        debug_assert!(micros >= prev, "ManualClock must not move backwards ({prev} -> {micros})");
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new(100);
        assert_eq!(c.now_micros(), 100);
        c.advance(50);
        assert_eq!(c.now_micros(), 150);
        c.set(200);
        assert_eq!(c.now_micros(), 200);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock;
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
