//! Property-based tests over the corpus generator: any seed and any
//! (small) size knobs must yield a structurally sound world and corpus.

use proptest::prelude::*;

use kb_corpus::{Corpus, CorpusConfig, EntityKind, World, WorldConfig};

fn small_config() -> impl Strategy<Value = CorpusConfig> {
    (
        any::<u64>(),
        2usize..20,   // people
        1usize..5,    // companies
        2usize..6,    // cities
        1usize..3,    // countries
        0usize..3,    // universities
        0usize..6,    // products
        0.0f64..=1.0, // ambiguity
        0.0f64..=0.3, // noise
    )
        .prop_map(
            |(
                seed,
                people,
                companies,
                cities,
                countries,
                universities,
                products,
                ambiguity,
                noise,
            )| {
                let mut cfg = CorpusConfig::tiny();
                cfg.world = WorldConfig {
                    seed,
                    people,
                    companies,
                    cities,
                    countries,
                    universities,
                    products,
                    ambiguity,
                };
                cfg.noise_rate = noise;
                cfg.web_pages = 3;
                cfg.essays = 1;
                cfg.stream_days = 7;
                cfg.posts_per_day = 2;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The world is schema-consistent for any knobs.
    #[test]
    fn world_is_schema_consistent(cfg in small_config()) {
        let w = World::generate(&cfg.world);
        prop_assert_eq!(w.entities.len(), cfg.world.total_entities());
        for f in &w.facts {
            prop_assert_eq!(w.entity(f.s).kind, f.rel.domain());
            prop_assert_eq!(w.entity(f.o).kind, f.rel.range());
            if let (Some(b), Some(e)) = (f.begin, f.end) {
                prop_assert!(b <= e);
            }
        }
        // Canonical names unique.
        let mut names: Vec<&str> = w.entities.iter().map(|e| e.canonical.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        prop_assert_eq!(names.len(), before, "duplicate canonical names");
    }

    /// Functional relations stay functional under any knobs.
    #[test]
    fn gold_respects_functionality(cfg in small_config()) {
        let w = World::generate(&cfg.world);
        for rel in kb_corpus::world::ALL_RELS {
            if !rel.functional() {
                continue;
            }
            let mut seen = std::collections::HashMap::new();
            for f in w.facts.iter().filter(|f| f.rel == rel) {
                if let Some(prev) = seen.insert(f.s, f.o) {
                    prop_assert_eq!(prev, f.o, "functional violation in {:?}", rel);
                }
            }
        }
    }

    /// Every rendered document has valid, ordered, non-overlapping
    /// mention offsets.
    #[test]
    fn documents_have_sound_mentions(cfg in small_config()) {
        let corpus = Corpus::generate(&cfg);
        for doc in corpus.all_docs() {
            let mut last_end = 0usize;
            for m in &doc.mentions {
                prop_assert!(m.start >= last_end, "overlapping mentions in {}", doc.title);
                prop_assert_eq!(&doc.text[m.start..m.end], m.surface.as_str());
                prop_assert!((m.entity.index()) < corpus.world.entities.len());
                last_end = m.end;
            }
        }
        for post in &corpus.posts {
            for m in &post.mentions {
                prop_assert_eq!(&post.text[m.start..m.end], m.surface.as_str());
            }
        }
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_is_deterministic(cfg in small_config()) {
        let a = Corpus::generate(&cfg);
        let b = Corpus::generate(&cfg);
        prop_assert_eq!(a.world.facts.len(), b.world.facts.len());
        for (x, y) in a.articles.iter().zip(&b.articles) {
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(&x.infobox, &y.infobox);
            prop_assert_eq!(&x.categories, &y.categories);
        }
    }

    /// Linkage dumps stay internally consistent for any seed.
    #[test]
    fn linkage_dump_invariants(cfg in small_config(), dump_seed in any::<u64>()) {
        let w = World::generate(&cfg.world);
        let dump = kb_corpus::gold::linkage_dump(&w, dump_seed);
        // Cross-source gold pairs reference valid records of the right
        // sources and identical gold entities.
        for &(a, b) in &dump.gold_pairs {
            let ra = &dump.records[a as usize];
            let rb = &dump.records[b as usize];
            prop_assert_eq!(ra.id, a);
            prop_assert_eq!(rb.id, b);
            prop_assert_eq!(ra.source, 0);
            prop_assert_eq!(rb.source, 1);
            prop_assert_eq!(ra.gold_entity, rb.gold_entity);
        }
        // Source 0 lists every person/company exactly once.
        let persons_companies = w
            .entities
            .iter()
            .filter(|e| matches!(e.kind, EntityKind::Person | EntityKind::Company))
            .count();
        let source0 = dump.records.iter().filter(|r| r.source == 0).count();
        prop_assert_eq!(source0, persons_companies);
    }
}
