//! Deterministic name generation with controllable ambiguity.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

use crate::lexicon::*;

/// Generates unique names of various shapes from a shared RNG, keeping a
/// registry so canonical names never collide.
#[derive(Debug)]
pub struct NameGen {
    used: HashSet<String>,
    /// Pre-drawn surname pool; its size controls surname ambiguity.
    surname_pool: Vec<String>,
}

impl NameGen {
    /// Creates a generator with a surname pool of `pool_size` names.
    pub fn new(rng: &mut StdRng, pool_size: usize) -> Self {
        let mut used = HashSet::new();
        let mut surname_pool = Vec::with_capacity(pool_size.max(1));
        while surname_pool.len() < pool_size.max(1) {
            let s = format!("{}{}", pick(rng, FAMILY_SYLLABLES), pick(rng, FAMILY_ENDINGS));
            if !surname_pool.contains(&s) {
                surname_pool.push(s);
            }
            // The syllable space has ~250 combinations; cap gracefully.
            if surname_pool.len() >= FAMILY_SYLLABLES.len() * FAMILY_ENDINGS.len() {
                break;
            }
        }
        used.extend(surname_pool.iter().cloned());
        Self { used, surname_pool }
    }

    /// A person name `(given, family)`. The family name comes from the
    /// shared pool, so smaller pools yield more shared surnames.
    pub fn person(&mut self, rng: &mut StdRng) -> (String, String) {
        let family = self.surname_pool[rng.gen_range(0..self.surname_pool.len())].clone();
        loop {
            let given = format!("{}{}", pick(rng, GIVEN_SYLLABLES), pick(rng, GIVEN_ENDINGS));
            let full = format!("{given} {family}");
            if self.used.insert(full) {
                return (given, family);
            }
        }
    }

    /// A fresh city name.
    pub fn city(&mut self, rng: &mut StdRng) -> String {
        self.unique(rng, |rng| format!("{}{}", pick(rng, PLACE_SYLLABLES), pick(rng, CITY_ENDINGS)))
    }

    /// A fresh country name.
    pub fn country(&mut self, rng: &mut StdRng) -> String {
        self.unique(rng, |rng| {
            format!("{}{}", pick(rng, PLACE_SYLLABLES), pick(rng, COUNTRY_ENDINGS))
        })
    }

    /// A fresh two-word company name ("Nimbus Systems").
    pub fn company(&mut self, rng: &mut StdRng) -> String {
        self.unique(rng, |rng| {
            format!("{} {}", pick(rng, COMPANY_STEMS), pick(rng, COMPANY_SUFFIXES))
        })
    }

    /// A fresh versioned product name ("Strato 3").
    pub fn product(&mut self, rng: &mut StdRng, version: u32) -> String {
        self.unique(rng, |rng| format!("{} {}", pick(rng, PRODUCT_STEMS), version))
    }

    /// A fresh university name ("University of Lundholm" needs a city —
    /// callers pass one).
    pub fn university(&mut self, city: &str) -> String {
        let base = format!("University of {city}");
        let mut name = base.clone();
        let mut i = 2;
        while !self.used.insert(name.clone()) {
            name = format!("{base} {i}");
            i += 1;
        }
        name
    }

    fn unique(&mut self, rng: &mut StdRng, mut gen: impl FnMut(&mut StdRng) -> String) -> String {
        for _ in 0..10_000 {
            let name = gen(rng);
            if self.used.insert(name.clone()) {
                return name;
            }
        }
        // Syllable space exhausted: append a numeric disambiguator.
        let mut i = 2u32;
        loop {
            let name = format!("{} {}", gen(rng), i);
            if self.used.insert(name.clone()) {
                return name;
            }
            i += 1;
        }
    }
}

fn pick<'a>(rng: &mut StdRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// Canonicalizes a display name into a KB identifier: spaces become
/// underscores ("Alan Varen" → "Alan_Varen").
pub fn canonical(name: &str) -> String {
    name.replace(' ', "_")
}

/// The nationality adjective of a country ("Norland" → "Norlandian").
pub fn nationality_adjective(country: &str) -> String {
    let base = country.trim_end_matches("ia").trim_end_matches("land");
    if country.ends_with("ia") {
        format!("{}ian", country.trim_end_matches("ia"))
    } else if country.ends_with("land") {
        format!("{base}landic")
    } else {
        format!("{country}ese")
    }
}

/// Deterministic pseudo-translations for multilingual labels. Returns
/// `(lang, label)` pairs including English.
pub fn multilingual_labels(display: &str) -> Vec<(&'static str, String)> {
    let de = format!("{display}haus");
    let fr = format!("Le {display}");
    vec![("en", display.to_string()), ("de", de), ("fr", fr)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn person_full_names_are_unique_but_surnames_shared() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = NameGen::new(&mut rng, 3); // tiny pool -> heavy sharing
        let mut fulls = HashSet::new();
        let mut families = HashSet::new();
        for _ in 0..30 {
            let (given, family) = gen.person(&mut rng);
            assert!(fulls.insert(format!("{given} {family}")));
            families.insert(family);
        }
        assert!(families.len() <= 3);
    }

    #[test]
    fn larger_pool_means_less_ambiguity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = NameGen::new(&mut rng, 100);
        let mut families = HashSet::new();
        for _ in 0..30 {
            families.insert(gen.person(&mut rng).1);
        }
        assert!(families.len() > 15);
    }

    #[test]
    fn all_name_kinds_are_unique_across_calls() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gen = NameGen::new(&mut rng, 10);
        let mut seen = HashSet::new();
        for i in 0..20 {
            assert!(seen.insert(gen.city(&mut rng)));
            assert!(seen.insert(gen.country(&mut rng)));
            assert!(seen.insert(gen.company(&mut rng)));
            assert!(seen.insert(gen.product(&mut rng, i)));
        }
    }

    #[test]
    fn university_names_disambiguate_per_city() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gen = NameGen::new(&mut rng, 5);
        let a = gen.university("Lundholm");
        let b = gen.university("Lundholm");
        assert_eq!(a, "University of Lundholm");
        assert_eq!(b, "University of Lundholm 2");
    }

    #[test]
    fn canonical_replaces_spaces() {
        assert_eq!(canonical("Alan Varen"), "Alan_Varen");
        assert_eq!(canonical("Nimbus Systems"), "Nimbus_Systems");
    }

    #[test]
    fn nationality_adjectives() {
        assert_eq!(nationality_adjective("Valdoria"), "Valdorian");
        assert_eq!(nationality_adjective("Norland"), "Norlandic");
        assert_eq!(nationality_adjective("Jutmark"), "Jutmarkese");
    }

    #[test]
    fn multilingual_labels_cover_three_langs() {
        let labels = multilingual_labels("Lundholm");
        assert_eq!(labels.len(), 3);
        assert!(labels.iter().any(|(l, _)| *l == "en"));
        assert!(labels.iter().any(|(l, s)| *l == "de" && s.contains("Lundholm")));
    }
}
