//! Gold evaluation structures derived from the world: canonical fact
//! sets, NED mention gold, and record-linkage dumps with known
//! duplicates.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::world::{EntityId, EntityKind, Rel, World};

/// The gold fact set keyed by canonical names — what extractors are
/// scored against.
pub fn gold_fact_strings(world: &World) -> HashSet<(String, String, String)> {
    world
        .facts
        .iter()
        .map(|f| {
            (
                world.entity(f.s).canonical.clone(),
                f.rel.name().to_string(),
                world.entity(f.o).canonical.clone(),
            )
        })
        .collect()
}

/// Gold `instanceOf` pairs as strings `(entity canonical, class)`.
pub fn gold_instance_strings(world: &World) -> HashSet<(String, String)> {
    world
        .instance_of
        .iter()
        .map(|(id, class)| (world.entity(*id).canonical.clone(), class.clone()))
        .collect()
}

/// Gold subclass edges as string pairs.
pub fn gold_subclass_strings(world: &World) -> HashSet<(String, String)> {
    world.taxonomy_edges.iter().cloned().collect()
}

/// Standard precision/recall/F1 over sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    /// Precision (1.0 when nothing was predicted).
    pub precision: f64,
    /// Recall (1.0 when nothing was expected).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Computes precision/recall/F1 of `predicted` against `gold`.
pub fn pr_f1<T: Eq + std::hash::Hash>(predicted: &HashSet<T>, gold: &HashSet<T>) -> PrF1 {
    let tp = predicted.intersection(gold).count();
    let fp = predicted.len() - tp;
    let fn_ = gold.len() - tp;
    let precision = if predicted.is_empty() { 1.0 } else { tp as f64 / predicted.len() as f64 };
    let recall = if gold.is_empty() { 1.0 } else { tp as f64 / gold.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrF1 { precision, recall, f1, tp, fp, fn_ }
}

/// One record in a linkage dump: a (possibly perturbed) description of
/// an entity as a different data source would publish it.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRecord {
    /// Dense record id within the dump.
    pub id: u32,
    /// Which source produced it (0 = clean dump, 1 = perturbed dump).
    pub source: u8,
    /// The (possibly perturbed) name.
    pub name: String,
    /// Attribute pairs, possibly incomplete in source 1.
    pub attrs: Vec<(String, String)>,
    /// The ground-truth entity (hidden from the matcher, used by eval).
    pub gold_entity: EntityId,
}

/// A pair of record dumps with the gold duplicate pairs.
#[derive(Debug, Clone)]
pub struct LinkageDump {
    /// All records: source-0 records first, then source-1.
    pub records: Vec<LinkRecord>,
    /// Gold matching pairs `(record id, record id)` with the smaller id
    /// first. Only cross-source duplicates are listed.
    pub gold_pairs: HashSet<(u32, u32)>,
}

/// Builds a two-source linkage dump over persons and companies:
/// source 0 publishes clean records, source 1 perturbs names (initials,
/// typos, token drops) and drops attributes; ~80% of entities appear in
/// both sources.
pub fn linkage_dump(world: &World, seed: u64) -> LinkageDump {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    let mut gold_pairs = HashSet::new();
    let entities: Vec<&crate::world::Entity> = world
        .entities
        .iter()
        .filter(|e| matches!(e.kind, EntityKind::Person | EntityKind::Company))
        .collect();
    // Source 0: every entity, clean.
    for e in &entities {
        let id = records.len() as u32;
        records.push(LinkRecord {
            id,
            source: 0,
            name: e.display.clone(),
            attrs: clean_attrs(world, e),
            gold_entity: e.id,
        });
    }
    // Source 1: ~80% of entities, perturbed.
    for (i, e) in entities.iter().enumerate() {
        if !rng.gen_bool(0.8) {
            continue;
        }
        let id = records.len() as u32;
        let name = perturb_name(&e.display, &mut rng);
        let mut attrs = clean_attrs(world, e);
        // Drop each attribute with 30% probability.
        attrs.retain(|_| rng.gen_bool(0.7));
        records.push(LinkRecord { id, source: 1, name, attrs, gold_entity: e.id });
        gold_pairs.insert((i as u32, id));
    }
    LinkageDump { records, gold_pairs }
}

fn clean_attrs(world: &World, e: &crate::world::Entity) -> Vec<(String, String)> {
    let mut attrs = Vec::new();
    if let Some(y) = e.year {
        attrs.push(("year".to_string(), y.to_string()));
    }
    for f in world.facts_of(e.id) {
        match f.rel {
            Rel::BornIn => attrs.push(("birth_place".into(), world.entity(f.o).display.clone())),
            Rel::HeadquarteredIn => attrs.push(("hq".into(), world.entity(f.o).display.clone())),
            Rel::CitizenOf => attrs.push(("country".into(), world.entity(f.o).display.clone())),
            _ => {}
        }
    }
    attrs
}

/// Applies one of several name perturbations.
fn perturb_name(name: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        // Initial for the first token: "Alan Varen" -> "A. Varen".
        0 => {
            let mut parts: Vec<String> = name.split(' ').map(str::to_string).collect();
            if parts.len() >= 2 {
                let first = parts[0].chars().next().unwrap_or('X');
                parts[0] = format!("{first}.");
            }
            parts.join(" ")
        }
        // Adjacent-character swap typo.
        1 => {
            let mut chars: Vec<char> = name.chars().collect();
            if chars.len() >= 4 {
                // Swap two interior letters (avoid token boundaries).
                let candidates: Vec<usize> = (1..chars.len() - 2)
                    .filter(|&i| chars[i] != ' ' && chars[i + 1] != ' ')
                    .collect();
                if let Some(&i) = candidates.get(
                    rng.gen_range(0..candidates.len().max(1))
                        .min(candidates.len().saturating_sub(1)),
                ) {
                    chars.swap(i, i + 1);
                }
            }
            chars.into_iter().collect()
        }
        // Lowercasing (sloppy source).
        2 => name.to_lowercase(),
        // Token reorder: "Alan Varen" -> "Varen, Alan".
        _ => {
            let parts: Vec<&str> = name.split(' ').collect();
            if parts.len() == 2 {
                format!("{}, {}", parts[1], parts[0])
            } else {
                name.to_string()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::tiny(42))
    }

    #[test]
    fn gold_fact_strings_cover_all_facts() {
        let w = world();
        assert_eq!(gold_fact_strings(&w).len(), {
            // Duplicates collapse in the set; count distinct gold triples.
            let mut set = HashSet::new();
            for f in &w.facts {
                set.insert((f.s, f.rel, f.o));
            }
            set.len()
        });
    }

    #[test]
    fn pr_f1_known_values() {
        let gold: HashSet<u32> = [1, 2, 3, 4].into_iter().collect();
        let pred: HashSet<u32> = [3, 4, 5].into_iter().collect();
        let m = pr_f1(&pred, &gold);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 2);
    }

    #[test]
    fn pr_f1_edge_cases() {
        let empty: HashSet<u32> = HashSet::new();
        let some: HashSet<u32> = [1].into_iter().collect();
        // Empty vs empty: vacuous success on both axes.
        assert_eq!(pr_f1(&empty, &empty).f1, 1.0);
        assert_eq!(pr_f1(&empty, &empty).precision, 1.0);
        assert_eq!(pr_f1(&empty, &some).recall, 0.0);
        assert_eq!(pr_f1(&some, &empty).precision, 0.0);
    }

    #[test]
    fn linkage_dump_pairs_point_at_same_entity() {
        let w = world();
        let dump = linkage_dump(&w, 9);
        assert!(!dump.gold_pairs.is_empty());
        for &(a, b) in &dump.gold_pairs {
            let ra = &dump.records[a as usize];
            let rb = &dump.records[b as usize];
            assert_eq!(ra.gold_entity, rb.gold_entity);
            assert_eq!(ra.source, 0);
            assert_eq!(rb.source, 1);
        }
    }

    #[test]
    fn perturbed_names_usually_differ_but_stay_similar() {
        let w = world();
        let dump = linkage_dump(&w, 9);
        let mut differ = 0;
        let mut total = 0;
        for &(a, b) in &dump.gold_pairs {
            let ra = &dump.records[a as usize];
            let rb = &dump.records[b as usize];
            total += 1;
            if ra.name != rb.name {
                differ += 1;
            }
            // Perturbations keep last-token overlap in most cases.
            assert!(!rb.name.is_empty());
        }
        assert!(differ * 2 > total, "most perturbed names should differ");
    }

    #[test]
    fn dump_is_deterministic_per_seed() {
        let w = world();
        let a = linkage_dump(&w, 5);
        let b = linkage_dump(&w, 5);
        assert_eq!(a.records, b.records);
        assert_eq!(a.gold_pairs, b.gold_pairs);
        let c = linkage_dump(&w, 6);
        assert!(a.records.len() != c.records.len() || a.records != c.records);
    }

    #[test]
    fn instance_and_subclass_gold_nonempty() {
        let w = world();
        assert!(!gold_instance_strings(&w).is_empty());
        assert!(gold_subclass_strings(&w).contains(&("city".to_string(), "location".to_string())));
    }
}
