//! The document model shared by all renderers, plus the offset-tracking
//! text builder.

use crate::world::EntityId;

/// What collection a document belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// Wikipedia-style entity article.
    Article,
    /// Enumeration/Hearst-pattern overview page.
    Overview,
    /// Noisy web page.
    Web,
    /// Commonsense essay.
    Essay,
}

/// A gold-annotated entity mention: byte span plus the entity it
/// actually denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mention {
    /// Byte offset of the first character in [`Doc::text`].
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// The gold entity.
    pub entity: EntityId,
    /// The surface form as written.
    pub surface: String,
}

/// A rendered document with gold annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Doc {
    /// Dense document id (unique within its corpus).
    pub id: u32,
    /// Which collection it belongs to.
    pub kind: DocKind,
    /// Title (the subject's display name for articles).
    pub title: String,
    /// The subject entity, for articles.
    pub subject: Option<EntityId>,
    /// Full text.
    pub text: String,
    /// Gold entity mentions, ordered by start offset.
    pub mentions: Vec<Mention>,
    /// Infobox key/value pairs (articles only).
    pub infobox: Vec<(String, String)>,
    /// Category strings (articles only), e.g. `"Valdorian entrepreneurs"`.
    pub categories: Vec<String>,
}

impl Doc {
    /// The mention (if any) covering byte offset `pos`.
    pub fn mention_at(&self, pos: usize) -> Option<&Mention> {
        self.mentions.iter().find(|m| m.start <= pos && pos < m.end)
    }

    /// All mentions of a given entity.
    pub fn mentions_of(&self, entity: EntityId) -> impl Iterator<Item = &Mention> {
        self.mentions.iter().filter(move |m| m.entity == entity)
    }
}

/// Builds document text while recording mention offsets.
#[derive(Debug, Default)]
pub struct TextBuilder {
    text: String,
    mentions: Vec<Mention>,
}

impl TextBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends plain text.
    pub fn push(&mut self, s: &str) {
        self.text.push_str(s);
    }

    /// Appends an entity mention, recording its gold annotation.
    pub fn push_mention(&mut self, surface: &str, entity: EntityId) {
        let start = self.text.len();
        self.text.push_str(surface);
        self.mentions.push(Mention {
            start,
            end: self.text.len(),
            entity,
            surface: surface.to_string(),
        });
    }

    /// Ensures the text ends with a single space (template glue).
    pub fn space(&mut self) {
        if !self.text.is_empty() && !self.text.ends_with(' ') {
            self.text.push(' ');
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Finalizes into `(text, mentions)`.
    pub fn finish(self) -> (String, Vec<Mention>) {
        (self.text, self.mentions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_offsets() {
        let mut b = TextBuilder::new();
        b.push("Hello ");
        b.push_mention("Alan Varen", EntityId(3));
        b.push(" of ");
        b.push_mention("Lundholm", EntityId(7));
        b.push(".");
        let (text, mentions) = b.finish();
        assert_eq!(text, "Hello Alan Varen of Lundholm.");
        assert_eq!(mentions.len(), 2);
        assert_eq!(&text[mentions[0].start..mentions[0].end], "Alan Varen");
        assert_eq!(&text[mentions[1].start..mentions[1].end], "Lundholm");
        assert_eq!(mentions[1].entity, EntityId(7));
    }

    #[test]
    fn space_is_idempotent() {
        let mut b = TextBuilder::new();
        b.space();
        assert!(b.is_empty());
        b.push("x");
        b.space();
        b.space();
        let (text, _) = b.finish();
        assert_eq!(text, "x ");
    }

    #[test]
    fn mention_lookup() {
        let mut b = TextBuilder::new();
        b.push_mention("Varen", EntityId(1));
        let (text, mentions) = b.finish();
        let d = Doc {
            id: 0,
            kind: DocKind::Article,
            title: "t".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        };
        assert_eq!(d.mention_at(0).unwrap().entity, EntityId(1));
        assert_eq!(d.mention_at(2).unwrap().surface, "Varen");
        assert!(d.mention_at(5).is_none());
        assert_eq!(d.mentions_of(EntityId(1)).count(), 1);
        assert_eq!(d.mentions_of(EntityId(9)).count(), 0);
    }
}
