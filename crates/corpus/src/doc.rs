//! The document model shared by all renderers, plus the offset-tracking
//! text builder and structural integrity validation (the harvest
//! pipeline's pre-flight check for quarantining corrupt documents).

use std::fmt;

use crate::world::EntityId;

/// What collection a document belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// Wikipedia-style entity article.
    Article,
    /// Enumeration/Hearst-pattern overview page.
    Overview,
    /// Noisy web page.
    Web,
    /// Commonsense essay.
    Essay,
}

/// A gold-annotated entity mention: byte span plus the entity it
/// actually denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mention {
    /// Byte offset of the first character in [`Doc::text`].
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// The gold entity.
    pub entity: EntityId,
    /// The surface form as written.
    pub surface: String,
}

/// A rendered document with gold annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Doc {
    /// Dense document id (unique within its corpus).
    pub id: u32,
    /// Which collection it belongs to.
    pub kind: DocKind,
    /// Title (the subject's display name for articles).
    pub title: String,
    /// The subject entity, for articles.
    pub subject: Option<EntityId>,
    /// Full text.
    pub text: String,
    /// Gold entity mentions, ordered by start offset.
    pub mentions: Vec<Mention>,
    /// Infobox key/value pairs (articles only).
    pub infobox: Vec<(String, String)>,
    /// Category strings (articles only), e.g. `"Valdorian entrepreneurs"`.
    pub categories: Vec<String>,
}

/// A structural defect detected by [`Doc::integrity_error`] — the kind
/// of corruption real-world crawls produce (truncated pages, encoding
/// breakage, dangling annotation offsets) that would otherwise crash or
/// silently poison downstream extractors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocDefect {
    /// A mention's byte span reaches past the end of the text.
    MentionOutOfBounds {
        /// Index into [`Doc::mentions`].
        index: usize,
        /// The offending end offset.
        end: usize,
        /// The text length it exceeds.
        len: usize,
    },
    /// A mention's span is empty or inverted (`start >= end`).
    MentionInverted {
        /// Index into [`Doc::mentions`].
        index: usize,
    },
    /// A mention offset does not land on a UTF-8 character boundary
    /// (classic symptom of byte-level corruption after annotation).
    MentionNotCharBoundary {
        /// Index into [`Doc::mentions`].
        index: usize,
    },
    /// A mention refers to an entity id outside the world's entity
    /// table.
    EntityOutOfWorld {
        /// Index into [`Doc::mentions`].
        index: usize,
        /// The phantom entity id.
        entity: u32,
    },
}

impl fmt::Display for DocDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocDefect::MentionOutOfBounds { index, end, len } => {
                write!(f, "mention {index} ends at byte {end} past text length {len}")
            }
            DocDefect::MentionInverted { index } => {
                write!(f, "mention {index} has an empty or inverted span")
            }
            DocDefect::MentionNotCharBoundary { index } => {
                write!(f, "mention {index} offsets split a UTF-8 character")
            }
            DocDefect::EntityOutOfWorld { index, entity } => {
                write!(f, "mention {index} names phantom entity id {entity}")
            }
        }
    }
}

impl Doc {
    /// Checks the document's gold annotations for structural corruption.
    /// `entity_bound` is the world's entity count (mention entity ids
    /// must be strictly below it; `u32::MAX` admits every id except
    /// `u32::MAX` itself). Returns the
    /// first defect found, or `None` for a well-formed document.
    pub fn integrity_error(&self, entity_bound: u32) -> Option<DocDefect> {
        for (index, m) in self.mentions.iter().enumerate() {
            if m.start >= m.end {
                return Some(DocDefect::MentionInverted { index });
            }
            if m.end > self.text.len() {
                return Some(DocDefect::MentionOutOfBounds {
                    index,
                    end: m.end,
                    len: self.text.len(),
                });
            }
            if !self.text.is_char_boundary(m.start) || !self.text.is_char_boundary(m.end) {
                return Some(DocDefect::MentionNotCharBoundary { index });
            }
            if m.entity.0 >= entity_bound {
                return Some(DocDefect::EntityOutOfWorld { index, entity: m.entity.0 });
            }
        }
        None
    }

    /// The mention (if any) covering byte offset `pos`.
    pub fn mention_at(&self, pos: usize) -> Option<&Mention> {
        self.mentions.iter().find(|m| m.start <= pos && pos < m.end)
    }

    /// All mentions of a given entity.
    pub fn mentions_of(&self, entity: EntityId) -> impl Iterator<Item = &Mention> {
        self.mentions.iter().filter(move |m| m.entity == entity)
    }
}

/// Builds document text while recording mention offsets.
#[derive(Debug, Default)]
pub struct TextBuilder {
    text: String,
    mentions: Vec<Mention>,
}

impl TextBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends plain text.
    pub fn push(&mut self, s: &str) {
        self.text.push_str(s);
    }

    /// Appends an entity mention, recording its gold annotation.
    pub fn push_mention(&mut self, surface: &str, entity: EntityId) {
        let start = self.text.len();
        self.text.push_str(surface);
        self.mentions.push(Mention {
            start,
            end: self.text.len(),
            entity,
            surface: surface.to_string(),
        });
    }

    /// Ensures the text ends with a single space (template glue).
    pub fn space(&mut self) {
        if !self.text.is_empty() && !self.text.ends_with(' ') {
            self.text.push(' ');
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Finalizes into `(text, mentions)`.
    pub fn finish(self) -> (String, Vec<Mention>) {
        (self.text, self.mentions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_offsets() {
        let mut b = TextBuilder::new();
        b.push("Hello ");
        b.push_mention("Alan Varen", EntityId(3));
        b.push(" of ");
        b.push_mention("Lundholm", EntityId(7));
        b.push(".");
        let (text, mentions) = b.finish();
        assert_eq!(text, "Hello Alan Varen of Lundholm.");
        assert_eq!(mentions.len(), 2);
        assert_eq!(&text[mentions[0].start..mentions[0].end], "Alan Varen");
        assert_eq!(&text[mentions[1].start..mentions[1].end], "Lundholm");
        assert_eq!(mentions[1].entity, EntityId(7));
    }

    #[test]
    fn space_is_idempotent() {
        let mut b = TextBuilder::new();
        b.space();
        assert!(b.is_empty());
        b.push("x");
        b.space();
        b.space();
        let (text, _) = b.finish();
        assert_eq!(text, "x ");
    }

    fn doc_with_mentions(text: &str, mentions: Vec<Mention>) -> Doc {
        Doc {
            id: 0,
            kind: DocKind::Article,
            title: "t".into(),
            subject: None,
            text: text.into(),
            mentions,
            infobox: vec![],
            categories: vec![],
        }
    }

    #[test]
    fn integrity_accepts_well_formed_docs() {
        let mut b = TextBuilder::new();
        b.push_mention("Varen", EntityId(1));
        let (text, mentions) = b.finish();
        let d = doc_with_mentions(&text, mentions);
        assert_eq!(d.integrity_error(10), None);
    }

    #[test]
    fn integrity_flags_out_of_bounds_and_inverted_mentions() {
        let d = doc_with_mentions(
            "short",
            vec![Mention { start: 2, end: 99, entity: EntityId(0), surface: "x".into() }],
        );
        assert!(matches!(d.integrity_error(10), Some(DocDefect::MentionOutOfBounds { .. })));
        let d = doc_with_mentions(
            "short",
            vec![Mention { start: 3, end: 3, entity: EntityId(0), surface: "".into() }],
        );
        assert!(matches!(d.integrity_error(10), Some(DocDefect::MentionInverted { index: 0 })));
    }

    #[test]
    fn integrity_flags_split_utf8_characters() {
        // 'é' is two bytes; offset 1 lands inside it.
        let d = doc_with_mentions(
            "é x",
            vec![Mention { start: 0, end: 1, entity: EntityId(0), surface: "é".into() }],
        );
        assert!(matches!(
            d.integrity_error(10),
            Some(DocDefect::MentionNotCharBoundary { index: 0 })
        ));
    }

    #[test]
    fn integrity_flags_phantom_entities_only_under_the_bound() {
        let d = doc_with_mentions(
            "abcdef",
            vec![Mention { start: 0, end: 3, entity: EntityId(500), surface: "abc".into() }],
        );
        assert!(matches!(
            d.integrity_error(10),
            Some(DocDefect::EntityOutOfWorld { entity: 500, .. })
        ));
        assert_eq!(d.integrity_error(u32::MAX), None);
    }

    #[test]
    fn mention_lookup() {
        let mut b = TextBuilder::new();
        b.push_mention("Varen", EntityId(1));
        let (text, mentions) = b.finish();
        let d = Doc {
            id: 0,
            kind: DocKind::Article,
            title: "t".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        };
        assert_eq!(d.mention_at(0).unwrap().entity, EntityId(1));
        assert_eq!(d.mention_at(2).unwrap().surface, "Varen");
        assert!(d.mention_at(5).is_none());
        assert_eq!(d.mentions_of(EntityId(1)).count(), 1);
        assert_eq!(d.mentions_of(EntityId(9)).count(), 0);
    }
}
