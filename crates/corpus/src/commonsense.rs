//! Commonsense essays: generic sentences about concepts ("apples can be
//! red"), part-whole statements ("the mouthpiece is part of a
//! clarinet") — plus controlled absurd noise, for the commonsense-mining
//! experiment (tutorial §3, "Commonsense Knowledge").

use rand::rngs::StdRng;
use rand::Rng;

use crate::config::CorpusConfig;
use crate::doc::{Doc, DocKind, TextBuilder};
use crate::lexicon::{ABSURD_PROPERTIES, CONCEPTS};
use crate::world::World;

/// Renders `cfg.essays` essays cycling through the concept table. Each
/// property/part is stated multiple times across essays (frequency is the
/// miner's signal), while absurd properties appear at most once each.
pub fn render_essays(_world: &World, cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<Doc> {
    let mut docs = Vec::new();
    for i in 0..cfg.essays {
        let mut b = TextBuilder::new();
        for concept in CONCEPTS {
            // Property sentences: enumerate a sample of gold properties.
            let mut props: Vec<&str> = concept.properties.to_vec();
            // Rotate deterministically so different essays emphasize
            // different properties but every property recurs.
            let rot = i % props.len().max(1);
            props.rotate_left(rot);
            let take = rng.gen_range(2..=props.len().max(2)).min(props.len());
            b.push(&format!("{} can be ", capitalize(concept.plural)));
            for (j, p) in props[..take].iter().enumerate() {
                if j > 0 {
                    if j + 1 == take {
                        b.push(" or ");
                    } else {
                        b.push(", ");
                    }
                }
                b.push(p);
            }
            b.push(". ");
            // Part sentences.
            for part in concept.parts {
                if rng.gen_bool(0.7) {
                    if rng.gen_bool(0.5) {
                        b.push(&format!("The {part} is part of a {}. ", concept.name));
                    } else {
                        b.push(&format!("A {} has a {part}. ", concept.name));
                    }
                }
            }
        }
        // Absurd noise: rare, so frequency-based mining can reject it.
        if rng.gen_bool((cfg.noise_rate * 2.0).min(1.0)) {
            let c = &CONCEPTS[rng.gen_range(0..CONCEPTS.len())];
            let a = ABSURD_PROPERTIES[rng.gen_range(0..ABSURD_PROPERTIES.len())];
            b.push(&format!("{} can be {a}. ", capitalize(c.plural)));
        }
        let (text, mentions) = b.finish();
        docs.push(Doc {
            id: 300_000 + i as u32,
            kind: DocKind::Essay,
            title: format!("essay-{i}"),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        });
    }
    docs
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn essays() -> Vec<Doc> {
        let cfg = CorpusConfig::tiny();
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(2);
        render_essays(&world, &cfg, &mut rng)
    }

    #[test]
    fn renders_requested_count() {
        let cfg = CorpusConfig::tiny();
        assert_eq!(essays().len(), cfg.essays);
    }

    #[test]
    fn property_sentences_use_can_be() {
        let docs = essays();
        assert!(docs.iter().all(|d| d.text.contains(" can be ")));
    }

    #[test]
    fn part_sentences_appear() {
        let docs = essays();
        let text: String = docs.iter().map(|d| d.text.as_str()).collect();
        assert!(text.contains("is part of a") || text.contains("has a"));
    }

    #[test]
    fn gold_properties_recur_across_essays() {
        let docs = essays();
        let text: String = docs.iter().map(|d| d.text.as_str()).collect();
        // "red" is gold for apples and cars; must appear repeatedly.
        let occurrences = text.matches("red").count();
        assert!(occurrences >= 2, "gold property too rare: {occurrences}");
    }
}
