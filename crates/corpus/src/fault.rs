//! Deterministic fault injection — the chaos-testing counterpart of the
//! corpus generator.
//!
//! Real harvesting pipelines meet truncated pages, broken encodings,
//! annotation-tool bugs and adversarially bloated documents. This module
//! injects exactly those corruptions into an already-generated
//! [`Corpus`], under a seeded RNG, so that chaos behaviour is
//! *reproducible*: the same `(corpus seed, fault seed)` pair always
//! poisons the same documents in the same way, and the report returned
//! by [`inject_faults`] is the ground truth a chaos test checks the
//! pipeline's dead-letter queue against.
//!
//! Fault kinds split into **poison** (structurally corrupt documents a
//! resilient pipeline must quarantine) and **benign stress** (valid but
//! hostile documents it must simply survive).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use crate::doc::{Doc, Mention};
use crate::world::EntityId;
use crate::Corpus;

/// The kinds of controlled corruption [`inject_faults`] can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Poison: cut the text off mid-mention (a truncated crawl), leaving
    /// gold mention spans dangling past the end of the text.
    TruncateMidMention,
    /// Poison: re-encode two bytes around a mention boundary into one
    /// multi-byte character, so the recorded offset splits a UTF-8
    /// character — the classic encoding-mixup corruption that makes
    /// naive byte slicing panic.
    GarbleMentionBoundary,
    /// Poison: append a mention whose span lies entirely past the end of
    /// the text (annotation-tool off-by-a-mile).
    DanglingMention,
    /// Poison: point an existing mention at an entity id no world ever
    /// issued, tripping any extractor that indexes the entity table.
    PhantomEntity,
    /// Benign stress: append a large mention-free distractor tail that
    /// bloats the document without adding extractable signal.
    OversizedDistractor,
}

impl FaultKind {
    /// Whether a document carrying this fault is structurally corrupt
    /// and must be quarantined (as opposed to merely hostile).
    pub fn is_poison(self) -> bool {
        !matches!(self, FaultKind::OversizedDistractor)
    }

    /// All fault kinds, in the deterministic application order.
    pub fn all() -> Vec<FaultKind> {
        vec![
            FaultKind::TruncateMidMention,
            FaultKind::GarbleMentionBoundary,
            FaultKind::DanglingMention,
            FaultKind::PhantomEntity,
            FaultKind::OversizedDistractor,
        ]
    }
}

/// Seeded fault-injection knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// RNG seed — same seed, same faults.
    pub seed: u64,
    /// Probability that any given document is faulted.
    pub fault_rate: f64,
    /// Enabled fault kinds, cycled deterministically across faulted
    /// documents (a kind that does not apply to a document is skipped
    /// in favour of the next applicable one).
    pub kinds: Vec<FaultKind>,
    /// Number of filler sentences an oversized distractor appends.
    pub oversize_sentences: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { seed: 0xFA_017, fault_rate: 0.1, kinds: FaultKind::all(), oversize_sentences: 200 }
    }
}

/// One applied fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The document that was corrupted.
    pub doc_id: u32,
    /// How.
    pub kind: FaultKind,
}

/// Ground truth about what [`inject_faults`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Every applied fault, in document order.
    pub faults: Vec<InjectedFault>,
}

impl FaultReport {
    /// Ids of documents carrying poison faults — exactly the set a
    /// resilient pipeline must quarantine.
    pub fn poison_ids(&self) -> BTreeSet<u32> {
        self.faults.iter().filter(|f| f.kind.is_poison()).map(|f| f.doc_id).collect()
    }

    /// Ids of documents carrying benign stress faults.
    pub fn benign_ids(&self) -> BTreeSet<u32> {
        self.faults.iter().filter(|f| !f.kind.is_poison()).map(|f| f.doc_id).collect()
    }

    /// Total faults applied.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no fault was applied.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Corrupts ~`fault_rate` of the corpus' prose documents in place,
/// deterministically in `cfg.seed`. Returns the ground-truth report.
/// The social stream is left untouched (it flows through a different
/// pipeline).
pub fn inject_faults(corpus: &mut Corpus, cfg: &FaultConfig) -> FaultReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBAD_D0C5);
    let mut report = FaultReport::default();
    if cfg.kinds.is_empty() || cfg.fault_rate <= 0.0 {
        return report;
    }
    let mut next_kind = 0usize;
    let docs = corpus
        .articles
        .iter_mut()
        .chain(corpus.overviews.iter_mut())
        .chain(corpus.web_pages.iter_mut())
        .chain(corpus.essays.iter_mut());
    for doc in docs {
        if !rng.gen_bool(cfg.fault_rate.clamp(0.0, 1.0)) {
            continue;
        }
        // Cycle through the enabled kinds; skip kinds this document is
        // not eligible for (e.g. garbling needs an interior mention).
        for offset in 0..cfg.kinds.len() {
            let kind = cfg.kinds[(next_kind + offset) % cfg.kinds.len()];
            if apply_fault(doc, kind, cfg) {
                report.faults.push(InjectedFault { doc_id: doc.id, kind });
                next_kind = (next_kind + offset + 1) % cfg.kinds.len();
                break;
            }
        }
    }
    report
}

/// Applies one fault kind to one document. Returns `false` when the
/// document is not eligible (nothing was changed).
fn apply_fault(doc: &mut Doc, kind: FaultKind, cfg: &FaultConfig) -> bool {
    match kind {
        FaultKind::TruncateMidMention => truncate_mid_mention(doc),
        FaultKind::GarbleMentionBoundary => garble_mention_boundary(doc),
        FaultKind::DanglingMention => dangling_mention(doc),
        FaultKind::PhantomEntity => phantom_entity(doc),
        FaultKind::OversizedDistractor => oversized_distractor(doc, cfg.oversize_sentences),
    }
}

/// Cuts the text one character into some mention, leaving that mention's
/// span (and every later one) dangling past the new end.
fn truncate_mid_mention(doc: &mut Doc) -> bool {
    let Some(m) = doc.mentions.iter().find(|m| m.start + 1 < m.end && m.end <= doc.text.len())
    else {
        return false;
    };
    let mut cut = m.start + 1;
    while cut < doc.text.len() && !doc.text.is_char_boundary(cut) {
        cut += 1;
    }
    if cut >= m.end {
        return false;
    }
    doc.text.truncate(cut);
    true
}

/// Rewrites the two ASCII bytes straddling a mention's end offset into a
/// single two-byte character, so the offset now splits a UTF-8 char.
fn garble_mention_boundary(doc: &mut Doc) -> bool {
    let bytes = doc.text.as_bytes();
    let Some(end) = doc.mentions.iter().map(|m| m.end).find(|&end| {
        end >= 1 && end < bytes.len() && bytes[end - 1].is_ascii() && bytes[end].is_ascii()
    }) else {
        return false;
    };
    let mut garbled = String::with_capacity(doc.text.len());
    garbled.push_str(&doc.text[..end - 1]);
    garbled.push('é');
    garbled.push_str(&doc.text[end + 1..]);
    doc.text = garbled;
    true
}

/// Appends a mention whose span lies wholly beyond the text.
fn dangling_mention(doc: &mut Doc) -> bool {
    let len = doc.text.len();
    doc.mentions.push(Mention {
        start: len + 4,
        end: len + 9,
        entity: doc.mentions.first().map_or(EntityId(0), |m| m.entity),
        surface: "ghost".to_string(),
    });
    true
}

/// Points an existing mention at an entity id no world issued.
fn phantom_entity(doc: &mut Doc) -> bool {
    let Some(m) = doc.mentions.first_mut() else { return false };
    m.entity = EntityId(u32::MAX);
    true
}

/// Appends a digit-free, mention-free distractor tail. Digit-free so it
/// cannot introduce spurious temporal hints; mention-free so it cannot
/// introduce pattern occurrences — the document gets bigger and more
/// hostile, not differently informative.
fn oversized_distractor(doc: &mut Doc, sentences: usize) -> bool {
    if sentences == 0 {
        return false;
    }
    let filler = [
        "The committee deliberated at considerable length about procedural minutiae.",
        "Observers described the proceedings as thorough yet entirely inconclusive.",
        "A spokesperson declined to elaborate beyond previously circulated remarks.",
        "Several drafts of the memorandum were said to be circulating internally.",
    ];
    let mut tail = String::with_capacity(sentences * 60);
    for i in 0..sentences {
        tail.push(' ');
        tail.push_str(filler[i % filler.len()]);
    }
    doc.text.push_str(&tail);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig::tiny())
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let cfg = FaultConfig { fault_rate: 0.3, ..Default::default() };
        let mut a = corpus();
        let mut b = corpus();
        let ra = inject_faults(&mut a, &cfg);
        let rb = inject_faults(&mut b, &cfg);
        assert_eq!(ra, rb);
        assert!(!ra.is_empty());
        for (da, db) in a.all_docs().iter().zip(b.all_docs().iter()) {
            assert_eq!(da.text, db.text);
            assert_eq!(da.mentions, db.mentions);
        }
        let mut c = corpus();
        let rc = inject_faults(&mut c, &FaultConfig { seed: cfg.seed + 1, ..cfg });
        assert_ne!(ra, rc, "different seeds should fault differently");
    }

    #[test]
    fn poison_faults_fail_integrity_validation() {
        let mut c = corpus();
        let bound = c.world.entities.len() as u32;
        let report = inject_faults(
            &mut c,
            &FaultConfig {
                fault_rate: 0.4,
                kinds: FaultKind::all().into_iter().filter(|k| k.is_poison()).collect(),
                ..Default::default()
            },
        );
        assert!(!report.is_empty());
        let poison = report.poison_ids();
        for doc in c.all_docs() {
            if poison.contains(&doc.id) {
                assert!(doc.integrity_error(bound).is_some(), "doc {} should be defective", doc.id);
            } else {
                assert_eq!(doc.integrity_error(bound), None, "doc {} should be clean", doc.id);
            }
        }
    }

    #[test]
    fn oversized_distractors_stay_structurally_valid() {
        let mut c = corpus();
        let bound = c.world.entities.len() as u32;
        let report = inject_faults(
            &mut c,
            &FaultConfig {
                fault_rate: 0.5,
                kinds: vec![FaultKind::OversizedDistractor],
                oversize_sentences: 50,
                ..Default::default()
            },
        );
        assert!(!report.is_empty());
        assert!(report.poison_ids().is_empty());
        for doc in c.all_docs() {
            assert_eq!(doc.integrity_error(bound), None);
            if report.benign_ids().contains(&doc.id) {
                assert!(doc.text.len() > 1_000, "doc {} should have been bloated", doc.id);
            }
        }
    }

    #[test]
    fn fault_rate_zero_is_a_no_op() {
        let mut c = corpus();
        let before: Vec<String> = c.all_docs().iter().map(|d| d.text.clone()).collect();
        let report = inject_faults(&mut c, &FaultConfig { fault_rate: 0.0, ..Default::default() });
        assert!(report.is_empty());
        let after: Vec<String> = c.all_docs().iter().map(|d| d.text.clone()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn rate_controls_volume() {
        let mut lo = corpus();
        let mut hi = corpus();
        let r_lo = inject_faults(&mut lo, &FaultConfig { fault_rate: 0.05, ..Default::default() });
        let r_hi = inject_faults(&mut hi, &FaultConfig { fault_rate: 0.6, ..Default::default() });
        assert!(r_hi.len() > r_lo.len());
    }
}
