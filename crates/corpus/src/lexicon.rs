//! Static word material for the generators: name syllables, industries,
//! occupations, sentiment words, filler fragments and the commonsense
//! concept tables.

/// Syllables for person given names.
pub static GIVEN_SYLLABLES: &[&str] = &[
    "Al", "Ber", "Cla", "Do", "El", "Fa", "Ga", "Hel", "Ir", "Jo", "Ka", "Lu", "Mar", "Nor", "Ol",
    "Pe", "Ro", "Sa", "Te", "Vi",
];

/// Second syllables for given names.
pub static GIVEN_ENDINGS: &[&str] = &[
    "an", "bert", "dia", "fred", "gar", "la", "lena", "mar", "na", "ra", "rik", "ron", "sha", "ta",
    "vin",
];

/// Syllables for family names.
pub static FAMILY_SYLLABLES: &[&str] = &[
    "Var", "Hol", "Kel", "Mor", "Nes", "Ostr", "Pell", "Quin", "Rav", "Sel", "Thorn", "Ulm", "Wex",
    "Yar", "Zell", "Bran", "Crel", "Dunn",
];

/// Endings for family names.
pub static FAMILY_ENDINGS: &[&str] = &[
    "en", "er", "ford", "gate", "ham", "ley", "low", "man", "sen", "son", "ström", "ton", "wick",
    "worth",
];

/// Syllables for place (city/country) names.
pub static PLACE_SYLLABLES: &[&str] = &[
    "Arb", "Bel", "Cor", "Dren", "Esk", "Fal", "Gren", "Hav", "Ister", "Jut", "Kolm", "Lund",
    "Mar", "Nor", "Oster", "Pren", "Quell", "Ry", "Stav", "Tor", "Ulv", "Vest", "Wim", "Yor",
    "Zeb",
];

/// Endings for city names.
pub static CITY_ENDINGS: &[&str] = &[
    "berg", "bridge", "burg", "by", "dale", "field", "ford", "gate", "haven", "holm", "mouth",
    "port", "stad", "ton", "vale", "ville",
];

/// Endings for country names.
pub static COUNTRY_ENDINGS: &[&str] = &["ia", "land", "mark", "onia", "stan", "via"];

/// Company name stems.
pub static COMPANY_STEMS: &[&str] = &[
    "Acro",
    "Bitwise",
    "Cobalt",
    "Delta",
    "Ember",
    "Fathom",
    "Gyro",
    "Helix",
    "Ion",
    "Jetline",
    "Krypton",
    "Lumen",
    "Meridian",
    "Nimbus",
    "Orbit",
    "Pinnacle",
    "Quanta",
    "Ridge",
    "Solstice",
    "Tundra",
    "Umbra",
    "Vertex",
    "Wavecrest",
    "Xenon",
    "Zephyr",
];

/// Company name suffixes.
pub static COMPANY_SUFFIXES: &[&str] = &[
    "Systems",
    "Industries",
    "Labs",
    "Works",
    "Dynamics",
    "Technologies",
    "Group",
    "Corporation",
    "Motors",
    "Foods",
];

/// Product name stems (versioned per line: "Strato 2").
pub static PRODUCT_STEMS: &[&str] = &[
    "Strato", "Nova", "Pulse", "Vanta", "Aero", "Corda", "Lyra", "Onda", "Presto", "Ray", "Sable",
    "Tempo", "Vero", "Zeta",
];

/// Industries a company can belong to; each induces a company subclass
/// ("phone companies") and constrains its products' kind.
pub static INDUSTRIES: &[&str] = &["phone", "computer", "car", "food", "software"];

/// Product kinds aligned with [`INDUSTRIES`] by index.
pub static PRODUCT_KINDS: &[&str] = &["phone", "laptop", "car", "snack", "app"];

/// Occupations for people; each induces a person subclass.
pub static OCCUPATIONS: &[&str] =
    &["entrepreneur", "scientist", "musician", "writer", "athlete", "engineer"];

/// Positive sentiment words for the social stream.
pub static POSITIVE_WORDS: &[&str] = &[
    "love",
    "great",
    "amazing",
    "fantastic",
    "excellent",
    "superb",
    "brilliant",
    "wonderful",
    "fast",
    "gorgeous",
];

/// Negative sentiment words for the social stream.
pub static NEGATIVE_WORDS: &[&str] = &[
    "hate",
    "terrible",
    "awful",
    "disappointing",
    "broken",
    "slow",
    "ugly",
    "buggy",
    "overpriced",
    "flimsy",
];

/// Neutral filler fragments for posts.
pub static POST_FILLERS: &[&str] = &[
    "just got my hands on",
    "been using",
    "thoughts on",
    "review of",
    "first impressions of",
    "one week with",
    "upgraded to",
    "comparing",
];

/// Distractor sentence templates for articles. `{S}` is replaced with
/// the subject mention; `{X}` with a random other entity mention.
pub static DISTRACTOR_TEMPLATES: &[&str] = &[
    "{S} met {X} at a conference .",
    "{S} visited {X} last year .",
    "Many people admire {S} .",
    "{S} gave a talk about the future .",
    "A documentary about {S} appeared recently .",
    "{S} and {X} appeared together in the news .",
];

/// A commonsense concept with its gold properties and parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptSpec {
    /// Concept noun (singular).
    pub name: &'static str,
    /// Plural form used in generic sentences.
    pub plural: &'static str,
    /// Adjectives that genuinely apply ("apples can be red").
    pub properties: &'static [&'static str],
    /// Parts the concept has ("mouthpiece partOf clarinet").
    pub parts: &'static [&'static str],
}

/// The gold commonsense table (tutorial §3, "Commonsense Knowledge").
pub static CONCEPTS: &[ConceptSpec] = &[
    ConceptSpec {
        name: "apple",
        plural: "apples",
        properties: &["red", "green", "juicy", "sweet", "sour"],
        parts: &["core", "stem", "skin"],
    },
    ConceptSpec {
        name: "clarinet",
        plural: "clarinets",
        properties: &["cylindrical", "wooden", "elegant"],
        parts: &["mouthpiece", "reed", "bell"],
    },
    ConceptSpec {
        name: "car",
        plural: "cars",
        properties: &["fast", "red", "expensive", "reliable"],
        parts: &["engine", "wheel", "windshield"],
    },
    ConceptSpec {
        name: "house",
        plural: "houses",
        properties: &["spacious", "old", "warm"],
        parts: &["roof", "door", "kitchen"],
    },
    ConceptSpec {
        name: "river",
        plural: "rivers",
        properties: &["long", "deep", "cold"],
        parts: &["bank", "delta", "source"],
    },
    ConceptSpec {
        name: "computer",
        plural: "computers",
        properties: &["fast", "silent", "portable"],
        parts: &["keyboard", "screen", "processor"],
    },
];

/// Adjectives that apply to *no* concept in [`CONCEPTS`] — used to
/// generate implausible property noise ("apples can be punctual").
pub static ABSURD_PROPERTIES: &[&str] =
    &["punctual", "jealous", "polite", "funny", "ambitious", "fluent"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn industries_and_product_kinds_align() {
        assert_eq!(INDUSTRIES.len(), PRODUCT_KINDS.len());
    }

    #[test]
    fn concept_tables_are_nonempty_and_consistent() {
        assert!(!CONCEPTS.is_empty());
        for c in CONCEPTS {
            assert!(!c.properties.is_empty(), "{} needs properties", c.name);
            assert!(!c.parts.is_empty(), "{} needs parts", c.name);
            assert!(c.plural.starts_with(c.name) || c.plural.len() >= c.name.len());
        }
    }

    #[test]
    fn absurd_properties_never_overlap_gold() {
        for c in CONCEPTS {
            for a in ABSURD_PROPERTIES {
                assert!(!c.properties.contains(a), "{a} is gold for {}", c.name);
            }
        }
    }

    #[test]
    fn sentiment_lexicons_are_disjoint() {
        for p in POSITIVE_WORDS {
            assert!(!NEGATIVE_WORDS.contains(p));
        }
    }
}
