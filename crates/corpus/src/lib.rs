//! # kb-corpus
//!
//! A deterministic synthetic world and corpus generator: the stand-in
//! for Wikipedia, web pages and social-media streams that the tutorial's
//! methods harvest (see DESIGN.md, "Substitutions").
//!
//! The generator produces, from a single seed:
//!
//! * a [`World`]: entities (people, companies, cities,
//!   countries, universities, products) with canonical ids, ambiguous
//!   aliases, multilingual labels, a gold class taxonomy, and gold
//!   facts with temporal scopes;
//! * [`Doc`]uments rendered from the world:
//!   Wikipedia-style [articles](article) with infoboxes, categories and
//!   gold mention annotations; noisy [web pages](web); Hearst-pattern
//!   [overview pages](article::render_overviews); commonsense
//!   [essays](commonsense); and a timestamped [social stream](social);
//! * [`gold`] evaluation structures: the fact set keyed by canonical
//!   names, mention-level NED gold, record-linkage dumps with known
//!   duplicates.
//!
//! Noise is injected under explicit knobs (see
//! [`CorpusConfig`]): false fact sentences
//! (including type- and functionality-violating ones, which the
//! consistency-reasoning experiment prunes), distractor sentences and
//! ambiguous aliasing.
//!
//! Everything is reproducible: the same config yields byte-identical
//! corpora.

pub mod article;
pub mod commonsense;
pub mod config;
pub mod doc;
pub mod fault;
pub mod gold;
pub mod lexicon;
pub mod names;
pub mod social;
pub mod web;
pub mod world;

pub use config::{CorpusConfig, WorldConfig};
pub use doc::{Doc, DocDefect, DocKind, Mention};
pub use fault::{inject_faults, FaultConfig, FaultKind, FaultReport, InjectedFault};
pub use world::{Entity, EntityId, EntityKind, GoldFact, Rel, World};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates the complete corpus bundle for a config: the world plus all
/// document collections. This is the one-call entry point used by
/// examples, tests and benchmarks.
#[derive(Debug)]
pub struct Corpus {
    /// The underlying ground-truth world.
    pub world: World,
    /// Wikipedia-style entity articles.
    pub articles: Vec<Doc>,
    /// Hearst-pattern / enumeration overview pages.
    pub overviews: Vec<Doc>,
    /// Noisy web pages.
    pub web_pages: Vec<Doc>,
    /// Commonsense essays about concepts.
    pub essays: Vec<Doc>,
    /// Timestamped social-media posts.
    pub posts: Vec<social::Post>,
}

impl Corpus {
    /// Generates the full corpus from a config. Deterministic in
    /// `cfg.world.seed`.
    pub fn generate(cfg: &CorpusConfig) -> Corpus {
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(cfg.world.seed ^ 0x5eed_c0de);
        let articles = article::render_articles(&world, cfg, &mut rng);
        let overviews = article::render_overviews(&world, cfg, &mut rng);
        let web_pages = web::render_web_pages(&world, cfg, &mut rng);
        let essays = commonsense::render_essays(&world, cfg, &mut rng);
        let posts = social::render_posts(&world, cfg, &mut rng);
        Corpus { world, articles, overviews, web_pages, essays, posts }
    }

    /// All prose documents (articles, overviews, web pages, essays) in
    /// one slice-friendly vector — the harvesting pipeline's input.
    pub fn all_docs(&self) -> Vec<&Doc> {
        self.articles
            .iter()
            .chain(self.overviews.iter())
            .chain(self.web_pages.iter())
            .chain(self.essays.iter())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::tiny();
        let a = Corpus::generate(&cfg);
        let b = Corpus::generate(&cfg);
        assert_eq!(a.world.entities.len(), b.world.entities.len());
        assert_eq!(a.world.facts.len(), b.world.facts.len());
        assert_eq!(a.articles.len(), b.articles.len());
        for (x, y) in a.articles.iter().zip(&b.articles) {
            assert_eq!(x.text, y.text);
        }
        for (x, y) in a.posts.iter().zip(&b.posts) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg2 = CorpusConfig::tiny();
        cfg2.world.seed += 1;
        let a = Corpus::generate(&CorpusConfig::tiny());
        let b = Corpus::generate(&cfg2);
        let same = a.articles.iter().zip(&b.articles).filter(|(x, y)| x.text == y.text).count();
        assert!(same < a.articles.len(), "seeds produced identical corpora");
    }

    #[test]
    fn all_docs_aggregates_every_collection() {
        let c = Corpus::generate(&CorpusConfig::tiny());
        assert_eq!(
            c.all_docs().len(),
            c.articles.len() + c.overviews.len() + c.web_pages.len() + c.essays.len()
        );
    }
}
