//! Noisy web-page rendering: lower fact density, more distractors,
//! fragmentary prose — the "web sources" of the tutorial's harvesting
//! pipeline, exercising the robustness/confidence code paths.

use rand::rngs::StdRng;
use rand::Rng;

use crate::config::CorpusConfig;
use crate::doc::{Doc, DocKind, TextBuilder};
use crate::world::{GoldFact, World};

/// Junk fragments interleaved into web pages (no mentions, no facts).
static JUNK: &[&str] = &[
    "Click here to subscribe to our newsletter. ",
    "Advertisement. ",
    "Read more below. ",
    "Top ten lists you cannot miss. ",
    "Posted by admin at 10:34. ",
    "Share this article with your friends. ",
];

/// Renders `cfg.web_pages` noisy pages. Each page picks a handful of
/// random gold facts and verbalizes them crudely between junk fragments;
/// a slice of the pages also carries false statements.
pub fn render_web_pages(world: &World, cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<Doc> {
    let mut docs = Vec::new();
    if world.facts.is_empty() {
        return docs;
    }
    for i in 0..cfg.web_pages {
        let mut b = TextBuilder::new();
        b.push(JUNK[rng.gen_range(0..JUNK.len())]);
        let n_facts = rng.gen_range(1..=3usize);
        for _ in 0..n_facts {
            let f = &world.facts[rng.gen_range(0..world.facts.len())];
            crude_fact_sentence(&mut b, world, f, rng);
            if rng.gen_bool(0.5) {
                b.push(JUNK[rng.gen_range(0..JUNK.len())]);
            }
        }
        // Web noise is twice the article noise rate.
        if rng.gen_bool((cfg.noise_rate * 2.0).min(1.0)) {
            let subject = &world.entities[rng.gen_range(0..world.entities.len())];
            // Reuse a crude template with a wrong object.
            let wrong = &world.entities[rng.gen_range(0..world.entities.len())];
            if !world.holds(subject.id, crate::world::Rel::BornIn, wrong.id) {
                b.push_mention(&subject.display, subject.id);
                b.push(" was born in ");
                b.push_mention(&wrong.display, wrong.id);
                b.push(". ");
            }
        }
        let (text, mentions) = b.finish();
        docs.push(Doc {
            id: 200_000 + i as u32,
            kind: DocKind::Web,
            title: format!("webpage-{i}"),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        });
    }
    docs
}

/// A terse, sometimes sloppy verbalization of a fact.
fn crude_fact_sentence(b: &mut TextBuilder, world: &World, f: &GoldFact, rng: &mut StdRng) {
    let s = world.entity(f.s);
    let o = world.entity(f.o);
    // Web text prefers short alias mentions.
    let s_surface = if rng.gen_bool(0.5) { &s.short } else { &s.display };
    match f.rel {
        crate::world::Rel::BornIn => {
            b.push_mention(s_surface, f.s);
            b.push(" was born in ");
            b.push_mention(&o.display, f.o);
            b.push(". ");
        }
        crate::world::Rel::Founded => {
            b.push_mention(s_surface, f.s);
            b.push(" founded ");
            b.push_mention(&o.display, f.o);
            b.push(". ");
        }
        crate::world::Rel::WorksAt => {
            b.push_mention(s_surface, f.s);
            b.push(" works at ");
            b.push_mention(&o.display, f.o);
            b.push(". ");
        }
        crate::world::Rel::Created => {
            b.push_mention(s_surface, f.s);
            b.push(" released ");
            b.push_mention(&o.display, f.o);
            b.push(". ");
        }
        _ => {
            // Generic copular statement; still a usable Open IE target.
            b.push_mention(s_surface, f.s);
            b.push(" is linked with ");
            b.push_mention(&o.display, f.o);
            b.push(". ");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn renders_requested_number_of_pages() {
        let cfg = CorpusConfig::tiny();
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(11);
        let docs = render_web_pages(&world, &cfg, &mut rng);
        assert_eq!(docs.len(), cfg.web_pages);
        for d in &docs {
            assert_eq!(d.kind, DocKind::Web);
            for m in &d.mentions {
                assert_eq!(&d.text[m.start..m.end], m.surface);
            }
        }
    }

    #[test]
    fn pages_contain_junk_and_mentions() {
        let cfg = CorpusConfig::tiny();
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(11);
        let docs = render_web_pages(&world, &cfg, &mut rng);
        assert!(docs.iter().any(|d| !d.mentions.is_empty()));
        assert!(docs.iter().any(|d| JUNK.iter().any(|j| d.text.contains(j.trim_end()))));
    }

    #[test]
    fn empty_world_produces_no_pages() {
        let mut cfg = CorpusConfig::tiny();
        cfg.world.people = 0;
        cfg.world.companies = 0;
        cfg.world.cities = 0;
        cfg.world.countries = 0;
        cfg.world.universities = 0;
        cfg.world.products = 0;
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(11);
        assert!(render_web_pages(&world, &cfg, &mut rng).is_empty());
    }
}
