//! The ground-truth world: entities, gold facts, gold taxonomy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::WorldConfig;
use crate::lexicon::{INDUSTRIES, OCCUPATIONS, PRODUCT_KINDS};
use crate::names::{canonical, multilingual_labels, NameGen};

/// Identifier of a world entity (index into [`World::entities`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The coarse kind of an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A human being.
    Person,
    /// A commercial company.
    Company,
    /// A city.
    City,
    /// A country.
    Country,
    /// A university.
    University,
    /// A product (phone, laptop, ...).
    Product,
}

impl EntityKind {
    /// The gold class name for this kind.
    pub fn class_name(self) -> &'static str {
        match self {
            EntityKind::Person => "person",
            EntityKind::Company => "company",
            EntityKind::City => "city",
            EntityKind::Country => "country",
            EntityKind::University => "university",
            EntityKind::Product => "product",
        }
    }
}

/// The closed relation vocabulary of the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// person → city.
    BornIn,
    /// person → country.
    CitizenOf,
    /// person → company (temporal: begin = founding year).
    Founded,
    /// person → company (temporal interval).
    WorksAt,
    /// person → person (stored in both directions; temporal begin).
    MarriedTo,
    /// person → university (temporal interval).
    StudiedAt,
    /// city → country.
    LocatedIn,
    /// company → city.
    HeadquarteredIn,
    /// city → country (inverse-functional too).
    CapitalOf,
    /// company → product (inverse-functional; temporal begin = launch).
    Created,
}

/// All relations, for iteration.
pub const ALL_RELS: [Rel; 10] = [
    Rel::BornIn,
    Rel::CitizenOf,
    Rel::Founded,
    Rel::WorksAt,
    Rel::MarriedTo,
    Rel::StudiedAt,
    Rel::LocatedIn,
    Rel::HeadquarteredIn,
    Rel::CapitalOf,
    Rel::Created,
];

impl Rel {
    /// The KB predicate name.
    pub fn name(self) -> &'static str {
        match self {
            Rel::BornIn => "bornIn",
            Rel::CitizenOf => "citizenOf",
            Rel::Founded => "founded",
            Rel::WorksAt => "worksAt",
            Rel::MarriedTo => "marriedTo",
            Rel::StudiedAt => "studiedAt",
            Rel::LocatedIn => "locatedIn",
            Rel::HeadquarteredIn => "headquarteredIn",
            Rel::CapitalOf => "capitalOf",
            Rel::Created => "created",
        }
    }

    /// Parses a predicate name back to the relation.
    pub fn from_name(name: &str) -> Option<Rel> {
        ALL_RELS.into_iter().find(|r| r.name() == name)
    }

    /// Whether a subject may have at most one object.
    pub fn functional(self) -> bool {
        matches!(
            self,
            Rel::BornIn
                | Rel::CitizenOf
                | Rel::LocatedIn
                | Rel::HeadquarteredIn
                | Rel::CapitalOf
                | Rel::MarriedTo
        )
    }

    /// Whether an object may have at most one subject.
    pub fn inverse_functional(self) -> bool {
        matches!(self, Rel::CapitalOf | Rel::Created | Rel::MarriedTo)
    }

    /// Required subject kind.
    pub fn domain(self) -> EntityKind {
        match self {
            Rel::BornIn
            | Rel::CitizenOf
            | Rel::Founded
            | Rel::WorksAt
            | Rel::MarriedTo
            | Rel::StudiedAt => EntityKind::Person,
            Rel::LocatedIn | Rel::CapitalOf => EntityKind::City,
            Rel::HeadquarteredIn | Rel::Created => EntityKind::Company,
        }
    }

    /// Required object kind.
    pub fn range(self) -> EntityKind {
        match self {
            Rel::BornIn => EntityKind::City,
            Rel::CitizenOf => EntityKind::Country,
            Rel::Founded | Rel::WorksAt => EntityKind::Company,
            Rel::MarriedTo => EntityKind::Person,
            Rel::StudiedAt => EntityKind::University,
            Rel::LocatedIn | Rel::CapitalOf => EntityKind::Country,
            Rel::HeadquarteredIn => EntityKind::City,
            Rel::Created => EntityKind::Product,
        }
    }

    /// Whether facts of this relation carry temporal scopes.
    pub fn temporal(self) -> bool {
        matches!(self, Rel::Founded | Rel::WorksAt | Rel::MarriedTo | Rel::StudiedAt | Rel::Created)
    }
}

/// One entity of the synthetic world.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Dense id (index into [`World::entities`]).
    pub id: EntityId,
    /// Coarse kind.
    pub kind: EntityKind,
    /// Canonical KB identifier (unique, underscored): `Alan_Varen`.
    pub canonical: String,
    /// Display name: `Alan Varen`.
    pub display: String,
    /// All surface forms (display plus short/ambiguous aliases).
    pub aliases: Vec<String>,
    /// The preferred short alias (often ambiguous): `Varen`.
    pub short: String,
    /// Gold direct classes (occupations, industry classes, kind class).
    pub classes: Vec<String>,
    /// Birth year (person), founding year (company), launch year
    /// (product); `None` for places.
    pub year: Option<i32>,
    /// Country affiliation: citizenship (person), location (city),
    /// `None` otherwise.
    pub country: Option<EntityId>,
    /// Multilingual labels `(lang, label)` including English.
    pub labels: Vec<(&'static str, String)>,
}

/// A gold fact with optional temporal scope (years).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GoldFact {
    /// Subject entity.
    pub s: EntityId,
    /// Relation.
    pub rel: Rel,
    /// Object entity.
    pub o: EntityId,
    /// First year the fact holds, if scoped.
    pub begin: Option<i32>,
    /// Last year the fact holds (`None` = open/unknown end).
    pub end: Option<i32>,
}

/// The generated ground-truth world.
#[derive(Debug, Clone)]
pub struct World {
    /// Generation config (for provenance).
    pub cfg: WorldConfig,
    /// All entities, indexable by [`EntityId`].
    pub entities: Vec<Entity>,
    /// All gold facts.
    pub facts: Vec<GoldFact>,
    /// Gold taxonomy edges `(subclass, superclass)` over class names.
    pub taxonomy_edges: Vec<(String, String)>,
    /// Gold direct `instanceOf` assignments (entity, class name).
    pub instance_of: Vec<(EntityId, String)>,
    /// The two rival flagship products tracked by the analytics
    /// experiment (newest version of each rival line).
    pub rival_products: (EntityId, EntityId),
}

impl World {
    /// Deterministically generates a world from the config.
    pub fn generate(cfg: &WorldConfig) -> World {
        Generator::new(cfg).run()
    }

    /// Entity lookup.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// All entities of a kind.
    pub fn of_kind(&self, kind: EntityKind) -> impl Iterator<Item = &Entity> {
        self.entities.iter().filter(move |e| e.kind == kind)
    }

    /// Finds an entity by canonical name.
    pub fn by_canonical(&self, canonical: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.canonical == canonical)
    }

    /// All gold facts with `s` as subject.
    pub fn facts_of(&self, s: EntityId) -> impl Iterator<Item = &GoldFact> {
        self.facts.iter().filter(move |f| f.s == s)
    }

    /// Whether `(s, rel, o)` is a gold fact.
    pub fn holds(&self, s: EntityId, rel: Rel, o: EntityId) -> bool {
        self.facts.iter().any(|f| f.s == s && f.rel == rel && f.o == o)
    }
}

struct Generator<'a> {
    cfg: &'a WorldConfig,
    rng: StdRng,
    names: NameGen,
    entities: Vec<Entity>,
    facts: Vec<GoldFact>,
    instance_of: Vec<(EntityId, String)>,
}

impl<'a> Generator<'a> {
    fn new(cfg: &'a WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Surname pool shrinks as ambiguity grows; at 0 ambiguity every
        // person can have a unique surname.
        let pool = ((cfg.people as f64) * (1.0 - cfg.ambiguity)).ceil().max(1.0) as usize;
        let names = NameGen::new(&mut rng, pool);
        Self { cfg, rng, names, entities: Vec::new(), facts: Vec::new(), instance_of: Vec::new() }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_entity(
        &mut self,
        kind: EntityKind,
        display: String,
        short: String,
        extra_aliases: Vec<String>,
        classes: Vec<String>,
        year: Option<i32>,
        country: Option<EntityId>,
    ) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        let mut aliases = vec![display.clone()];
        if short != display {
            aliases.push(short.clone());
        }
        for a in extra_aliases {
            if !aliases.contains(&a) {
                aliases.push(a);
            }
        }
        for c in &classes {
            self.instance_of.push((id, c.clone()));
        }
        self.entities.push(Entity {
            id,
            kind,
            canonical: canonical(&display),
            display: display.clone(),
            aliases,
            short,
            classes,
            year,
            country,
            labels: multilingual_labels(&display),
        });
        id
    }

    fn fact(&mut self, s: EntityId, rel: Rel, o: EntityId, begin: Option<i32>, end: Option<i32>) {
        self.facts.push(GoldFact { s, rel, o, begin, end });
    }

    fn run(mut self) -> World {
        let countries = self.gen_countries();
        let cities = self.gen_cities(&countries);
        let universities = self.gen_universities(&cities);
        let companies = self.gen_companies(&cities);
        let people = self.gen_people(&cities, &countries);
        let rival_products = self.gen_products(&companies);
        self.gen_founders(&companies, &people);
        self.gen_employment(&companies, &people);
        self.gen_marriages(&people);
        self.gen_studies(&universities, &people);

        let taxonomy_edges = gold_taxonomy_edges();
        World {
            cfg: self.cfg.clone(),
            entities: self.entities,
            facts: self.facts,
            taxonomy_edges,
            instance_of: self.instance_of,
            rival_products,
        }
    }

    fn gen_countries(&mut self) -> Vec<EntityId> {
        (0..self.cfg.countries)
            .map(|_| {
                let name = self.names.country(&mut self.rng);
                self.push_entity(
                    EntityKind::Country,
                    name.clone(),
                    name,
                    vec![],
                    vec!["country".into()],
                    None,
                    None,
                )
            })
            .collect()
    }

    fn gen_cities(&mut self, countries: &[EntityId]) -> Vec<EntityId> {
        let mut capitals_seen = vec![false; countries.len()];
        (0..self.cfg.cities)
            .map(|i| {
                let name = self.names.city(&mut self.rng);
                let ci = i % countries.len().max(1);
                let country = countries.get(ci).copied();
                let id = self.push_entity(
                    EntityKind::City,
                    name.clone(),
                    name,
                    vec![],
                    vec!["city".into()],
                    None,
                    country,
                );
                if let Some(c) = country {
                    self.fact(id, Rel::LocatedIn, c, None, None);
                    if !capitals_seen[ci] {
                        capitals_seen[ci] = true;
                        self.fact(id, Rel::CapitalOf, c, None, None);
                    }
                }
                id
            })
            .collect()
    }

    fn gen_universities(&mut self, cities: &[EntityId]) -> Vec<EntityId> {
        (0..self.cfg.universities)
            .map(|_| {
                let city = cities[self.rng.gen_range(0..cities.len())];
                let city_name = self.entities[city.index()].display.clone();
                let name = self.names.university(&city_name);
                let short = name.clone();
                self.push_entity(
                    EntityKind::University,
                    name,
                    short,
                    vec![],
                    vec!["university".into()],
                    None,
                    self.entities[city.index()].country,
                )
            })
            .collect()
    }

    fn gen_companies(&mut self, cities: &[EntityId]) -> Vec<EntityId> {
        (0..self.cfg.companies)
            .map(|i| {
                let name = self.names.company(&mut self.rng);
                let short = name.split(' ').next().unwrap_or(&name).to_string();
                let acronym: String = name.split(' ').filter_map(|w| w.chars().next()).collect();
                // Force the first two companies into the phone industry:
                // they are the rivals of the analytics case study.
                let industry = if i < 2 {
                    "phone"
                } else {
                    INDUSTRIES[self.rng.gen_range(0..INDUSTRIES.len())]
                };
                let founded = self.rng.gen_range(1900..2005);
                let city = cities[self.rng.gen_range(0..cities.len())];
                let id = self.push_entity(
                    EntityKind::Company,
                    name,
                    short,
                    vec![acronym],
                    vec!["company".into(), format!("{industry}_company")],
                    Some(founded),
                    self.entities[city.index()].country,
                );
                self.fact(id, Rel::HeadquarteredIn, city, None, None);
                id
            })
            .collect()
    }

    fn gen_people(&mut self, cities: &[EntityId], _countries: &[EntityId]) -> Vec<EntityId> {
        (0..self.cfg.people)
            .map(|_| {
                let (given, family) = self.names.person(&mut self.rng);
                let display = format!("{given} {family}");
                let initial =
                    format!("{}. {family}", given.chars().next().expect("nonempty given name"));
                let birth = self.rng.gen_range(1900..1996);
                let n_occ = self.rng.gen_range(1..=2usize);
                let mut classes = vec!["person".to_string()];
                while classes.len() < 1 + n_occ {
                    let occ = OCCUPATIONS[self.rng.gen_range(0..OCCUPATIONS.len())].to_string();
                    if !classes.contains(&occ) {
                        classes.push(occ);
                    }
                }
                let city = cities[self.rng.gen_range(0..cities.len())];
                let country = self.entities[city.index()].country;
                let id = self.push_entity(
                    EntityKind::Person,
                    display,
                    family,
                    vec![initial],
                    classes,
                    Some(birth),
                    country,
                );
                self.fact(id, Rel::BornIn, city, Some(birth), Some(birth));
                if let Some(c) = country {
                    self.fact(id, Rel::CitizenOf, c, None, None);
                }
                id
            })
            .collect()
    }

    fn gen_products(&mut self, companies: &[EntityId]) -> (EntityId, EntityId) {
        if companies.is_empty() || self.cfg.products == 0 {
            // Degenerate worlds (used by edge-case tests) have no rivals;
            // the sentinel ids are never dereferenced for such worlds.
            return (EntityId(0), EntityId(0));
        }
        let mut per_company_version: Vec<u32> = vec![0; companies.len()];
        let mut line_stem: Vec<Option<String>> = vec![None; companies.len()];
        let mut newest_of: Vec<Option<EntityId>> = vec![None; companies.len()];
        for i in 0..self.cfg.products {
            let ci = i % companies.len().max(1);
            let company = companies[ci];
            per_company_version[ci] += 1;
            let version = per_company_version[ci];
            // Each company keeps one product line: "Strato 1", "Strato 2", ...
            let name = if let Some(stem) = &line_stem[ci] {
                format!("{stem} {version}")
            } else {
                let fresh = self.names.product(&mut self.rng, version);
                let stem =
                    fresh.rsplit_once(' ').map(|(s, _)| s.to_string()).unwrap_or(fresh.clone());
                line_stem[ci] = Some(stem);
                fresh
            };
            let stem = line_stem[ci].clone().expect("stem set above");
            let company_year = self.entities[company.index()].year.unwrap_or(1950);
            let launch = (company_year + 5 + version as i32 * 3).min(2023);
            let industry_class = self.entities[company.index()]
                .classes
                .iter()
                .find(|c| c.ends_with("_company"))
                .cloned()
                .unwrap_or_default();
            let industry = industry_class.trim_end_matches("_company");
            let kind_idx = INDUSTRIES.iter().position(|&x| x == industry).unwrap_or(0);
            let kind_class = PRODUCT_KINDS[kind_idx].to_string();
            let id = self.push_entity(
                EntityKind::Product,
                name,
                stem,
                vec![],
                vec!["product".into(), kind_class],
                Some(launch),
                None,
            );
            self.fact(company, Rel::Created, id, Some(launch), None);
            newest_of[ci] = Some(id);
        }
        let a = newest_of.first().copied().flatten().expect("company 0 has a product");
        let b = newest_of.get(1).copied().flatten().unwrap_or(a);
        (a, b)
    }

    fn gen_founders(&mut self, companies: &[EntityId], people: &[EntityId]) {
        for &company in companies {
            let founded = self.entities[company.index()].year.unwrap_or(1950);
            let n = self.rng.gen_range(1..=2usize);
            for _ in 0..n {
                let p = people[self.rng.gen_range(0..people.len())];
                if self.holds_local(p, Rel::Founded, company) {
                    continue;
                }
                self.fact(p, Rel::Founded, company, Some(founded), None);
                // Founders are entrepreneurs by definition.
                let person = &mut self.entities[p.index()];
                if !person.classes.iter().any(|c| c == "entrepreneur") {
                    person.classes.push("entrepreneur".into());
                    self.instance_of.push((p, "entrepreneur".into()));
                }
            }
        }
    }

    fn gen_employment(&mut self, companies: &[EntityId], people: &[EntityId]) {
        for &p in people {
            if self.rng.gen_bool(0.6) {
                let company = companies[self.rng.gen_range(0..companies.len())];
                let birth = self.entities[p.index()].year.unwrap_or(1950);
                let begin = birth + self.rng.gen_range(20..30);
                let end = if self.rng.gen_bool(0.5) {
                    Some(begin + self.rng.gen_range(1..15))
                } else {
                    None
                };
                self.fact(p, Rel::WorksAt, company, Some(begin), end);
            }
        }
    }

    fn gen_marriages(&mut self, people: &[EntityId]) {
        let mut unmarried: Vec<EntityId> = people.to_vec();
        while unmarried.len() >= 2 {
            if !self.rng.gen_bool(0.4) {
                unmarried.pop();
                continue;
            }
            let a = unmarried.pop().expect("len checked");
            let idx = self.rng.gen_range(0..unmarried.len());
            let b = unmarried.swap_remove(idx);
            let birth_a = self.entities[a.index()].year.unwrap_or(1950);
            let birth_b = self.entities[b.index()].year.unwrap_or(1950);
            let wed = birth_a.max(birth_b) + self.rng.gen_range(20..35);
            // Stored in both directions so each is independently gold.
            self.fact(a, Rel::MarriedTo, b, Some(wed), None);
            self.fact(b, Rel::MarriedTo, a, Some(wed), None);
        }
    }

    fn gen_studies(&mut self, universities: &[EntityId], people: &[EntityId]) {
        if universities.is_empty() {
            return;
        }
        for &p in people {
            if self.rng.gen_bool(0.7) {
                let u = universities[self.rng.gen_range(0..universities.len())];
                let birth = self.entities[p.index()].year.unwrap_or(1950);
                let begin = birth + 18;
                self.fact(p, Rel::StudiedAt, u, Some(begin), Some(begin + 4));
            }
        }
    }

    fn holds_local(&self, s: EntityId, rel: Rel, o: EntityId) -> bool {
        self.facts.iter().any(|f| f.s == s && f.rel == rel && f.o == o)
    }
}

/// The gold class taxonomy, shared by all worlds.
pub fn gold_taxonomy_edges() -> Vec<(String, String)> {
    let mut edges: Vec<(String, String)> = vec![
        ("person".into(), "entity".into()),
        ("organization".into(), "entity".into()),
        ("location".into(), "entity".into()),
        ("product".into(), "entity".into()),
        ("company".into(), "organization".into()),
        ("university".into(), "organization".into()),
        ("city".into(), "location".into()),
        ("country".into(), "location".into()),
    ];
    for occ in OCCUPATIONS {
        edges.push(((*occ).into(), "person".into()));
    }
    for ind in INDUSTRIES {
        edges.push((format!("{ind}_company"), "company".into()));
    }
    for kind in PRODUCT_KINDS {
        edges.push(((*kind).into(), "product".into()));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(&WorldConfig::tiny(42))
    }

    #[test]
    fn entity_counts_match_config() {
        let w = tiny_world();
        let cfg = &w.cfg;
        assert_eq!(w.of_kind(EntityKind::Person).count(), cfg.people);
        assert_eq!(w.of_kind(EntityKind::Company).count(), cfg.companies);
        assert_eq!(w.of_kind(EntityKind::City).count(), cfg.cities);
        assert_eq!(w.of_kind(EntityKind::Country).count(), cfg.countries);
        assert_eq!(w.of_kind(EntityKind::University).count(), cfg.universities);
        assert_eq!(w.of_kind(EntityKind::Product).count(), cfg.products);
        assert_eq!(w.entities.len(), cfg.total_entities());
    }

    #[test]
    fn canonical_names_are_unique() {
        let w = tiny_world();
        let mut seen = std::collections::HashSet::new();
        for e in &w.entities {
            assert!(seen.insert(&e.canonical), "duplicate canonical {}", e.canonical);
        }
    }

    #[test]
    fn all_facts_respect_type_signatures() {
        let w = tiny_world();
        for f in &w.facts {
            assert_eq!(w.entity(f.s).kind, f.rel.domain(), "{f:?}");
            assert_eq!(w.entity(f.o).kind, f.rel.range(), "{f:?}");
        }
    }

    #[test]
    fn functional_relations_have_unique_objects() {
        let w = tiny_world();
        for rel in ALL_RELS {
            if !rel.functional() {
                continue;
            }
            let mut seen = std::collections::HashMap::new();
            for f in w.facts.iter().filter(|f| f.rel == rel) {
                if let Some(prev) = seen.insert(f.s, f.o) {
                    assert_eq!(prev, f.o, "{rel:?} violated for {:?}", f.s);
                }
            }
        }
    }

    #[test]
    fn inverse_functional_relations_have_unique_subjects() {
        let w = tiny_world();
        for rel in ALL_RELS {
            if !rel.inverse_functional() {
                continue;
            }
            let mut seen = std::collections::HashMap::new();
            for f in w.facts.iter().filter(|f| f.rel == rel) {
                if let Some(prev) = seen.insert(f.o, f.s) {
                    assert_eq!(prev, f.s, "{rel:?} inverse violated for {:?}", f.o);
                }
            }
        }
    }

    #[test]
    fn every_person_is_born_somewhere() {
        let w = tiny_world();
        for p in w.of_kind(EntityKind::Person) {
            assert!(
                w.facts_of(p.id).any(|f| f.rel == Rel::BornIn),
                "{} has no birthplace",
                p.display
            );
        }
    }

    #[test]
    fn marriages_are_symmetric() {
        let w = tiny_world();
        for f in w.facts.iter().filter(|f| f.rel == Rel::MarriedTo) {
            assert!(w.holds(f.o, Rel::MarriedTo, f.s), "asymmetric marriage {f:?}");
        }
    }

    #[test]
    fn each_country_has_exactly_one_capital() {
        let w = tiny_world();
        for c in w.of_kind(EntityKind::Country) {
            let capitals =
                w.facts.iter().filter(|f| f.rel == Rel::CapitalOf && f.o == c.id).count();
            assert_eq!(capitals, 1, "{} has {capitals} capitals", c.display);
        }
    }

    #[test]
    fn rival_products_are_phones_from_different_companies() {
        let w = tiny_world();
        let (a, b) = w.rival_products;
        assert_ne!(a, b);
        let creator = |p: EntityId| {
            w.facts
                .iter()
                .find(|f| f.rel == Rel::Created && f.o == p)
                .map(|f| f.s)
                .expect("product has creator")
        };
        assert_ne!(creator(a), creator(b));
        for p in [a, b] {
            assert!(w.entity(p).classes.iter().any(|c| c == "phone"));
        }
    }

    #[test]
    fn ambiguity_knob_shrinks_surname_pool() {
        let mut lo = WorldConfig::tiny(7);
        lo.ambiguity = 0.0;
        let mut hi = WorldConfig::tiny(7);
        hi.ambiguity = 0.9;
        let count_distinct_shorts = |w: &World| {
            w.of_kind(EntityKind::Person)
                .map(|e| e.short.clone())
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let w_lo = World::generate(&lo);
        let w_hi = World::generate(&hi);
        assert!(count_distinct_shorts(&w_lo) > count_distinct_shorts(&w_hi));
    }

    #[test]
    fn founders_are_entrepreneurs() {
        let w = tiny_world();
        for f in w.facts.iter().filter(|f| f.rel == Rel::Founded) {
            let founder = w.entity(f.s);
            assert!(
                founder.classes.iter().any(|c| c == "entrepreneur"),
                "{} founded a company but is no entrepreneur",
                founder.display
            );
        }
    }

    #[test]
    fn temporal_relations_carry_begin_years() {
        let w = tiny_world();
        for f in &w.facts {
            if f.rel.temporal() {
                assert!(f.begin.is_some(), "{f:?} lacks begin year");
            }
        }
    }

    #[test]
    fn instance_of_covers_every_entity() {
        let w = tiny_world();
        for e in &w.entities {
            assert!(
                w.instance_of.iter().any(|(id, _)| *id == e.id),
                "{} has no classes",
                e.display
            );
        }
    }

    #[test]
    fn gold_taxonomy_contains_kind_classes() {
        let edges = gold_taxonomy_edges();
        for kind in ["person", "company", "city", "country", "university", "product"] {
            assert!(edges.iter().any(|(sub, _)| sub == kind), "{kind} missing from taxonomy");
        }
        // entrepreneur ⊂ person, phone ⊂ product
        assert!(edges.contains(&("entrepreneur".into(), "person".into())));
        assert!(edges.contains(&("phone".into(), "product".into())));
    }

    #[test]
    fn aliases_include_display_and_short() {
        let w = tiny_world();
        for e in &w.entities {
            assert!(e.aliases.contains(&e.display));
            assert!(e.aliases.contains(&e.short) || e.short == e.display);
        }
    }

    #[test]
    fn by_canonical_round_trips() {
        let w = tiny_world();
        for e in w.entities.iter().take(10) {
            assert_eq!(w.by_canonical(&e.canonical).unwrap().id, e.id);
        }
        assert!(w.by_canonical("Nonexistent_Entity").is_none());
    }
}
