//! Wikipedia-style article rendering with gold mentions, infoboxes,
//! categories — plus enumeration "overview" pages carrying Hearst
//! patterns for the taxonomy-induction experiments.

use rand::rngs::StdRng;
use rand::Rng;

use crate::config::CorpusConfig;
use crate::doc::{Doc, DocKind, TextBuilder};
use crate::lexicon::DISTRACTOR_TEMPLATES;
use crate::names::nationality_adjective;
use crate::world::{Entity, EntityId, EntityKind, GoldFact, Rel, World};

/// Pluralizes a class name for category strings and Hearst patterns.
pub fn pluralize(class: &str) -> String {
    if class == "person" {
        return "people".to_string();
    }
    if let Some(stripped) = class.strip_suffix('y') {
        // city -> cities, university -> universities
        if !stripped.ends_with(|c: char| "aeiou".contains(c)) {
            return format!("{stripped}ies");
        }
    }
    format!("{class}s")
}

/// Renders one article per entity.
pub fn render_articles(world: &World, cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<Doc> {
    world
        .entities
        .iter()
        .enumerate()
        .map(|(i, e)| render_entity_article(world, cfg, e, rng, i as u32))
        .collect()
}

/// The infobox key a relation uses.
pub fn infobox_key(rel: Rel) -> &'static str {
    match rel {
        Rel::BornIn => "birth_place",
        Rel::CitizenOf => "citizenship",
        Rel::Founded => "founded",
        Rel::WorksAt => "employer",
        Rel::MarriedTo => "spouse",
        Rel::StudiedAt => "alma_mater",
        Rel::LocatedIn => "country",
        Rel::HeadquarteredIn => "headquarters",
        Rel::CapitalOf => "capital_of",
        Rel::Created => "products",
    }
}

/// Chooses the subject surface form for a repeated mention.
fn subject_surface<'a>(
    e: &'a Entity,
    cfg: &CorpusConfig,
    rng: &mut StdRng,
    first: bool,
) -> &'a str {
    if first || !rng.gen_bool(cfg.alias_mention_rate) {
        &e.display
    } else {
        &e.short
    }
}

/// Renders one fact as a sentence into the builder, choosing among the
/// relation's paraphrase templates.
fn fact_sentence(
    b: &mut TextBuilder,
    world: &World,
    f: &GoldFact,
    subj_surface: &str,
    rng: &mut StdRng,
) {
    let s = f.s;
    let o = f.o;
    let obj = &world.entity(o).display;
    let y = f.begin;
    let y2 = f.end;
    // Each arm writes one full sentence ending in ". ".
    match f.rel {
        Rel::BornIn => {
            b.push_mention(subj_surface, s);
            b.push(" was born in ");
            b.push_mention(obj, o);
            if let Some(y) = y {
                b.push(&format!(" in {y}"));
            }
            b.push(". ");
        }
        Rel::CitizenOf => {
            b.push_mention(subj_surface, s);
            b.push(" is a citizen of ");
            b.push_mention(obj, o);
            b.push(". ");
        }
        Rel::Founded => match rng.gen_range(0..3) {
            0 => {
                b.push_mention(subj_surface, s);
                b.push(" founded ");
                b.push_mention(obj, o);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
            1 => {
                b.push_mention(obj, o);
                b.push(" was founded by ");
                b.push_mention(subj_surface, s);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
            _ => {
                b.push_mention(subj_surface, s);
                b.push(" established ");
                b.push_mention(obj, o);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
        },
        Rel::WorksAt => {
            if let (Some(y), Some(y2)) = (y, y2) {
                b.push_mention(subj_surface, s);
                b.push(" worked at ");
                b.push_mention(obj, o);
                b.push(&format!(" from {y} to {y2}. "));
            } else if rng.gen_bool(0.5) {
                b.push_mention(subj_surface, s);
                b.push(" works at ");
                b.push_mention(obj, o);
                b.push(". ");
            } else {
                b.push_mention(subj_surface, s);
                b.push(" joined ");
                b.push_mention(obj, o);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
        }
        Rel::MarriedTo => {
            if rng.gen_bool(0.5) {
                b.push_mention(subj_surface, s);
                b.push(" married ");
                b.push_mention(obj, o);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            } else {
                b.push_mention(subj_surface, s);
                b.push(" is married to ");
                b.push_mention(obj, o);
                b.push(". ");
            }
        }
        Rel::StudiedAt => {
            if let (Some(y2), true) = (y2, rng.gen_bool(0.5)) {
                b.push_mention(subj_surface, s);
                b.push(" graduated from ");
                b.push_mention(obj, o);
                b.push(&format!(" in {y2}. "));
            } else {
                b.push_mention(subj_surface, s);
                b.push(" studied at ");
                b.push_mention(obj, o);
                b.push(". ");
            }
        }
        Rel::LocatedIn => {
            if rng.gen_bool(0.5) {
                b.push_mention(subj_surface, s);
                b.push(" is located in ");
            } else {
                b.push_mention(subj_surface, s);
                b.push(" is a city in ");
            }
            b.push_mention(obj, o);
            b.push(". ");
        }
        Rel::HeadquarteredIn => {
            b.push_mention(subj_surface, s);
            if rng.gen_bool(0.5) {
                b.push(" is headquartered in ");
            } else {
                b.push(" is based in ");
            }
            b.push_mention(obj, o);
            b.push(". ");
        }
        Rel::CapitalOf => {
            b.push_mention(subj_surface, s);
            b.push(" is the capital of ");
            b.push_mention(obj, o);
            b.push(". ");
        }
        Rel::Created => match rng.gen_range(0..3) {
            0 => {
                b.push_mention(subj_surface, s);
                b.push(" released ");
                b.push_mention(obj, o);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
            1 => {
                b.push_mention(obj, o);
                b.push(" was released by ");
                b.push_mention(subj_surface, s);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
            _ => {
                b.push_mention(subj_surface, s);
                b.push(" launched ");
                b.push_mention(obj, o);
                if let Some(y) = y {
                    b.push(&format!(" in {y}"));
                }
                b.push(". ");
            }
        },
    }
}

/// Renders a *false* fact sentence (noise). Half the time the false fact
/// violates a functionality constraint (same subject, different object),
/// half the time a type constraint (subject of the wrong kind).
fn noise_sentence(b: &mut TextBuilder, world: &World, subject: &Entity, rng: &mut StdRng) {
    // Relations whose templates we can reuse with arbitrary arguments.
    const NOISE_RELS: [Rel; 4] = [Rel::BornIn, Rel::HeadquarteredIn, Rel::WorksAt, Rel::Founded];
    let type_violation = rng.gen_bool(0.5);
    // Type violation: a relation whose domain does NOT match the subject
    // ("Nimbus Systems was born in ..."). Otherwise a domain-compatible
    // relation, which for functional relations yields a functionality
    // violation the reasoner can catch.
    let pool: Vec<Rel> =
        NOISE_RELS.into_iter().filter(|r| (r.domain() != subject.kind) == type_violation).collect();
    let rel = if pool.is_empty() {
        NOISE_RELS[rng.gen_range(0..NOISE_RELS.len())]
    } else {
        pool[rng.gen_range(0..pool.len())]
    };
    // Pick a random object of the template's range kind that is NOT a
    // gold object for this subject.
    let candidates: Vec<EntityId> = world
        .of_kind(rel.range())
        .map(|e| e.id)
        .filter(|&o| !world.holds(subject.id, rel, o))
        .collect();
    if candidates.is_empty() {
        return;
    }
    let o = candidates[rng.gen_range(0..candidates.len())];
    let fake = GoldFact { s: subject.id, rel, o, begin: None, end: None };
    fact_sentence(b, world, &fake, &subject.display, rng);
}

/// Renders a distractor sentence. The subject may be mentioned by its
/// short alias (products by their line stem, people by surname), which
/// is how those ambiguous surface forms enter the anchor statistics.
fn distractor_sentence(
    b: &mut TextBuilder,
    world: &World,
    subject: &Entity,
    cfg: &CorpusConfig,
    rng: &mut StdRng,
) {
    let template = DISTRACTOR_TEMPLATES[rng.gen_range(0..DISTRACTOR_TEMPLATES.len())];
    let other = &world.entities[rng.gen_range(0..world.entities.len())];
    let surface =
        if rng.gen_bool(cfg.alias_mention_rate) { &subject.short } else { &subject.display };
    let mut rest = template;
    while let Some(pos) = rest.find('{') {
        b.push(&rest[..pos]);
        if rest[pos..].starts_with("{S}") {
            b.push_mention(surface, subject.id);
            rest = &rest[pos + 3..];
        } else if rest[pos..].starts_with("{X}") {
            b.push_mention(&other.display, other.id);
            rest = &rest[pos + 3..];
        } else {
            b.push("{");
            rest = &rest[pos + 1..];
        }
    }
    b.push(rest);
    b.push(" ");
}

/// Builds the article for one entity.
fn render_entity_article(
    world: &World,
    cfg: &CorpusConfig,
    e: &Entity,
    rng: &mut StdRng,
    id: u32,
) -> Doc {
    let mut b = TextBuilder::new();
    let mut infobox: Vec<(String, String)> = vec![("name".into(), e.display.clone())];
    if let Some(y) = e.year {
        let key = match e.kind {
            EntityKind::Person => "birth_year",
            EntityKind::Company => "founding_year",
            EntityKind::Product => "launch_year",
            _ => "year",
        };
        infobox.push((key.into(), y.to_string()));
    }

    // Intro sentence establishing the subject's classes (context for NED).
    intro_sentence(&mut b, world, e);

    let facts: Vec<&GoldFact> = world.facts_of(e.id).collect();
    let mut first = true;
    for f in &facts {
        if rng.gen_bool(cfg.infobox_coverage) {
            infobox.push((infobox_key(f.rel).into(), world.entity(f.o).display.clone()));
        }
        if rng.gen_bool(cfg.fact_sentence_rate) {
            let surface = subject_surface(e, cfg, rng, first).to_string();
            fact_sentence(&mut b, world, f, &surface, rng);
            first = false;
        }
        // Interleave distractors.
        if rng.gen_bool(cfg.distractors_per_article / (facts.len() as f64 + 1.0)) {
            distractor_sentence(&mut b, world, e, cfg, rng);
        }
    }
    // Standalone distractors for entities with few facts (products and
    // quiet people still need alias mentions for the anchor statistics).
    if facts.len() < 2 {
        distractor_sentence(&mut b, world, e, cfg, rng);
        distractor_sentence(&mut b, world, e, cfg, rng);
    }
    // Noise.
    if rng.gen_bool(cfg.noise_rate) {
        noise_sentence(&mut b, world, e, rng);
    }

    let categories = categories_for(world, e);
    let (text, mentions) = b.finish();
    Doc {
        id,
        kind: DocKind::Article,
        title: e.display.clone(),
        subject: Some(e.id),
        text,
        mentions,
        infobox,
        categories,
    }
}

/// The intro sentence: "«Name» is a «Nationality» «occupation»." etc.
fn intro_sentence(b: &mut TextBuilder, world: &World, e: &Entity) {
    b.push_mention(&e.display, e.id);
    match e.kind {
        EntityKind::Person => {
            let occ = e
                .classes
                .iter()
                .find(|c| *c != "person")
                .cloned()
                .unwrap_or_else(|| "person".into());
            match e.country.map(|c| &world.entity(c).display) {
                Some(country) => {
                    b.push(&format!(" is a {} {occ}. ", nationality_adjective(country)))
                }
                None => b.push(&format!(" is a {occ}. ")),
            }
        }
        EntityKind::Company => {
            let industry =
                e.classes.iter().find_map(|c| c.strip_suffix("_company")).unwrap_or("large");
            b.push(&format!(" is a {industry} company. "));
        }
        EntityKind::City => b.push(" is a city. "),
        EntityKind::Country => b.push(" is a country. "),
        EntityKind::University => b.push(" is a university. "),
        EntityKind::Product => {
            let kind = e
                .classes
                .iter()
                .find(|c| *c != "product")
                .cloned()
                .unwrap_or_else(|| "product".into());
            b.push(&format!(" is a {kind}. "));
        }
    }
}

/// Category strings for an article: a mix of *class* categories
/// ("Valdorian entrepreneurs") and *relational* categories
/// ("People born in Lundholm") — the latter must NOT become classes in
/// the taxonomy-induction experiment.
fn categories_for(world: &World, e: &Entity) -> Vec<String> {
    let mut cats = Vec::new();
    match e.kind {
        EntityKind::Person => {
            let nat = e.country.map(|c| nationality_adjective(&world.entity(c).display));
            for occ in e.classes.iter().filter(|c| *c != "person") {
                match &nat {
                    Some(adj) => cats.push(format!("{adj} {}", pluralize(occ))),
                    None => cats.push(pluralize(occ)),
                }
            }
            if let Some(f) = world.facts_of(e.id).find(|f| f.rel == Rel::BornIn) {
                cats.push(format!("People born in {}", world.entity(f.o).display));
            }
        }
        EntityKind::Company => {
            for c in e.classes.iter().filter_map(|c| c.strip_suffix("_company")) {
                cats.push(format!("{} companies", capitalize(c)));
            }
            if let Some(f) = world.facts_of(e.id).find(|f| f.rel == Rel::HeadquarteredIn) {
                cats.push(format!("Companies headquartered in {}", world.entity(f.o).display));
            }
        }
        EntityKind::City => {
            if let Some(f) = world.facts_of(e.id).find(|f| f.rel == Rel::LocatedIn) {
                cats.push(format!("Cities in {}", world.entity(f.o).display));
            }
        }
        EntityKind::Country => cats.push("Countries".into()),
        EntityKind::University => {
            if let Some(c) = e.country {
                cats.push(format!("Universities in {}", world.entity(c).display));
            }
        }
        EntityKind::Product => {
            for c in e.classes.iter().filter(|c| *c != "product") {
                cats.push(capitalize(&pluralize(c)));
            }
        }
    }
    cats
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Renders enumeration/overview pages carrying Hearst patterns and
/// plain lists, the raw material for taxonomy induction and set
/// expansion.
pub fn render_overviews(world: &World, _cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<Doc> {
    let mut docs = Vec::new();
    let mut next_id = 100_000u32;
    // One overview page per class that has at least 3 instances.
    let mut classes: Vec<String> = world.instance_of.iter().map(|(_, c)| c.clone()).collect();
    classes.sort();
    classes.dedup();
    for class in classes {
        let members: Vec<EntityId> =
            world.instance_of.iter().filter(|(_, c)| *c == class).map(|(id, _)| *id).collect();
        if members.len() < 3 {
            continue;
        }
        let mut b = TextBuilder::new();
        // Underscored class names render as space-separated phrases:
        // "phone_company" → "phone companies".
        let plural = pluralize(&class.replace('_', " "));
        // Hearst: "X such as A, B and C ..."
        let sample = sample_ids(&members, 3.min(members.len()), rng);
        b.push(&capitalize(&plural));
        b.push(" such as ");
        push_enumeration(&mut b, world, &sample);
        b.push(" are widely known. ");
        // Hearst: "A and other X ..."
        let sample2 = sample_ids(&members, 2.min(members.len()), rng);
        push_enumeration(&mut b, world, &sample2);
        b.push(&format!(" and other {plural} appear in many reports. "));
        // Plain enumeration for set expansion.
        let sample3 = sample_ids(&members, 4.min(members.len()), rng);
        b.push(&format!("Popular {plural} include "));
        push_enumeration(&mut b, world, &sample3);
        b.push(". ");
        let (text, mentions) = b.finish();
        docs.push(Doc {
            id: next_id,
            kind: DocKind::Overview,
            title: format!("Overview of {plural}"),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        });
        next_id += 1;
    }
    docs
}

/// Writes "A, B and C" with gold mentions.
fn push_enumeration(b: &mut TextBuilder, world: &World, ids: &[EntityId]) {
    for (i, &id) in ids.iter().enumerate() {
        if i > 0 {
            if i + 1 == ids.len() {
                b.push(" and ");
            } else {
                b.push(", ");
            }
        }
        b.push_mention(&world.entity(id).display, id);
    }
}

/// Samples `n` distinct ids deterministically.
fn sample_ids(pool: &[EntityId], n: usize, rng: &mut StdRng) -> Vec<EntityId> {
    let mut picked: Vec<EntityId> = Vec::with_capacity(n);
    let mut attempts = 0;
    while picked.len() < n && attempts < 10 * n + 20 {
        let c = pool[rng.gen_range(0..pool.len())];
        if !picked.contains(&c) {
            picked.push(c);
        }
        attempts += 1;
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use rand::SeedableRng;

    fn setup() -> (World, CorpusConfig, StdRng) {
        let cfg = CorpusConfig::tiny();
        let world = World::generate(&cfg.world);
        let rng = StdRng::seed_from_u64(1);
        (world, cfg, rng)
    }

    #[test]
    fn every_entity_gets_an_article_with_valid_mentions() {
        let (world, cfg, mut rng) = setup();
        let docs = render_articles(&world, &cfg, &mut rng);
        assert_eq!(docs.len(), world.entities.len());
        for d in &docs {
            assert!(!d.text.is_empty());
            for m in &d.mentions {
                assert_eq!(&d.text[m.start..m.end], m.surface, "bad offsets in {}", d.title);
            }
        }
    }

    #[test]
    fn articles_mention_their_subject() {
        let (world, cfg, mut rng) = setup();
        let docs = render_articles(&world, &cfg, &mut rng);
        for d in &docs {
            let subject = d.subject.unwrap();
            assert!(
                d.mentions_of(subject).count() >= 1,
                "article {} never mentions its subject",
                d.title
            );
        }
    }

    #[test]
    fn clean_config_renders_every_fact() {
        let cfg = CorpusConfig::clean();
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(3);
        let docs = render_articles(&world, &cfg, &mut rng);
        // With fact_sentence_rate = 1 every gold fact of the subject must
        // surface as a sentence mentioning subject and object.
        for d in &docs {
            let subject = d.subject.unwrap();
            for f in world.facts_of(subject) {
                assert!(
                    d.mentions_of(f.o).count() >= 1,
                    "fact {:?} of {} not verbalized",
                    f.rel,
                    d.title
                );
            }
        }
    }

    #[test]
    fn infobox_carries_all_facts_at_full_coverage() {
        let (world, mut cfg, mut rng) = setup();
        cfg.infobox_coverage = 1.0;
        let docs = render_articles(&world, &cfg, &mut rng);
        for d in &docs {
            let subject = d.subject.unwrap();
            for f in world.facts_of(subject) {
                let key = infobox_key(f.rel);
                let val = &world.entity(f.o).display;
                assert!(
                    d.infobox.iter().any(|(k, v)| k == key && v == val),
                    "infobox of {} misses {key}={val}",
                    d.title
                );
            }
        }
    }

    #[test]
    fn person_categories_mix_class_and_relational() {
        let (world, cfg, mut rng) = setup();
        let docs = render_articles(&world, &cfg, &mut rng);
        let person_doc = docs
            .iter()
            .find(|d| world.entity(d.subject.unwrap()).kind == EntityKind::Person)
            .unwrap();
        assert!(
            person_doc.categories.iter().any(|c| c.starts_with("People born in")),
            "missing relational category: {:?}",
            person_doc.categories
        );
        assert!(!person_doc.categories.is_empty());
    }

    #[test]
    fn overviews_carry_hearst_patterns() {
        let (world, cfg, mut rng) = setup();
        let docs = render_overviews(&world, &cfg, &mut rng);
        assert!(!docs.is_empty());
        let with_such_as = docs.iter().filter(|d| d.text.contains("such as")).count();
        assert_eq!(with_such_as, docs.len());
        let with_other = docs.iter().filter(|d| d.text.contains("and other")).count();
        assert_eq!(with_other, docs.len());
        for d in &docs {
            for m in &d.mentions {
                assert_eq!(&d.text[m.start..m.end], m.surface);
            }
        }
    }

    #[test]
    fn pluralize_handles_irregulars() {
        assert_eq!(pluralize("person"), "people");
        assert_eq!(pluralize("city"), "cities");
        assert_eq!(pluralize("company"), "companies");
        assert_eq!(pluralize("phone"), "phones");
        assert_eq!(pluralize("university"), "universities");
    }

    #[test]
    fn alias_mentions_appear_with_high_alias_rate() {
        let mut cfg = CorpusConfig::tiny();
        cfg.alias_mention_rate = 1.0;
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(5);
        let docs = render_articles(&world, &cfg, &mut rng);
        // Some subject mention somewhere must use the short alias.
        let any_short = docs.iter().any(|d| {
            let e = world.entity(d.subject.unwrap());
            e.short != e.display && d.mentions_of(e.id).any(|m| m.surface == e.short)
        });
        assert!(any_short, "no alias mentions generated");
    }
}
