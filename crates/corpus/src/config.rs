//! Generation configuration knobs.

/// Sizes and noise knobs for the synthetic world itself.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master RNG seed — the single source of randomness.
    pub seed: u64,
    /// Number of person entities.
    pub people: usize,
    /// Number of company entities.
    pub companies: usize,
    /// Number of city entities.
    pub cities: usize,
    /// Number of country entities.
    pub countries: usize,
    /// Number of university entities.
    pub universities: usize,
    /// Number of product entities.
    pub products: usize,
    /// Name-ambiguity knob in `[0, 1]`: 0 gives everyone a unique
    /// surname, values toward 1 shrink the surname pool so short
    /// aliases ("Varen") become highly ambiguous.
    pub ambiguity: f64,
}

impl WorldConfig {
    /// A minimal world for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            people: 24,
            companies: 6,
            cities: 8,
            countries: 3,
            universities: 3,
            products: 8,
            ambiguity: 0.5,
        }
    }

    /// The default evaluation world (used by the experiment harness).
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            people: 400,
            companies: 60,
            cities: 50,
            countries: 10,
            universities: 20,
            products: 80,
            ambiguity: 0.5,
        }
    }

    /// Total entity count across all kinds.
    pub fn total_entities(&self) -> usize {
        self.people
            + self.companies
            + self.cities
            + self.countries
            + self.universities
            + self.products
    }
}

/// Knobs for corpus rendering on top of a world.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// The world to render.
    pub world: WorldConfig,
    /// Probability that a gold fact of an article's subject is verbalized
    /// in the article text (coverage knob; infoboxes always carry facts).
    pub fact_sentence_rate: f64,
    /// Expected number of distractor (fact-free) sentences per article.
    pub distractors_per_article: f64,
    /// Probability of injecting a *false* fact sentence into an article
    /// (drawn to violate functionality or type constraints half the time).
    pub noise_rate: f64,
    /// Probability that a repeated mention of the subject uses an
    /// ambiguous short alias instead of the full name.
    pub alias_mention_rate: f64,
    /// Probability that a gold fact appears in the subject's infobox
    /// (real infoboxes are incomplete; text carries the rest).
    pub infobox_coverage: f64,
    /// Number of noisy web pages to render.
    pub web_pages: usize,
    /// Number of commonsense essays.
    pub essays: usize,
    /// Number of days the social stream covers.
    pub stream_days: usize,
    /// Expected posts per day in the social stream.
    pub posts_per_day: usize,
}

impl CorpusConfig {
    /// Minimal corpus for unit tests.
    pub fn tiny() -> Self {
        Self {
            world: WorldConfig::tiny(42),
            fact_sentence_rate: 0.9,
            distractors_per_article: 1.5,
            noise_rate: 0.08,
            alias_mention_rate: 0.6,
            infobox_coverage: 0.75,
            web_pages: 10,
            essays: 4,
            stream_days: 28,
            posts_per_day: 6,
        }
    }

    /// The standard evaluation corpus (harness default).
    pub fn standard(seed: u64) -> Self {
        Self {
            world: WorldConfig::standard(seed),
            fact_sentence_rate: 0.9,
            distractors_per_article: 2.0,
            noise_rate: 0.08,
            alias_mention_rate: 0.6,
            infobox_coverage: 0.75,
            web_pages: 150,
            essays: 12,
            stream_days: 112,
            posts_per_day: 40,
        }
    }

    /// A noise-free corpus, for tests that need perfect extractability.
    pub fn clean() -> Self {
        let mut c = Self::tiny();
        c.noise_rate = 0.0;
        c.fact_sentence_rate = 1.0;
        c.infobox_coverage = 1.0;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for cfg in [CorpusConfig::tiny(), CorpusConfig::standard(1), CorpusConfig::clean()] {
            assert!(cfg.world.total_entities() > 0);
            assert!((0.0..=1.0).contains(&cfg.noise_rate));
            assert!((0.0..=1.0).contains(&cfg.fact_sentence_rate));
            assert!((0.0..=1.0).contains(&cfg.alias_mention_rate));
            assert!((0.0..=1.0).contains(&cfg.infobox_coverage));
            assert!((0.0..=1.0).contains(&cfg.world.ambiguity));
        }
    }

    #[test]
    fn clean_preset_disables_noise() {
        assert_eq!(CorpusConfig::clean().noise_rate, 0.0);
        assert_eq!(CorpusConfig::clean().fact_sentence_rate, 1.0);
    }
}
