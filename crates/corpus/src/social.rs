//! The social-media stream: timestamped posts mentioning the two rival
//! flagship products, with drifting volume and sentiment — the
//! "track and compare two entities in social media over an extended
//! timespan" example of tutorial §4.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::config::CorpusConfig;
use crate::doc::{Mention, TextBuilder};
use crate::lexicon::{NEGATIVE_WORDS, POSITIVE_WORDS, POST_FILLERS};
use crate::world::{EntityId, World};

/// A timestamped social-media post with gold mention and sentiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Post {
    /// Day index from stream start (0-based).
    pub day: u32,
    /// Post text. `Arc<str>` so downstream stream analytics can share
    /// the body without re-copying it per consumer.
    pub text: Arc<str>,
    /// Gold entity mentions.
    pub mentions: Vec<Mention>,
    /// Gold sentiment: +1 positive, -1 negative, 0 neutral.
    pub gold_sentiment: i8,
}

/// Ground-truth per-product daily expectations, used to validate the
/// analytics pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamGold {
    /// Product A (rival 0).
    pub product_a: EntityId,
    /// Product B (rival 1).
    pub product_b: EntityId,
}

impl StreamGold {
    /// Reads the rivals from the world.
    pub fn from_world(world: &World) -> Self {
        Self { product_a: world.rival_products.0, product_b: world.rival_products.1 }
    }
}

/// Renders the post stream.
///
/// Volume model: product A holds steady; product B ramps up linearly
/// after its "launch buzz" at 40% of the stream. Sentiment model: A
/// drifts from positive to mixed; B stays mostly positive. These shapes
/// are what experiment T10 recovers.
pub fn render_posts(world: &World, cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<Post> {
    let (prod_a, prod_b) = world.rival_products;
    if world.entities.is_empty() || cfg.stream_days == 0 {
        return Vec::new();
    }
    let mut posts = Vec::new();
    let days = cfg.stream_days as u32;
    for day in 0..days {
        let progress = day as f64 / days.max(1) as f64;
        // Volume per product.
        let base = cfg.posts_per_day as f64 / 2.0;
        let volume_a = base;
        let volume_b =
            if progress < 0.4 { base * 0.3 } else { base * (0.3 + 1.4 * (progress - 0.4) / 0.6) };
        for (product, volume, positive_rate) in
            [(prod_a, volume_a, 0.8 - 0.4 * progress), (prod_b, volume_b, 0.75)]
        {
            let n = poissonish(volume, rng);
            for _ in 0..n {
                posts.push(render_post(world, product, day, positive_rate, rng));
            }
        }
    }
    posts
}

/// Approximates a Poisson draw with mean `mean` (floor + Bernoulli on the
/// fraction, adequate for volume shaping).
fn poissonish(mean: f64, rng: &mut StdRng) -> usize {
    let floor = mean.floor() as usize;
    floor + usize::from(rng.gen_bool((mean - mean.floor()).clamp(0.0, 1.0)))
}

fn render_post(
    world: &World,
    product: EntityId,
    day: u32,
    positive_rate: f64,
    rng: &mut StdRng,
) -> Post {
    let e = world.entity(product);
    let mut b = TextBuilder::new();
    let filler = POST_FILLERS[rng.gen_range(0..POST_FILLERS.len())];
    b.push(filler);
    b.push(" the ");
    // Posts use the full versioned name or the ambiguous line stem.
    let surface = if rng.gen_bool(0.5) { &e.display } else { &e.short };
    b.push_mention(surface, product);
    let sentiment: i8 = if rng.gen_bool(0.2) {
        0
    } else if rng.gen_bool(positive_rate) {
        1
    } else {
        -1
    };
    match sentiment {
        1 => {
            let w = POSITIVE_WORDS[rng.gen_range(0..POSITIVE_WORDS.len())];
            b.push(&format!(". the camera is {w}!"));
        }
        -1 => {
            let w = NEGATIVE_WORDS[rng.gen_range(0..NEGATIVE_WORDS.len())];
            b.push(&format!(". the battery is {w}."));
        }
        _ => b.push(". no strong opinion yet."),
    }
    let (text, mentions) = b.finish();
    Post { day, text: text.into(), mentions, gold_sentiment: sentiment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stream() -> (World, Vec<Post>, CorpusConfig) {
        let cfg = CorpusConfig::tiny();
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(4);
        let posts = render_posts(&world, &cfg, &mut rng);
        (world, posts, cfg)
    }

    #[test]
    fn posts_have_valid_mentions_and_days() {
        let (_, posts, cfg) = stream();
        assert!(!posts.is_empty());
        for p in &posts {
            assert!((p.day as usize) < cfg.stream_days);
            for m in &p.mentions {
                assert_eq!(&p.text[m.start..m.end], m.surface);
            }
        }
    }

    #[test]
    fn rival_b_volume_ramps_up() {
        let (world, posts, cfg) = stream();
        let (_, b) = world.rival_products;
        let half = cfg.stream_days as u32 / 2;
        let early = posts
            .iter()
            .filter(|p| p.day < half && p.mentions.iter().any(|m| m.entity == b))
            .count();
        let late = posts
            .iter()
            .filter(|p| p.day >= half && p.mentions.iter().any(|m| m.entity == b))
            .count();
        assert!(late > early, "B volume should ramp: early={early} late={late}");
    }

    #[test]
    fn sentiment_words_match_gold() {
        let (_, posts, _) = stream();
        for p in &posts {
            match p.gold_sentiment {
                1 => assert!(POSITIVE_WORDS.iter().any(|w| p.text.contains(w)), "{}", p.text),
                -1 => assert!(NEGATIVE_WORDS.iter().any(|w| p.text.contains(w)), "{}", p.text),
                _ => {}
            }
        }
    }

    #[test]
    fn both_surfaces_appear() {
        let (world, posts, _) = stream();
        let (a, _) = world.rival_products;
        let e = world.entity(a);
        let display_used =
            posts.iter().flat_map(|p| &p.mentions).any(|m| m.entity == a && m.surface == e.display);
        let short_used =
            posts.iter().flat_map(|p| &p.mentions).any(|m| m.entity == a && m.surface == e.short);
        assert!(display_used && short_used);
    }

    #[test]
    fn zero_days_yields_empty_stream() {
        let mut cfg = CorpusConfig::tiny();
        cfg.stream_days = 0;
        let world = World::generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(render_posts(&world, &cfg, &mut rng).is_empty());
    }
}
