//! Partitioned serving stress tests: the scatter-gather router under
//! concurrent clients must answer byte-for-byte like one monolithic
//! `QueryService` — at every partition count, and while delta installs
//! race the queries mid-flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use kb_obs::{ManualClock, Registry};
use kb_query::QueryService;
use kb_serve::{AdmissionConfig, KbRouter, Overloaded, ServeError};
use kb_store::{subject_partition, KbBuilder, KbSnapshot, SegmentedSnapshot};

/// The same deterministic synthetic KB the single-service stress suite
/// uses: skewed relation sizes, shared entities, a temporal column.
fn build_kb() -> KbSnapshot {
    let mut b = KbBuilder::new();
    for i in 0..2000u32 {
        b.assert_str(&format!("p{}", i % 400), "bornIn", &format!("c{}", i % 40));
    }
    for i in 0..40u32 {
        b.assert_str(&format!("c{i}"), "locatedIn", &format!("s{}", i % 5));
    }
    for i in 0..300u32 {
        b.assert_str(&format!("p{}", i % 400), "worksAt", &format!("co{}", i % 20));
    }
    for i in 0..20u32 {
        b.assert_str(&format!("co{i}"), "headquarteredIn", &format!("c{}", i % 40));
    }
    for i in 0..100u32 {
        b.assert_str(&format!("p{i}"), "bornOn", &format!("{}", 1900 + (i % 100)));
    }
    b.freeze()
}

/// Scatter-heavy shapes from the single-service suite plus
/// subject-bound probes, so both routing paths stay hot.
fn workload() -> Vec<String> {
    let mut qs = vec![
        "?p bornIn ?c . ?c locatedIn s0".to_string(),
        "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?p worksAt ?co }".to_string(),
        "SELECT ?p ?co WHERE { ?p bornIn c1 OPTIONAL { ?p worksAt ?co } } ORDER BY ?p LIMIT 25"
            .to_string(),
        "SELECT ?x WHERE { { ?x locatedIn s1 } UNION { ?x headquarteredIn c1 } }".to_string(),
        "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c ORDER BY DESC(?n) ?c LIMIT 10"
            .to_string(),
        "SELECT ?p ?y WHERE { ?p bornOn ?y . FILTER(?y < 1930) } ORDER BY ?y ?p".to_string(),
        "?a bornIn ?c . ?b bornIn ?c . FILTER(?a != ?b)".to_string(),
        "?p worksAt ?co . ?co headquarteredIn ?c . ?c locatedIn ?s".to_string(),
    ];
    for i in 0..12 {
        qs.push(format!("SELECT ?p WHERE {{ ?p bornIn c{i} }} ORDER BY ?p"));
    }
    // Subject-bound: single-pattern, multi-pattern, modifier-bearing.
    for i in 0..12 {
        qs.push(format!("p{i} bornIn ?c"));
        qs.push(format!("SELECT ?c ?co WHERE {{ p{i} bornIn ?c OPTIONAL {{ p{i} worksAt ?co }} }} ORDER BY ?c ?co"));
    }
    qs
}

/// 8 clients × {1, 2, 4} partitions: every answer must match the
/// monolithic oracle byte for byte, and the routing counters must
/// account for every request exactly.
#[test]
fn partitioned_clients_match_the_monolith_byte_for_byte() {
    const CLIENTS: usize = 8;
    let snap = build_kb().into_shared();
    let queries: Vec<String> = {
        let base = workload();
        (0..4).flat_map(|_| base.clone()).collect()
    };

    let oracle = QueryService::with_instrumentation(
        snap.clone(),
        kb_query::DEFAULT_CACHE_CAPACITY,
        &Registry::new(),
    );
    let oview = oracle.snapshot();
    let expected: Vec<String> = queries
        .iter()
        .map(|q| oracle.query(q).expect("oracle query").render(oview.as_ref()))
        .collect();
    let routed_expected = queries
        .iter()
        .filter(|q| {
            matches!(
                kb_query::routing_decision(&kb_query::parse(q).unwrap()),
                kb_query::RoutingDecision::SubjectBound { .. }
            )
        })
        .count() as u64;

    for partitions in [1usize, 2, 4] {
        let registry = Registry::new();
        let router = Arc::new(KbRouter::with_config(
            snap.clone(),
            partitions,
            AdmissionConfig::default(),
            &registry,
        ));
        let rview = router.view();
        let mut slots: Vec<Option<String>> = vec![None; queries.len()];
        let answers: Vec<(usize, String)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let router = Arc::clone(&router);
                    let rview = Arc::clone(&rview);
                    let queries = &queries;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        for i in (c..queries.len()).step_by(CLIENTS) {
                            let out = router.query(&queries[i]).expect("router query");
                            mine.push((i, out.render(rview.as_ref())));
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect()
        });
        for (i, rendered) in answers {
            slots[i] = Some(rendered);
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(
                slot.as_deref(),
                Some(expected[i].as_str()),
                "{partitions} partitions diverged from the monolith on query #{i}: {}",
                queries[i]
            );
        }
        // Exact counter accounting: every request routed one way or the
        // other, nothing shed, nothing lost.
        let routed = registry.counter("serve.routed_single").get();
        let scattered = registry.counter("serve.scattered").get();
        assert_eq!(routed, routed_expected, "{partitions} partitions: routed_single");
        assert_eq!(
            routed + scattered,
            queries.len() as u64,
            "{partitions} partitions: request conservation"
        );
        assert_eq!(registry.counter("serve.shed").get(), 0);
        assert_eq!(registry.gauge("serve.queue_depth").get(), 0, "permits must all be released");
    }
}

/// Delta installs racing 8 clients mid-flight: every answer stays
/// well-formed, and after the dust settles the router matches a
/// monolithic oracle built over the same final delta chain.
#[test]
fn installs_racing_queries_converge_to_the_oracle() {
    const DELTAS: u64 = 6;
    for partitions in [2usize, 4] {
        let snap = build_kb().into_shared();
        let registry = Registry::new();
        let router = Arc::new(KbRouter::with_config(
            snap.clone(),
            partitions,
            AdmissionConfig::default(),
            &registry,
        ));
        let queries = workload();
        let final_view = thread::scope(|scope| {
            for c in 0..8usize {
                let router = Arc::clone(&router);
                let queries = &queries;
                scope.spawn(move || {
                    for i in 0..60 {
                        let q = &queries[(c + i) % queries.len()];
                        // Results vary across epochs; the invariant is a
                        // well-formed answer, never a panic or a torn read.
                        router.query(q).expect("query must stay well-formed during installs");
                    }
                });
            }
            // One installer owns the delta chain. Deltas freeze against a
            // monolithic shadow view whose dictionary is id-identical to
            // the router's replicated one, so the same frozen segment is
            // valid for both sides.
            let router = Arc::clone(&router);
            scope
                .spawn(move || {
                    let mut shadow = SegmentedSnapshot::from_base(snap);
                    for d in 0..DELTAS {
                        let mut b = KbBuilder::new();
                        b.assert_str(&format!("px{d}"), "bornOn", &format!("{}", 1850 + d));
                        b.assert_str(&format!("px{d}"), "worksAt", &format!("co{}", d % 20));
                        b.retract_str(&format!("p{d}"), "bornOn", &format!("{}", 1900 + d));
                        let delta = Arc::new(b.freeze_delta(&shadow));
                        shadow = shadow.with_delta(Arc::clone(&delta));
                        router.apply_delta(delta);
                        thread::yield_now();
                    }
                    shadow
                })
                .join()
                .expect("installer panicked")
        });
        assert_eq!(router.epoch(), DELTAS);

        let oracle = QueryService::from_view(&final_view);
        let oview = oracle.snapshot();
        let rview = router.view();
        for q in &queries {
            let got = router.query(q).expect("router query").render(rview.as_ref());
            let want = oracle.query(q).expect("oracle query").render(oview.as_ref());
            assert_eq!(got, want, "{partitions} partitions diverged post-install on {q}");
        }
        assert_eq!(registry.counter("serve.installs").get(), DELTAS);
    }
}

/// The torn-read probe: every delta adds exactly one `memberOf` fact
/// per partition, so an epoch-consistent scatter always sees a multiple
/// of `partitions` members. A reader that caught a half-installed
/// fan-out would see a remainder.
#[test]
fn scatter_never_observes_a_torn_install() {
    const DELTAS: u64 = 12;
    for partitions in [2usize, 3, 4] {
        let snap = build_kb().into_shared();
        let router = Arc::new(KbRouter::with_config(
            snap.clone(),
            partitions,
            AdmissionConfig::default(),
            &Registry::new(),
        ));
        let done = AtomicBool::new(false);
        thread::scope(|scope| {
            for _ in 0..4usize {
                let router = Arc::clone(&router);
                let done = &done;
                scope.spawn(move || {
                    while !done.load(Ordering::Acquire) {
                        // Scatter path: planned and executed fresh over the
                        // epoch-consistent merged view on every call.
                        let out = router.query("?m memberOf ?g").expect("probe query");
                        assert_eq!(
                            out.rows.len() % partitions,
                            0,
                            "torn install: saw {} members across {partitions} partitions",
                            out.rows.len()
                        );
                    }
                });
            }
            let router = Arc::clone(&router);
            let done = &done;
            scope.spawn(move || {
                let mut shadow = SegmentedSnapshot::from_base(snap);
                for d in 0..DELTAS {
                    let mut b = KbBuilder::new();
                    // One new member per partition, chosen by hash probing.
                    for p in 0..partitions {
                        let subject = (0u32..)
                            .map(|j| format!("mk{d}_{j}"))
                            .find(|s| subject_partition(s, partitions) == p)
                            .unwrap();
                        b.assert_str(&subject, "memberOf", "club");
                    }
                    let delta = Arc::new(b.freeze_delta(&shadow));
                    shadow = shadow.with_delta(Arc::clone(&delta));
                    router.apply_delta(delta);
                }
                done.store(true, Ordering::Release);
            });
        });
        let out = router.query("?m memberOf ?g").unwrap();
        assert_eq!(out.rows.len(), DELTAS as usize * partitions);
    }
}

/// Overload sheds with typed rejections driven by a manual clock: the
/// exact requests past the bucket are refused, everything else serves,
/// and the shed counter matches.
#[test]
fn rate_overload_sheds_exactly_past_the_bucket() {
    let snap = build_kb().into_shared();
    let clock = ManualClock::shared(0);
    let registry = Registry::with_clock(clock.clone());
    let config = AdmissionConfig {
        rate_per_sec: Some(10.0),
        burst: 4.0,
        queue_depth: 64,
        ..Default::default()
    };
    let router = KbRouter::with_config(snap, 2, config, &registry);

    // Burst drains after 4 requests; the next two shed.
    for i in 0..4 {
        assert!(router.query("p1 bornIn ?c").is_ok(), "burst request {i}");
    }
    for _ in 0..2 {
        match router.query_as("default", "?p bornIn ?c") {
            Err(ServeError::Overloaded(Overloaded::RateLimited { tenant })) => {
                assert_eq!(tenant, "default");
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
    }
    // Other tenants have their own bucket.
    assert!(router.query_as("vip", "p1 bornIn ?c").is_ok());
    // 300ms at 10 rps refills three tokens.
    clock.advance(300_000);
    for i in 0..3 {
        assert!(router.query("p1 bornIn ?c").is_ok(), "refilled request {i}");
    }
    assert!(matches!(
        router.query("p1 bornIn ?c"),
        Err(ServeError::Overloaded(Overloaded::RateLimited { .. }))
    ));
    assert_eq!(registry.counter("serve.shed").get(), 3);
    assert_eq!(registry.counter("serve.admitted").get(), 8);
}
