//! Property test for partitioned standing views: a router at 1 and at
//! 4 partitions maintains every registered view byte-identically to a
//! from-scratch re-execution over the merged view, across random KBs
//! and random delta chains with retractions. This is the serve-layer
//! extension of `kb-query`'s `view_ivm` property — same invariant, but
//! the delta now fans out by subject hash under the epoch barrier and
//! the view is patched against the k-way-merged `PartitionedView`.

use std::sync::Arc;

use proptest::prelude::*;

use kb_obs::Registry;
use kb_query::{canonical_output, execute, parse, plan as compile, StatsCatalog};
use kb_serve::{AdmissionConfig, KbRouter};
use kb_store::{KbBuilder, SegmentedSnapshot};

const QUERIES: [&str; 3] = [
    "SELECT ?s ?o WHERE { ?s r0 ?o }",
    "SELECT ?o COUNT(?s) AS ?n WHERE { ?s r1 ?o } GROUP BY ?o",
    "SELECT DISTINCT ?o WHERE { ?s r2 ?o } ORDER BY DESC(?o)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random KB, 1–3 random deltas (25% retractions), three standing
    /// view shapes, at one and four partitions: after every install the
    /// router's materialized answers equal re-execution on its merged
    /// view, byte for byte.
    #[test]
    fn partitioned_views_match_reexecution(
        triples in prop::collection::vec((0u32..8, 0u32..3, 0u32..8), 1..40),
        deltas in prop::collection::vec(
            prop::collection::vec((0u8..4, 0u32..8, 0u32..3, 0u32..8), 1..10),
            1..4
        ),
    ) {
        for partitions in [1usize, 4] {
            let mut b = KbBuilder::new();
            for &(s, p, o) in &triples {
                b.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
            }
            let base = b.freeze().into_shared();
            // A monolithic shadow stack, used only to freeze deltas the
            // way a single writer would; term totals match the router's
            // replicated dictionaries, so the frozen segments are valid
            // for both.
            let mut shadow = SegmentedSnapshot::from_base(Arc::clone(&base));
            let router = KbRouter::with_config(
                base,
                partitions,
                AdmissionConfig::default(),
                &Registry::new(),
            );
            let ids: Vec<_> = QUERIES
                .iter()
                .map(|q| router.register_view(q).expect("standing view registers"))
                .collect();

            for ops in &deltas {
                let mut b = KbBuilder::new();
                for &(kind, s, p, o) in ops {
                    let (s, p, o) = (format!("e{s}"), format!("r{p}"), format!("e{o}"));
                    if kind > 0 {
                        b.assert_str(&s, &p, &o);
                    } else {
                        b.retract_str(&s, &p, &o);
                    }
                }
                let delta = Arc::new(b.freeze_delta(&shadow));
                shadow = shadow.with_delta(Arc::clone(&delta));
                router.apply_delta(delta);

                let merged = router.view();
                let stats = StatsCatalog::build(merged.as_ref());
                for (id, q) in ids.iter().zip(QUERIES) {
                    let plan = compile(&parse(q).expect("query parses"), merged.as_ref(), &stats)
                        .expect("query plans");
                    let want =
                        canonical_output(&plan, &execute(&plan, merged.as_ref()), merged.as_ref());
                    let got = router.view_result(*id).expect("view stays registered");
                    prop_assert_eq!(
                        got.render(merged.as_ref()),
                        want.render(merged.as_ref()),
                        "view {:?} diverged at {} partitions after {:?}",
                        q,
                        partitions,
                        ops
                    );
                }
            }
        }
    }
}
