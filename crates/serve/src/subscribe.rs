//! Standing-view subscriptions: bounded, non-blocking fan-out of
//! [`ViewUpdate`] batches from the router's epoch barrier to client
//! subscribers.
//!
//! The cardinal rule is that **an install never blocks on a
//! consumer**: the epoch barrier holds the router's write lock, so a
//! stalled subscriber must shed, not backpressure. Each subscriber
//! owns a bounded queue ([`AdmissionConfig::subscriber_buffer`]); when
//! a push finds the queue full, the *oldest* update drops, the
//! `view.lagged` counter ticks, and the subscriber's next receive
//! reports a typed [`ViewLag`] before resuming delivery. Every
//! [`ViewUpdate`] carries the view's full patched answer, so any
//! single update is a valid resync point after a lag — subscribers
//! lose intermediate diffs, never consistency.
//!
//! [`AdmissionConfig::subscriber_buffer`]: crate::AdmissionConfig::subscriber_buffer

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use kb_obs::Counter;
use kb_query::{ViewId, ViewUpdate};

/// A subscriber fell behind: `missed` updates were dropped (oldest
/// first) since its last receive. The next received update carries the
/// view's full answer, so recovery is just "keep reading".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewLag {
    /// Updates dropped since the subscriber last kept up.
    pub missed: u64,
}

impl fmt::Display for ViewLag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "subscriber lagged: {} update(s) dropped", self.missed)
    }
}

impl std::error::Error for ViewLag {}

struct SubState {
    queue: VecDeque<Arc<ViewUpdate>>,
    missed: u64,
}

struct SubInner {
    view: ViewId,
    capacity: usize,
    state: Mutex<SubState>,
}

/// The receiving end of one standing-view subscription. Dropping it
/// unsubscribes (the hub prunes orphaned queues on the next push).
pub struct Subscription {
    inner: Arc<SubInner>,
}

impl Subscription {
    /// The view this subscription follows.
    pub fn view(&self) -> ViewId {
        self.inner.view
    }

    /// Pops the oldest pending update. Reports [`ViewLag`] first —
    /// exactly once per lag episode — when updates were shed since the
    /// last receive; `Ok(None)` means the queue is currently empty.
    pub fn try_recv(&self) -> Result<Option<Arc<ViewUpdate>>, ViewLag> {
        let mut st = self.inner.state.lock().expect("subscription poisoned");
        if st.missed > 0 {
            let missed = st.missed;
            st.missed = 0;
            return Err(ViewLag { missed });
        }
        Ok(st.queue.pop_front())
    }

    /// Updates currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("subscription poisoned").queue.len()
    }

    /// Whether no updates are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The router's side of all subscriptions: push-only, never blocking.
pub(crate) struct SubscriptionHub {
    subs: Mutex<Vec<Arc<SubInner>>>,
    pushed: Arc<Counter>,
    lagged: Arc<Counter>,
}

impl SubscriptionHub {
    pub(crate) fn new(pushed: Arc<Counter>, lagged: Arc<Counter>) -> Self {
        SubscriptionHub { subs: Mutex::new(Vec::new()), pushed, lagged }
    }

    /// Opens a subscription on `view` with a queue bound of
    /// `capacity` updates (floored at 1 — a zero-capacity queue could
    /// never deliver anything).
    pub(crate) fn subscribe(&self, view: ViewId, capacity: usize) -> Subscription {
        let inner = Arc::new(SubInner {
            view,
            capacity: capacity.max(1),
            state: Mutex::new(SubState { queue: VecDeque::new(), missed: 0 }),
        });
        self.subs.lock().expect("subscription hub poisoned").push(Arc::clone(&inner));
        Subscription { inner }
    }

    /// Fans one install's update batch out to every live subscriber of
    /// each updated view. Bounded work, no waiting: full queues shed
    /// their oldest entry instead of blocking the epoch barrier.
    pub(crate) fn push(&self, updates: Vec<ViewUpdate>) {
        if updates.is_empty() {
            return;
        }
        let mut subs = self.subs.lock().expect("subscription hub poisoned");
        // A strong count of 1 means the `Subscription` handle is gone.
        subs.retain(|s| Arc::strong_count(s) > 1);
        for update in updates {
            let update = Arc::new(update);
            for sub in subs.iter() {
                if sub.view != update.id {
                    continue;
                }
                let mut st = sub.state.lock().expect("subscription poisoned");
                if st.queue.len() >= sub.capacity {
                    st.queue.pop_front();
                    st.missed += 1;
                    self.lagged.inc();
                }
                st.queue.push_back(Arc::clone(&update));
                self.pushed.inc();
            }
        }
    }

    /// Live subscriber count (prunes dropped handles first).
    pub(crate) fn live(&self) -> usize {
        let mut subs = self.subs.lock().expect("subscription hub poisoned");
        subs.retain(|s| Arc::strong_count(s) > 1);
        subs.len()
    }
}
