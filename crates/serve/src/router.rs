//! The scatter-gather router: N partition replicas, planner-aware
//! routing, epoch-barrier delta fan-out.

use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

use kb_obs::Registry;
use kb_query::{
    routing_decision, QueryError, QueryOutput, QueryService, RoutingDecision, StatsCatalog, ViewId,
    ViewRegistry, DEFAULT_CACHE_CAPACITY,
};
use kb_store::{
    partition_delta, partition_snapshot, subject_partition, DeltaSegment, KbSnapshot,
    PartitionedView, SegmentedSnapshot,
};

use crate::admission::{Admission, AdmissionConfig, Overloaded};
use crate::metrics::ServeMetrics;
use crate::subscribe::{Subscription, SubscriptionHub};

/// The tenant [`KbRouter::query`] bills requests to.
pub const DEFAULT_TENANT: &str = "default";

/// What a routed request can fail with: a query-layer error
/// (parse/plan), or a typed admission rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Parse or plan failure, verbatim from the query layer.
    Query(QueryError),
    /// Shed by admission control — retry later or at a lower rate.
    Overloaded(Overloaded),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Overloaded(o) => write!(f, "overloaded: {o}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

/// The merged state the scatter path executes against, swapped
/// atomically on every delta install. Holding one clone of these Arcs
/// gives a query a consistent cross-partition view for its whole
/// execution — the epoch barrier.
struct MergedState {
    view: Arc<PartitionedView>,
    stats: Arc<StatsCatalog>,
    epoch: u64,
}

/// A partitioned serving endpoint: subject-hash partitions of one KB,
/// each behind its own [`QueryService`] replica, fronted by
/// planner-aware routing and admission control.
///
/// See the [crate docs](crate) for the partitioning invariant, the
/// scatter design and the consistency story. The router is `Send +
/// Sync`; share it by reference or `Arc` across client threads.
pub struct KbRouter {
    services: Vec<Arc<QueryService>>,
    state: RwLock<MergedState>,
    admission: Admission,
    /// Standing views over the *merged* view: term ids are global
    /// (replicated dictionaries), so maintaining once at the router
    /// against the full delta is byte-identical to maintaining on a
    /// monolithic service. Lock order is `state` → `views`.
    views: Mutex<ViewRegistry>,
    subs: SubscriptionHub,
    subscriber_buffer: usize,
    metrics: ServeMetrics,
}

impl KbRouter {
    /// Partitions `base` into `partitions` replicas with default
    /// admission control (no rate limit, default queue bound), metrics
    /// in the process-global registry.
    pub fn new(base: Arc<KbSnapshot>, partitions: usize) -> Self {
        Self::with_config(base, partitions, AdmissionConfig::default(), kb_obs::global())
    }

    /// Like [`new`](Self::new) with explicit admission policy and
    /// metrics registry (tests pass a private registry on a
    /// [`ManualClock`](kb_obs::ManualClock) for exact readouts and
    /// deterministic token buckets).
    pub fn with_config(
        base: Arc<KbSnapshot>,
        partitions: usize,
        config: AdmissionConfig,
        registry: &Registry,
    ) -> Self {
        assert!(partitions > 0, "router needs at least one partition");
        let metrics = ServeMetrics::publish(registry);
        // The *global* catalog: every replica plans with whole-KB
        // statistics, so join orders match the monolithic oracle's.
        let stats = Arc::new(StatsCatalog::build(base.as_ref()));
        let services: Vec<Arc<QueryService>> = partition_snapshot(&base, partitions)
            .into_iter()
            .map(|part| {
                Arc::new(QueryService::with_shared_stats(
                    part.into_shared(),
                    Arc::clone(&stats),
                    DEFAULT_CACHE_CAPACITY,
                    registry,
                ))
            })
            .collect();
        let view = Arc::new(PartitionedView::new(services.iter().map(|s| s.snapshot()).collect()));
        let subscriber_buffer = config.subscriber_buffer;
        let admission = Admission::new(
            config,
            registry.clock(),
            partitions,
            Arc::clone(&metrics.queue_depth),
            Arc::clone(&metrics.tenants),
        );
        KbRouter {
            services,
            state: RwLock::new(MergedState { view, stats, epoch: 0 }),
            admission,
            views: Mutex::new(ViewRegistry::new(registry)),
            subs: SubscriptionHub::new(
                Arc::clone(&metrics.view_pushed),
                Arc::clone(&metrics.view_lagged),
            ),
            subscriber_buffer,
            metrics,
        }
    }

    /// Builds a router over an already-layered view — the cold-start
    /// path for a durable [`SegmentStore`](kb_store::SegmentStore):
    /// the recovered base partitions first, then each delta fans out in
    /// order, exactly as if it had been installed live.
    pub fn from_view(view: &SegmentedSnapshot, partitions: usize) -> Self {
        Self::from_view_with_config(view, partitions, AdmissionConfig::default(), kb_obs::global())
    }

    /// [`from_view`](Self::from_view) with explicit policy/registry.
    pub fn from_view_with_config(
        view: &SegmentedSnapshot,
        partitions: usize,
        config: AdmissionConfig,
        registry: &Registry,
    ) -> Self {
        let router = Self::with_config(Arc::clone(view.base()), partitions, config, registry);
        for delta in view.deltas() {
            router.apply_delta(Arc::clone(delta));
        }
        router
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.services.len()
    }

    /// The delta epoch (bumps once per [`apply_delta`](Self::apply_delta)).
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("router state poisoned").epoch
    }

    /// The current merged view — what scatter queries execute over, and
    /// what callers render results against.
    pub fn view(&self) -> Arc<PartitionedView> {
        Arc::clone(&self.state.read().expect("router state poisoned").view)
    }

    /// One partition's replica (tests assert per-partition cache and
    /// install counters through this).
    pub fn service(&self, partition: usize) -> &Arc<QueryService> {
        &self.services[partition]
    }

    /// Installs `delta` across every partition under the epoch barrier.
    ///
    /// `delta` must have been frozen against the current merged view
    /// (same sequential-stacking contract as
    /// [`QueryService::apply_delta`] — valid because every replica's
    /// term/source totals equal the merged view's). The router splits
    /// the frozen segment by subject hash, folds the *full* delta into
    /// the global statistics once, installs each slice on its replica,
    /// and swaps the merged scatter view — all while holding the state
    /// write lock, so no scatter query can observe some partitions
    /// pre-delta and others post-delta, and no two installs interleave.
    /// Subject-bound queries keep serving throughout (each replica
    /// swap is internally atomic).
    pub fn apply_delta(&self, delta: Arc<DeltaSegment>) {
        let span = self.metrics.span(&self.metrics.install_us);
        let mut st = self.state.write().expect("router state poisoned");
        let old_view = Arc::clone(&st.view);
        let split = partition_delta(delta.as_ref(), st.view.as_ref(), self.services.len());
        let stats = Arc::new(st.stats.merged_with_delta(&delta));
        for (service, slice) in self.services.iter().zip(split) {
            service.apply_delta_with_stats(Arc::new(slice), Arc::clone(&stats));
        }
        st.view =
            Arc::new(PartitionedView::new(self.services.iter().map(|s| s.snapshot()).collect()));
        st.stats = stats;
        st.epoch += 1;
        // Standing views maintain against the *full* delta over the
        // old/new merged views, still under the epoch barrier — one
        // consistent update batch per view per install. The push never
        // blocks (bounded queues shed), so a stalled subscriber cannot
        // hold the barrier.
        let updates = self.views.lock().expect("router views poisoned").apply_delta(
            delta.as_ref(),
            old_view.as_ref(),
            st.view.as_ref(),
            &st.stats,
        );
        self.subs.push(updates);
        drop(st);
        span.stop();
        self.metrics.installs.inc();
    }

    /// Registers `text` as a materialized standing view over the merged
    /// view; every later [`apply_delta`](Self::apply_delta) patches it
    /// under the epoch barrier and fans one consistent [`ViewUpdate`]
    /// batch out to its subscribers.
    ///
    /// [`ViewUpdate`]: kb_query::ViewUpdate
    pub fn register_view(&self, text: &str) -> Result<ViewId, ServeError> {
        let st = self.state.read().expect("router state poisoned");
        let id = self.views.lock().expect("router views poisoned").register(
            text,
            st.view.as_ref(),
            &st.stats,
        )?;
        Ok(id)
    }

    /// Removes a standing view; returns whether it existed. Existing
    /// subscriptions on it simply stop receiving updates.
    pub fn unregister_view(&self, id: ViewId) -> bool {
        self.views.lock().expect("router views poisoned").unregister(id)
    }

    /// The standing view's current materialized answer (canonical row
    /// order; render against [`view`](Self::view)).
    pub fn view_result(&self, id: ViewId) -> Option<Arc<QueryOutput>> {
        self.views.lock().expect("router views poisoned").result(id)
    }

    /// Opens a subscription on a standing view. The queue is bounded by
    /// [`AdmissionConfig::subscriber_buffer`]; see
    /// [`Subscription::try_recv`] for the lag contract.
    pub fn subscribe(&self, id: ViewId) -> Subscription {
        self.subs.subscribe(id, self.subscriber_buffer)
    }

    /// Live standing-view subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.subs.live()
    }

    /// [`query_as`](Self::query_as) billed to [`DEFAULT_TENANT`].
    pub fn query(&self, text: &str) -> Result<Arc<QueryOutput>, ServeError> {
        self.query_as(DEFAULT_TENANT, text)
    }

    /// Admits, routes and executes one query for `tenant`.
    ///
    /// Subject-bound queries go to the owning partition's replica
    /// (plan/result caches included); everything else plans and
    /// executes once over the merged view captured under the epoch
    /// barrier. Either way the answer is byte-identical to a monolithic
    /// [`QueryService`] over the unpartitioned KB.
    pub fn query_as(&self, tenant: &str, text: &str) -> Result<Arc<QueryOutput>, ServeError> {
        let route_span = self.metrics.span(&self.metrics.route_us);
        if let Err(over) = self.admission.admit(tenant) {
            self.metrics.shed.inc();
            return Err(ServeError::Overloaded(over));
        }
        let parsed = kb_query::parse(text)?;
        let decision = routing_decision(&parsed);
        route_span.stop();
        match decision {
            RoutingDecision::SubjectBound { subject } => {
                let partition = subject_partition(&subject, self.services.len());
                let _permit = match self.admission.acquire(&[partition]) {
                    Ok(permit) => permit,
                    Err(over) => {
                        self.metrics.shed.inc();
                        return Err(ServeError::Overloaded(over));
                    }
                };
                self.metrics.admitted.inc();
                self.metrics.routed_single.inc();
                let _span = self.metrics.span(&self.metrics.single_us);
                Ok(self.services[partition].query(text)?)
            }
            RoutingDecision::Scatter => {
                let all: Vec<usize> = (0..self.services.len()).collect();
                let _permit = match self.admission.acquire(&all) {
                    Ok(permit) => permit,
                    Err(over) => {
                        self.metrics.shed.inc();
                        return Err(ServeError::Overloaded(over));
                    }
                };
                self.metrics.admitted.inc();
                self.metrics.scattered.inc();
                let _span = self.metrics.span(&self.metrics.scatter_us);
                // Capture view + stats together under the read lock:
                // the query's whole execution sees one epoch.
                let (view, stats) = {
                    let st = self.state.read().expect("router state poisoned");
                    (Arc::clone(&st.view), Arc::clone(&st.stats))
                };
                let plan = kb_query::plan(&parsed, view.as_ref(), &stats)?;
                Ok(Arc::new(kb_query::execute(&plan, view.as_ref())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::{KbBuilder, KbRead};

    fn sample() -> Arc<KbSnapshot> {
        let mut b = KbBuilder::new();
        for i in 0..20 {
            b.assert_str(&format!("p{i}"), "bornIn", &format!("c{}", i % 4));
            b.assert_str(&format!("c{}", i % 4), "locatedIn", "X");
        }
        b.freeze().into_shared()
    }

    fn isolated(partitions: usize, config: AdmissionConfig) -> (KbRouter, Registry) {
        let registry = Registry::new();
        let router = KbRouter::with_config(sample(), partitions, config, &registry);
        (router, registry)
    }

    #[test]
    fn routed_single_and_scatter_match_the_oracle() {
        let snap = sample();
        let oracle = QueryService::with_instrumentation(Arc::clone(&snap), 64, &Registry::new());
        let oview = oracle.snapshot();
        for n in [1usize, 2, 4] {
            let (router, registry) = isolated(n, AdmissionConfig::default());
            let view = router.view();
            for q in [
                "p3 bornIn ?c",                   // subject-bound
                "p3 bornIn ?c . p3 ?r ?x",        // subject-bound, two patterns
                "?p bornIn ?c",                   // scatter
                "?p bornIn ?c . ?c locatedIn ?n", // scatter join
                "SELECT DISTINCT ?c WHERE { ?p bornIn ?c } ORDER BY ?c LIMIT 3",
                "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c",
            ] {
                let got = router.query(q).expect("router query");
                let want = oracle.query(q).expect("oracle query");
                assert_eq!(got.render(view.as_ref()), want.render(oview.as_ref()), "{q} at n={n}");
            }
            assert_eq!(registry.counter("serve.routed_single").get(), 2);
            assert_eq!(registry.counter("serve.scattered").get(), 4);
            assert_eq!(registry.counter("serve.shed").get(), 0);
        }
    }

    #[test]
    fn subject_bound_queries_touch_only_the_owning_partition() {
        let (router, registry) = isolated(4, AdmissionConfig::default());
        // Query several distinct subjects; each must hit exactly its
        // owner — the other replicas' caches never see a miss.
        let mut expected = [0u64; 4];
        for i in 0..8 {
            let subject = format!("p{i}");
            router.query(&format!("{subject} bornIn ?c")).unwrap();
            expected[subject_partition(&subject, 4)] += 1;
        }
        assert_eq!(registry.counter("serve.routed_single").get(), 8);
        for (p, want) in expected.iter().enumerate() {
            let stats = router.service(p).cache_stats();
            assert_eq!(
                stats.result_hits + stats.result_misses,
                *want,
                "partition {p} served the wrong share"
            );
        }
    }

    #[test]
    fn delta_fanout_keeps_all_partitions_aligned() {
        let base = sample();
        let registry = Registry::new();
        let router =
            KbRouter::with_config(Arc::clone(&base), 3, AdmissionConfig::default(), &registry);
        let before = router.query("?p worksAt ?o").unwrap();
        assert!(before.rows.is_empty());
        let mut b = KbBuilder::new();
        b.assert_str("p1", "worksAt", "NewCo");
        b.assert_str("p2", "worksAt", "NewCo");
        b.retract_str("p1", "bornIn", "c1");
        // Freeze against the monolithic view: the router's replicated
        // dictionary is id-identical to it, so the delta installs on
        // both sides unchanged.
        let delta = Arc::new(b.freeze_delta(&SegmentedSnapshot::from_base(base)));
        router.apply_delta(delta);
        assert_eq!(router.epoch(), 1);
        let after = router.query("?p worksAt ?o").unwrap();
        assert_eq!(after.rows.len(), 2);
        let gone = router.query("p1 bornIn ?c").unwrap();
        assert!(gone.rows.is_empty(), "tombstone must reach the owning partition");
        // New term resolvable everywhere (replicated ext tables).
        let v = router.view();
        for p in 0..3 {
            assert!(v.part(p).term("NewCo").is_some(), "partition {p} missing the new term");
        }
    }

    /// Standing views at the router are byte-identical to a monolithic
    /// service's, at 1 and 4 partitions, across a chain of deltas with
    /// retractions — the IVM analogue of the scatter-gather oracle
    /// test.
    #[test]
    fn partitioned_standing_views_match_the_monolith() {
        let queries = [
            "SELECT ?p ?c WHERE { ?p bornIn ?c . ?c locatedIn X }",
            "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c ORDER BY ?c",
        ];
        for n in [1usize, 4] {
            let (router, _registry) = isolated(n, AdmissionConfig::default());
            let mono = QueryService::with_instrumentation(sample(), 64, &Registry::new());
            let router_ids: Vec<_> =
                queries.iter().map(|q| router.register_view(q).unwrap()).collect();
            let mono_ids: Vec<_> = queries.iter().map(|q| mono.register_view(q).unwrap()).collect();

            for round in 0..3 {
                let mut b = KbBuilder::new();
                b.assert_str(&format!("new{round}"), "bornIn", "c1");
                b.assert_str(&format!("new{round}"), "bornIn", &format!("fresh{round}"));
                b.retract_str(&format!("p{round}"), "bornIn", &format!("c{round}"));
                let mono_view = mono.snapshot();
                let delta = Arc::new(b.freeze_delta(&mono_view));
                router.apply_delta(Arc::clone(&delta));
                mono.apply_delta(delta);
                let rv = router.view();
                let mv = mono.snapshot();
                for (rid, mid) in router_ids.iter().zip(&mono_ids) {
                    let got = router.view_result(*rid).unwrap();
                    let want = mono.view_result(*mid).unwrap();
                    assert_eq!(
                        got.render(rv.as_ref()),
                        want.render(mv.as_ref()),
                        "n={n} round={round}"
                    );
                }
            }
        }
    }

    /// Satellite regression: a subscriber that never drains cannot
    /// block the epoch barrier — the queue sheds its oldest updates,
    /// `view.lagged` counts them, and the next receive reports a typed
    /// `ViewLag` before delivery resumes from a full-answer update.
    #[test]
    fn stalled_subscriber_sheds_instead_of_blocking_installs() {
        let cfg = AdmissionConfig { subscriber_buffer: 2, ..Default::default() };
        let (router, registry) = isolated(2, cfg);
        let id = router.register_view("SELECT ?p WHERE { ?p bornIn c1 }").unwrap();
        let sub = router.subscribe(id);
        assert_eq!(router.subscriber_count(), 1);

        // Five installs against a 2-slot queue; the subscriber stalls.
        // Deltas freeze against a monolithic shadow of the router's
        // state (replicated dictionaries make the term spaces equal).
        let mut shadow = SegmentedSnapshot::from_base(sample());
        for round in 0..5 {
            let mut b = KbBuilder::new();
            b.assert_str(&format!("late{round}"), "bornIn", "c1");
            let delta = Arc::new(b.freeze_delta(&shadow));
            shadow = shadow.with_delta(Arc::clone(&delta));
            router.apply_delta(delta);
        }
        assert_eq!(router.epoch(), 5, "installs must complete despite the stalled subscriber");
        assert_eq!(registry.counter("view.lagged").get(), 3);
        assert_eq!(registry.counter("view.pushed").get(), 5);

        // Lag reported exactly once, then the queued tail drains.
        match sub.try_recv() {
            Err(lag) => assert_eq!(lag.missed, 3),
            other => panic!("expected ViewLag, got {other:?}"),
        }
        let first = sub.try_recv().unwrap().expect("queued update");
        assert!(first.patched);
        // The retained update carries the full answer — a valid resync
        // point even though three diffs were dropped.
        assert_eq!(first.output.rows.len(), router.view_result(id).unwrap().rows.len() - 1);
        let second = sub.try_recv().unwrap().expect("newest update");
        assert_eq!(second.output.rows.len(), router.view_result(id).unwrap().rows.len());
        assert!(sub.try_recv().unwrap().is_none());

        // Dropping the handle unsubscribes on the next push.
        drop(sub);
        let mut b = KbBuilder::new();
        b.assert_str("after_drop", "bornIn", "c1");
        let delta = Arc::new(b.freeze_delta(&shadow));
        router.apply_delta(delta);
        assert_eq!(router.subscriber_count(), 0);
        assert_eq!(registry.counter("view.pushed").get(), 5, "no push after unsubscribe");
    }

    #[test]
    fn shedding_is_typed_and_counted() {
        // queue_depth 0 rejects everything at the queue gate.
        let cfg = AdmissionConfig {
            rate_per_sec: None,
            burst: 1.0,
            queue_depth: 0,
            ..Default::default()
        };
        let (router, registry) = isolated(2, cfg);
        match router.query("?p bornIn ?c") {
            Err(ServeError::Overloaded(Overloaded::QueueFull { partition: 0 })) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        match router.query("p1 bornIn ?c") {
            Err(ServeError::Overloaded(Overloaded::QueueFull { .. })) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(registry.counter("serve.shed").get(), 2);
        assert_eq!(registry.counter("serve.admitted").get(), 0);
        assert_eq!(registry.gauge("serve.queue_depth").get(), 0, "rolled back cleanly");
    }
}
