//! Admission control: per-tenant token buckets in front of bounded
//! per-partition in-flight queues.
//!
//! Both gates shed load by *typed rejection* ([`Overloaded`]) rather
//! than queueing unboundedly: past the knee, a saturated service must
//! answer "no" in microseconds so admitted requests keep their latency
//! — the classic load-shedding posture of production serving stacks.
//!
//! Time comes from the registry clock, so tests (and the T18
//! saturation experiment) drive the buckets with a
//! [`ManualClock`](kb_obs::ManualClock) and get exactly reproducible
//! shed curves.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use kb_obs::{Clock, Gauge};

/// Admission-control policy for a [`KbRouter`](crate::KbRouter).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Per-tenant steady-state admission rate, requests per second.
    /// `None` disables rate limiting.
    pub rate_per_sec: Option<f64>,
    /// Token-bucket burst capacity: how far above the steady rate a
    /// tenant may briefly spike. Buckets start full.
    pub burst: f64,
    /// Bound on concurrently admitted requests per partition; a scatter
    /// query occupies one slot in *every* partition. Zero rejects
    /// everything — useful only in tests.
    pub queue_depth: usize,
    /// Bound on each standing-view subscriber's update queue. When a
    /// slow subscriber falls this many updates behind, the oldest
    /// updates drop (`view.lagged`) and the subscriber's next receive
    /// reports [`ViewLag`](crate::ViewLag) — installs never block on a
    /// stalled consumer.
    pub subscriber_buffer: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { rate_per_sec: None, burst: 32.0, queue_depth: 64, subscriber_buffer: 64 }
    }
}

/// Why a request was shed. Returned inside
/// [`ServeError::Overloaded`](crate::ServeError::Overloaded); always a
/// fast, typed rejection — the router never queues unboundedly and
/// never panics under load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Overloaded {
    /// The tenant's token bucket is empty: offered load exceeds the
    /// configured per-tenant rate.
    RateLimited {
        /// The tenant that exceeded its rate.
        tenant: String,
    },
    /// A partition's in-flight queue is at its bound.
    QueueFull {
        /// The partition whose queue rejected the request.
        partition: usize,
    },
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overloaded::RateLimited { tenant } => {
                write!(f, "tenant {tenant:?} exceeded its admission rate")
            }
            Overloaded::QueueFull { partition } => {
                write!(f, "partition {partition} queue is full")
            }
        }
    }
}

impl std::error::Error for Overloaded {}

/// One tenant's token bucket. Tokens refill continuously at the
/// configured rate and cap at the burst size.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_micros: u64,
}

/// The bucket map plus its sweep bookkeeping, behind one lock.
struct TenantBuckets {
    map: HashMap<String, Bucket>,
    /// When the last idle-bucket sweep ran (µs on the injected clock).
    last_sweep_micros: u64,
}

/// The router's admission gate: token buckets keyed by tenant plus one
/// in-flight counter per partition.
pub(crate) struct Admission {
    config: AdmissionConfig,
    clock: Arc<dyn Clock>,
    buckets: Mutex<TenantBuckets>,
    inflight: Vec<AtomicUsize>,
    queue_depth: Arc<Gauge>,
    tenants: Arc<Gauge>,
}

impl Admission {
    pub(crate) fn new(
        config: AdmissionConfig,
        clock: Arc<dyn Clock>,
        partitions: usize,
        queue_depth: Arc<Gauge>,
        tenants: Arc<Gauge>,
    ) -> Self {
        Self {
            config,
            clock,
            buckets: Mutex::new(TenantBuckets { map: HashMap::new(), last_sweep_micros: 0 }),
            inflight: (0..partitions).map(|_| AtomicUsize::new(0)).collect(),
            queue_depth,
            tenants,
        }
    }

    /// Microseconds of idleness after which a bucket has refilled to
    /// its burst cap and is therefore indistinguishable from the fresh
    /// bucket `admit` would mint for an unknown tenant — the point at
    /// which evicting it is observationally invisible.
    fn full_refill_micros(&self, rate: f64) -> u64 {
        ((self.config.burst / rate) * 1e6).ceil() as u64
    }

    /// Number of resident tenant buckets (for tests and stats).
    #[cfg(test)]
    pub(crate) fn tenant_count(&self) -> usize {
        self.buckets.lock().expect("admission buckets poisoned").map.len()
    }

    /// Takes one token from `tenant`'s bucket, refilling it first from
    /// the elapsed clock time. A tenant's first request finds a full
    /// bucket.
    ///
    /// The bucket map is kept bounded here as well: at most once per
    /// full-refill period, buckets idle for at least a full refill are
    /// dropped. Such a bucket has already refilled to the burst cap, so
    /// the eviction can never change an admission decision — an
    /// adversarial stream of unique tenant ids costs one refill period
    /// of memory, not unbounded growth.
    pub(crate) fn admit(&self, tenant: &str) -> Result<(), Overloaded> {
        let Some(rate) = self.config.rate_per_sec else {
            return Ok(());
        };
        let now = self.clock.now_micros();
        let idle_cutoff = self.full_refill_micros(rate);
        let mut buckets = self.buckets.lock().expect("admission buckets poisoned");
        if now.saturating_sub(buckets.last_sweep_micros) >= idle_cutoff {
            buckets.last_sweep_micros = now;
            buckets.map.retain(|_, b| now.saturating_sub(b.last_micros) < idle_cutoff);
        }
        let bucket = buckets
            .map
            .entry(tenant.to_string())
            .or_insert(Bucket { tokens: self.config.burst, last_micros: now });
        let elapsed = now.saturating_sub(bucket.last_micros);
        bucket.last_micros = now;
        // Multiply before dividing: for round trip counts this stays
        // exact in f64 (100ms at 10 rps is exactly one token).
        bucket.tokens = (bucket.tokens + elapsed as f64 * rate / 1e6).min(self.config.burst);
        let admitted = if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        };
        self.tenants.set(buckets.map.len() as i64);
        if admitted {
            Ok(())
        } else {
            Err(Overloaded::RateLimited { tenant: tenant.to_string() })
        }
    }

    /// Occupies one in-flight slot in each of `parts` (ascending order,
    /// rolled back wholesale on failure, so concurrent scatters cannot
    /// deadlock or leak slots). Released when the returned permit
    /// drops.
    pub(crate) fn acquire(&self, parts: &[usize]) -> Result<Permit<'_>, Overloaded> {
        let depth = self.config.queue_depth;
        for (i, &p) in parts.iter().enumerate() {
            let admitted = self.inflight[p]
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| (v < depth).then_some(v + 1))
                .is_ok();
            if !admitted {
                for &q in &parts[..i] {
                    self.inflight[q].fetch_sub(1, Ordering::AcqRel);
                }
                return Err(Overloaded::QueueFull { partition: p });
            }
        }
        self.queue_depth.add(parts.len() as i64);
        Ok(Permit { admission: self, parts: parts.to_vec() })
    }
}

/// RAII in-flight slots: dropping releases every acquired partition.
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
    parts: Vec<usize>,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        for &p in &self.parts {
            self.admission.inflight[p].fetch_sub(1, Ordering::AcqRel);
        }
        self.admission.queue_depth.add(-(self.parts.len() as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_obs::ManualClock;

    fn gate(config: AdmissionConfig, partitions: usize) -> (Admission, Arc<ManualClock>) {
        let clock = ManualClock::shared(0);
        let queue_depth = Arc::new(Gauge::new());
        let tenants = Arc::new(Gauge::new());
        (Admission::new(config, clock.clone(), partitions, queue_depth, tenants), clock)
    }

    #[test]
    fn token_bucket_sheds_past_the_rate_and_refills() {
        let cfg = AdmissionConfig {
            rate_per_sec: Some(10.0),
            burst: 2.0,
            queue_depth: 4,
            ..Default::default()
        };
        let (gate, clock) = gate(cfg, 1);
        // Burst of 2 admitted, third shed.
        assert!(gate.admit("t").is_ok());
        assert!(gate.admit("t").is_ok());
        assert_eq!(gate.admit("t"), Err(Overloaded::RateLimited { tenant: "t".into() }));
        // 100ms at 10 rps refills exactly one token.
        clock.advance(100_000);
        assert!(gate.admit("t").is_ok());
        assert!(gate.admit("t").is_err());
        // Tenants are isolated.
        assert!(gate.admit("other").is_ok());
    }

    #[test]
    fn idle_tenant_buckets_are_evicted_after_a_full_refill() {
        // burst 2 at 10 rps: a bucket refills completely in 200ms, so
        // the idle cutoff (and minimum sweep spacing) is 200_000µs.
        let cfg = AdmissionConfig {
            rate_per_sec: Some(10.0),
            burst: 2.0,
            queue_depth: 4,
            ..Default::default()
        };
        let (gate, clock) = gate(cfg, 1);
        // Drain "t" to zero tokens, then park 50 one-shot tenants.
        assert!(gate.admit("t").is_ok());
        assert!(gate.admit("t").is_ok());
        for i in 0..50 {
            assert!(gate.admit(&format!("drive-by-{i}")).is_ok());
        }
        assert_eq!(gate.tenant_count(), 51);
        // 100ms later everyone is under the cutoff: no sweep, and "t"
        // has refilled exactly one token.
        clock.advance(100_000);
        assert!(gate.admit("t").is_ok());
        assert_eq!(gate.tenant_count(), 51);
        // 250ms after their last touch, the drive-by tenants have fully
        // refilled; the next admit sweeps them out. "t" (touched 150ms
        // ago) survives with its partial bucket intact: the 1.5 tokens
        // it holds admit one request and shed the next, which a fresh
        // full bucket would not.
        clock.advance(150_000);
        assert!(gate.admit("t").is_ok());
        assert_eq!(gate.tenant_count(), 1);
        assert_eq!(gate.admit("t"), Err(Overloaded::RateLimited { tenant: "t".into() }));
        // An evicted tenant that returns gets the same full bucket a
        // brand-new tenant would — eviction is observationally
        // invisible.
        assert!(gate.admit("drive-by-0").is_ok());
        assert!(gate.admit("drive-by-0").is_ok());
        assert!(gate.admit("drive-by-0").is_err());
    }

    #[test]
    fn queue_bound_rejects_and_rolls_back() {
        let cfg = AdmissionConfig {
            rate_per_sec: None,
            burst: 1.0,
            queue_depth: 1,
            ..Default::default()
        };
        let (gate, _clock) = gate(cfg, 2);
        let held = gate.acquire(&[1]).unwrap();
        // A scatter needing both partitions fails on partition 1 and
        // must roll back its partition-0 slot.
        match gate.acquire(&[0, 1]) {
            Err(e) => assert_eq!(e, Overloaded::QueueFull { partition: 1 }),
            Ok(_) => panic!("scatter must be rejected while partition 1 is full"),
        }
        let p0 = gate.acquire(&[0]).unwrap();
        drop(p0);
        drop(held);
        // Slots released: the scatter now fits.
        let all = gate.acquire(&[0, 1]).unwrap();
        drop(all);
    }
}
