//! Admission control: per-tenant token buckets in front of bounded
//! per-partition in-flight queues.
//!
//! Both gates shed load by *typed rejection* ([`Overloaded`]) rather
//! than queueing unboundedly: past the knee, a saturated service must
//! answer "no" in microseconds so admitted requests keep their latency
//! — the classic load-shedding posture of production serving stacks.
//!
//! Time comes from the registry clock, so tests (and the T18
//! saturation experiment) drive the buckets with a
//! [`ManualClock`](kb_obs::ManualClock) and get exactly reproducible
//! shed curves.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use kb_obs::{Clock, Gauge};

/// Admission-control policy for a [`KbRouter`](crate::KbRouter).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Per-tenant steady-state admission rate, requests per second.
    /// `None` disables rate limiting.
    pub rate_per_sec: Option<f64>,
    /// Token-bucket burst capacity: how far above the steady rate a
    /// tenant may briefly spike. Buckets start full.
    pub burst: f64,
    /// Bound on concurrently admitted requests per partition; a scatter
    /// query occupies one slot in *every* partition. Zero rejects
    /// everything — useful only in tests.
    pub queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { rate_per_sec: None, burst: 32.0, queue_depth: 64 }
    }
}

/// Why a request was shed. Returned inside
/// [`ServeError::Overloaded`](crate::ServeError::Overloaded); always a
/// fast, typed rejection — the router never queues unboundedly and
/// never panics under load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Overloaded {
    /// The tenant's token bucket is empty: offered load exceeds the
    /// configured per-tenant rate.
    RateLimited {
        /// The tenant that exceeded its rate.
        tenant: String,
    },
    /// A partition's in-flight queue is at its bound.
    QueueFull {
        /// The partition whose queue rejected the request.
        partition: usize,
    },
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overloaded::RateLimited { tenant } => {
                write!(f, "tenant {tenant:?} exceeded its admission rate")
            }
            Overloaded::QueueFull { partition } => {
                write!(f, "partition {partition} queue is full")
            }
        }
    }
}

impl std::error::Error for Overloaded {}

/// One tenant's token bucket. Tokens refill continuously at the
/// configured rate and cap at the burst size.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_micros: u64,
}

/// The router's admission gate: token buckets keyed by tenant plus one
/// in-flight counter per partition.
pub(crate) struct Admission {
    config: AdmissionConfig,
    clock: Arc<dyn Clock>,
    buckets: Mutex<HashMap<String, Bucket>>,
    inflight: Vec<AtomicUsize>,
    queue_depth: Arc<Gauge>,
}

impl Admission {
    pub(crate) fn new(
        config: AdmissionConfig,
        clock: Arc<dyn Clock>,
        partitions: usize,
        queue_depth: Arc<Gauge>,
    ) -> Self {
        Self {
            config,
            clock,
            buckets: Mutex::new(HashMap::new()),
            inflight: (0..partitions).map(|_| AtomicUsize::new(0)).collect(),
            queue_depth,
        }
    }

    /// Takes one token from `tenant`'s bucket, refilling it first from
    /// the elapsed clock time. A tenant's first request finds a full
    /// bucket.
    pub(crate) fn admit(&self, tenant: &str) -> Result<(), Overloaded> {
        let Some(rate) = self.config.rate_per_sec else {
            return Ok(());
        };
        let now = self.clock.now_micros();
        let mut buckets = self.buckets.lock().expect("admission buckets poisoned");
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert(Bucket { tokens: self.config.burst, last_micros: now });
        let elapsed = now.saturating_sub(bucket.last_micros);
        bucket.last_micros = now;
        // Multiply before dividing: for round trip counts this stays
        // exact in f64 (100ms at 10 rps is exactly one token).
        bucket.tokens = (bucket.tokens + elapsed as f64 * rate / 1e6).min(self.config.burst);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(Overloaded::RateLimited { tenant: tenant.to_string() })
        }
    }

    /// Occupies one in-flight slot in each of `parts` (ascending order,
    /// rolled back wholesale on failure, so concurrent scatters cannot
    /// deadlock or leak slots). Released when the returned permit
    /// drops.
    pub(crate) fn acquire(&self, parts: &[usize]) -> Result<Permit<'_>, Overloaded> {
        let depth = self.config.queue_depth;
        for (i, &p) in parts.iter().enumerate() {
            let admitted = self.inflight[p]
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| (v < depth).then_some(v + 1))
                .is_ok();
            if !admitted {
                for &q in &parts[..i] {
                    self.inflight[q].fetch_sub(1, Ordering::AcqRel);
                }
                return Err(Overloaded::QueueFull { partition: p });
            }
        }
        self.queue_depth.add(parts.len() as i64);
        Ok(Permit { admission: self, parts: parts.to_vec() })
    }
}

/// RAII in-flight slots: dropping releases every acquired partition.
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
    parts: Vec<usize>,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        for &p in &self.parts {
            self.admission.inflight[p].fetch_sub(1, Ordering::AcqRel);
        }
        self.admission.queue_depth.add(-(self.parts.len() as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_obs::ManualClock;

    fn gate(config: AdmissionConfig, partitions: usize) -> (Admission, Arc<ManualClock>) {
        let clock = ManualClock::shared(0);
        let gauge = Arc::new(Gauge::new());
        (Admission::new(config, clock.clone(), partitions, gauge), clock)
    }

    #[test]
    fn token_bucket_sheds_past_the_rate_and_refills() {
        let cfg = AdmissionConfig { rate_per_sec: Some(10.0), burst: 2.0, queue_depth: 4 };
        let (gate, clock) = gate(cfg, 1);
        // Burst of 2 admitted, third shed.
        assert!(gate.admit("t").is_ok());
        assert!(gate.admit("t").is_ok());
        assert_eq!(gate.admit("t"), Err(Overloaded::RateLimited { tenant: "t".into() }));
        // 100ms at 10 rps refills exactly one token.
        clock.advance(100_000);
        assert!(gate.admit("t").is_ok());
        assert!(gate.admit("t").is_err());
        // Tenants are isolated.
        assert!(gate.admit("other").is_ok());
    }

    #[test]
    fn queue_bound_rejects_and_rolls_back() {
        let cfg = AdmissionConfig { rate_per_sec: None, burst: 1.0, queue_depth: 1 };
        let (gate, _clock) = gate(cfg, 2);
        let held = gate.acquire(&[1]).unwrap();
        // A scatter needing both partitions fails on partition 1 and
        // must roll back its partition-0 slot.
        match gate.acquire(&[0, 1]) {
            Err(e) => assert_eq!(e, Overloaded::QueueFull { partition: 1 }),
            Ok(_) => panic!("scatter must be rejected while partition 1 is full"),
        }
        let p0 = gate.acquire(&[0]).unwrap();
        drop(p0);
        drop(held);
        // Slots released: the scatter now fits.
        let all = gate.acquire(&[0, 1]).unwrap();
        drop(all);
    }
}
