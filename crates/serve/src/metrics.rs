//! The router's owned metric instances, published under `serve.*` in a
//! [`Registry`]. Owning the instances (rather than re-reading
//! get-or-create handles) keeps per-router readouts exact when several
//! routers coexist in one process, as they do under `cargo test`.

use std::sync::Arc;

use kb_obs::{Clock, Counter, Gauge, Histogram, Registry, SpanTimer};

pub(crate) struct ServeMetrics {
    /// Subject-bound queries routed to exactly one partition.
    pub(crate) routed_single: Arc<Counter>,
    /// Queries executed over the merged scatter view.
    pub(crate) scattered: Arc<Counter>,
    /// Requests rejected by admission control (rate or queue bound).
    pub(crate) shed: Arc<Counter>,
    /// Requests that passed admission control.
    pub(crate) admitted: Arc<Counter>,
    /// Delta installs fanned out across the partitions.
    pub(crate) installs: Arc<Counter>,
    /// Requests currently holding per-partition queue slots (scatter
    /// holds one per partition).
    pub(crate) queue_depth: Arc<Gauge>,
    /// Token buckets currently resident in the admission gate. Bounded:
    /// idle buckets are evicted once a full refill has elapsed.
    pub(crate) tenants: Arc<Gauge>,
    /// Parse + routing-decision latency.
    pub(crate) route_us: Arc<Histogram>,
    /// Single-partition serve latency.
    pub(crate) single_us: Arc<Histogram>,
    /// Scatter (merged-view plan + execute) latency.
    pub(crate) scatter_us: Arc<Histogram>,
    /// Epoch-barrier delta fan-out latency.
    pub(crate) install_us: Arc<Histogram>,
    /// Standing-view updates delivered to subscriber queues.
    pub(crate) view_pushed: Arc<Counter>,
    /// Standing-view updates shed from full subscriber queues.
    pub(crate) view_lagged: Arc<Counter>,
    clock: Arc<dyn Clock>,
}

impl ServeMetrics {
    /// Fresh instances, registered (replacing same-named predecessors)
    /// in `registry`.
    pub(crate) fn publish(registry: &Registry) -> Self {
        let counter = |name: &str| {
            let c = Arc::new(Counter::new());
            registry.register_counter(name, Arc::clone(&c));
            c
        };
        let histogram = |name: &str| {
            let h = Arc::new(Histogram::latency());
            registry.register_histogram(name, Arc::clone(&h));
            h
        };
        let queue_depth = Arc::new(Gauge::new());
        registry.register_gauge("serve.queue_depth", Arc::clone(&queue_depth));
        let tenants = Arc::new(Gauge::new());
        registry.register_gauge("serve.tenants", Arc::clone(&tenants));
        ServeMetrics {
            routed_single: counter("serve.routed_single"),
            scattered: counter("serve.scattered"),
            shed: counter("serve.shed"),
            admitted: counter("serve.admitted"),
            installs: counter("serve.installs"),
            queue_depth,
            tenants,
            route_us: histogram("serve.route_us"),
            single_us: histogram("serve.single_us"),
            scatter_us: histogram("serve.scatter_us"),
            install_us: histogram("serve.install_us"),
            view_pushed: counter("view.pushed"),
            view_lagged: counter("view.lagged"),
            clock: registry.clock(),
        }
    }

    pub(crate) fn span(&self, hist: &Arc<Histogram>) -> SpanTimer {
        SpanTimer::start(Arc::clone(&self.clock), Arc::clone(hist))
    }
}
