//! # kb-serve
//!
//! Scale-out serving for the knowledge base: subject-partitioned
//! [`QueryService`](kb_query::QueryService) replicas behind a
//! planner-aware [`KbRouter`], with admission control in front — the
//! paper's map-reduce-era scaling story applied to the *serving* side
//! ("same scaling shape on one machine", DESIGN.md).
//!
//! ## Partitioning invariant
//!
//! The KB is hash-partitioned by the subject *string*
//! ([`kb_store::subject_partition`]): every fact lives in exactly one
//! partition, colocated with its subject, while the term dictionary,
//! source table and ontology stores are replicated into every replica
//! so all partitions speak the global `TermId` language. Each replica
//! also receives the *global* planner statistics, so any replica plans
//! exactly like a monolithic service over the whole KB.
//!
//! ## Routing
//!
//! The router parses each query and asks the planner for a
//! [`RoutingDecision`](kb_query::RoutingDecision):
//!
//! * **Subject-bound** queries (every pattern has the same constant
//!   subject) route to the one partition that owns the subject — the
//!   replica's answer is byte-identical to the monolith's because it
//!   holds every fact the query can touch, the same ids, and the same
//!   statistics.
//! * Everything else **scatter-gathers**: the gather is pushed below
//!   the join to the *scan* level — the query executes once at the
//!   router over a [`PartitionedView`](kb_store::PartitionedView) that
//!   k-way merges per-partition index cursors into exactly the
//!   monolithic scan order. DISTINCT / ORDER BY / LIMIT / aggregates
//!   are therefore computed at the merger over complete inputs, never
//!   trusted from per-partition partials.
//!
//! ## Consistency
//!
//! Delta installs fan out under an epoch barrier:
//! [`KbRouter::apply_delta`] splits the frozen delta by subject hash,
//! installs every slice (empty slices included, keeping the replicas'
//! term/source spaces aligned) and swaps the merged scatter view while
//! holding the router's write lock — a query either sees all
//! partitions pre-delta or all partitions post-delta, never a torn
//! mix.
//!
//! ## Admission control
//!
//! In front of routing sits an [`AdmissionConfig`]-driven gate:
//! per-tenant token buckets and bounded per-partition in-flight
//! queues. Rejections are typed ([`Overloaded`]) and counted
//! (`serve.shed`), never panics — load past the knee degrades into
//! fast, explicit rejections while admitted traffic keeps its latency.

mod admission;
mod metrics;
mod router;
mod subscribe;

pub use admission::{AdmissionConfig, Overloaded};
pub use router::{KbRouter, ServeError, DEFAULT_TENANT};
pub use subscribe::{Subscription, ViewLag};
