//! Entity tracking: resolving each post's mentions against the KB and
//! aggregating those of the tracked entities.

use std::collections::HashMap;

use kb_ned::{detect_mentions, Ned, Strategy};
use kb_store::{KbRead, KnowledgeBase, TermId};

use crate::aggregate::TimeSeries;
use crate::sentiment::polarity;
use crate::stream::StreamPost;

/// Tracks a fixed set of entities through a stream.
///
/// Generic over the KB view (`K`): the live [`KnowledgeBase`] façade or
/// an immutable snapshot — anything implementing [`KbRead`].
pub struct Tracker<'a, 'kb, K: ?Sized = KnowledgeBase> {
    /// The NED engine used for mention resolution.
    pub ned: &'a Ned<'kb, K>,
    /// The entities being tracked.
    pub tracked: Vec<TermId>,
    /// Disambiguation strategy (Context by default).
    pub strategy: Strategy,
}

impl<'a, 'kb, K: KbRead + ?Sized> Tracker<'a, 'kb, K> {
    /// Creates a tracker.
    pub fn new(ned: &'a Ned<'kb, K>, tracked: Vec<TermId>) -> Self {
        Self { ned, tracked, strategy: Strategy::Context }
    }

    /// Processes one post: returns `(entity, sentiment)` for each
    /// resolved mention of a tracked entity.
    pub fn process(&self, kb: &K, post: &StreamPost) -> Vec<(TermId, i8)> {
        let mentions = detect_mentions(kb, &post.text);
        if mentions.is_empty() {
            return vec![];
        }
        let spans: Vec<(usize, usize)> = mentions.iter().map(|m| (m.start, m.end)).collect();
        let resolved = self.ned.disambiguate(&post.text, &spans, self.strategy);
        let sentiment = polarity(&post.text);
        resolved
            .into_iter()
            .flatten()
            .filter(|e| self.tracked.contains(e))
            .map(|e| (e, sentiment))
            .collect()
    }

    /// Top entities co-mentioned with a tracked entity: for every post
    /// mentioning `entity`, counts the *other* resolved entities —
    /// the "what is it discussed with?" view.
    pub fn co_mentions(
        &self,
        kb: &K,
        posts: &[StreamPost],
        entity: TermId,
        k: usize,
    ) -> Vec<(TermId, usize)> {
        let mut counts: HashMap<TermId, usize> = HashMap::new();
        for post in posts {
            let mentions = detect_mentions(kb, &post.text);
            if mentions.is_empty() {
                continue;
            }
            let spans: Vec<(usize, usize)> = mentions.iter().map(|m| (m.start, m.end)).collect();
            let resolved: Vec<TermId> = self
                .ned
                .disambiguate(&post.text, &spans, self.strategy)
                .into_iter()
                .flatten()
                .collect();
            if resolved.contains(&entity) {
                for other in resolved {
                    if other != entity {
                        *counts.entry(other).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<(TermId, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Aggregates a whole stream into per-entity weekly time series.
    pub fn aggregate(&self, kb: &K, posts: &[StreamPost]) -> HashMap<TermId, TimeSeries> {
        let mut series: HashMap<TermId, TimeSeries> =
            self.tracked.iter().map(|&e| (e, TimeSeries::new())).collect();
        for post in posts {
            for (entity, sentiment) in self.process(kb, post) {
                series.entry(entity).or_default().record(post.week(), sentiment);
            }
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KnowledgeBase, TermId, TermId) {
        let mut kb = KnowledgeBase::new();
        let strato = kb.intern("Strato_3");
        let nova = kb.intern("Nova_2");
        let acme = kb.intern("AcmeCo");
        let created = kb.intern("created");
        kb.add_triple(acme, created, strato);
        let en = kb.labels.lang("en");
        kb.labels.add(strato, en, "Strato 3");
        kb.labels.add(nova, en, "Nova 2");
        (kb, strato, nova)
    }

    #[test]
    fn tracked_mentions_are_aggregated_with_sentiment() {
        let (kb, strato, nova) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Strato 3", strato);
        ned.add_anchor("Nova 2", nova);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![strato, nova]);
        let posts = vec![
            StreamPost::new(0, "got the Strato 3. the camera is great!"),
            StreamPost::new(1, "the Strato 3 battery is terrible."),
            StreamPost::new(8, "thoughts on the Nova 2. love it"),
            StreamPost::new(9, "unrelated chatter about nothing"),
        ];
        let series = tracker.aggregate(&kb, &posts);
        let s = &series[&strato];
        assert_eq!(s.total_mentions(), 2);
        assert_eq!(s.buckets[&0].positive, 1);
        assert_eq!(s.buckets[&0].negative, 1);
        let n = &series[&nova];
        assert_eq!(n.total_mentions(), 1);
        assert_eq!(n.buckets[&1].positive, 1);
    }

    #[test]
    fn untracked_entities_are_ignored() {
        let (kb, strato, nova) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Strato 3", strato);
        ned.add_anchor("Nova 2", nova);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![strato]);
        let posts = vec![StreamPost::new(0, "comparing the Nova 2 today")];
        let series = tracker.aggregate(&kb, &posts);
        assert_eq!(series[&strato].total_mentions(), 0);
        assert!(!series.contains_key(&nova));
    }

    #[test]
    fn co_mentions_count_other_resolved_entities() {
        let (kb, strato, nova) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Strato 3", strato);
        ned.add_anchor("Nova 2", nova);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![strato]);
        let posts = vec![
            StreamPost::new(0, "comparing the Strato 3 and the Nova 2 today"),
            StreamPost::new(1, "the Strato 3 alone"),
            StreamPost::new(2, "the Nova 2 alone"),
        ];
        let co = tracker.co_mentions(&kb, &posts, strato, 5);
        assert_eq!(co, vec![(nova, 1)]);
    }

    #[test]
    fn empty_stream_produces_empty_series() {
        let (kb, strato, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![strato]);
        let series = tracker.aggregate(&kb, &[]);
        assert_eq!(series[&strato].total_mentions(), 0);
    }
}
