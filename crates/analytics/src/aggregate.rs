//! Time-bucketed aggregation of resolved mentions.

use std::collections::BTreeMap;

/// Per-bucket counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketStats {
    /// Mentions of the tracked entity in this bucket.
    pub mentions: usize,
    /// Positive-sentiment mentions.
    pub positive: usize,
    /// Negative-sentiment mentions.
    pub negative: usize,
}

impl BucketStats {
    /// Net sentiment in `[-1, 1]` (0 when no opinionated mentions).
    pub fn net_sentiment(&self) -> f64 {
        let opinions = self.positive + self.negative;
        if opinions == 0 {
            0.0
        } else {
            (self.positive as f64 - self.negative as f64) / opinions as f64
        }
    }
}

/// A time series of bucket stats (key = bucket index, e.g. week).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    /// bucket → stats, ordered.
    pub buckets: BTreeMap<u32, BucketStats>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one mention with its sentiment.
    pub fn record(&mut self, bucket: u32, sentiment: i8) {
        let b = self.buckets.entry(bucket).or_default();
        b.mentions += 1;
        match sentiment.signum() {
            1 => b.positive += 1,
            -1 => b.negative += 1,
            _ => {}
        }
    }

    /// Merges another series into this one (used by the parallel
    /// executor; merge is commutative and associative).
    pub fn merge(&mut self, other: &TimeSeries) {
        for (&bucket, stats) in &other.buckets {
            let b = self.buckets.entry(bucket).or_default();
            b.mentions += stats.mentions;
            b.positive += stats.positive;
            b.negative += stats.negative;
        }
    }

    /// Total mentions across buckets.
    pub fn total_mentions(&self) -> usize {
        self.buckets.values().map(|b| b.mentions).sum()
    }

    /// Least-squares slope of mentions over buckets (trend direction).
    pub fn trend_slope(&self) -> f64 {
        let n = self.buckets.len();
        if n < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.buckets.keys().map(|&k| k as f64).collect();
        let ys: Vec<f64> = self.buckets.values().map(|b| b.mentions as f64).collect();
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
        let var: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        if var == 0.0 {
            0.0
        } else {
            cov / var
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut ts = TimeSeries::new();
        ts.record(0, 1);
        ts.record(0, -1);
        ts.record(1, 0);
        assert_eq!(ts.total_mentions(), 3);
        assert_eq!(ts.buckets[&0].positive, 1);
        assert_eq!(ts.buckets[&0].negative, 1);
        assert_eq!(ts.buckets[&1].mentions, 1);
    }

    #[test]
    fn net_sentiment_normalizes() {
        let mut ts = TimeSeries::new();
        ts.record(0, 1);
        ts.record(0, 1);
        ts.record(0, -1);
        ts.record(0, 0);
        let b = ts.buckets[&0];
        assert!((b.net_sentiment() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(BucketStats::default().net_sentiment(), 0.0);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = TimeSeries::new();
        a.record(0, 1);
        a.record(2, -1);
        let mut b = TimeSeries::new();
        b.record(0, -1);
        b.record(1, 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_mentions(), 4);
    }

    #[test]
    fn trend_slope_detects_ramps() {
        let mut flat = TimeSeries::new();
        let mut rising = TimeSeries::new();
        for week in 0..8u32 {
            for _ in 0..5 {
                flat.record(week, 0);
            }
            for _ in 0..week {
                rising.record(week, 0);
            }
        }
        assert!(flat.trend_slope().abs() < 1e-9);
        assert!(rising.trend_slope() > 0.5);
        assert_eq!(TimeSeries::new().trend_slope(), 0.0);
    }
}
