//! Side-by-side comparison reports for two tracked entities —
//! experiment T10's output format.

use std::fmt;

use crate::aggregate::TimeSeries;

/// A rendered comparison of two entities' stream presence.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Display name of entity A.
    pub name_a: String,
    /// Display name of entity B.
    pub name_b: String,
    /// A's weekly series.
    pub series_a: TimeSeries,
    /// B's weekly series.
    pub series_b: TimeSeries,
}

impl ComparisonReport {
    /// Builds a report.
    pub fn new(name_a: &str, series_a: TimeSeries, name_b: &str, series_b: TimeSeries) -> Self {
        Self { name_a: name_a.to_string(), name_b: name_b.to_string(), series_a, series_b }
    }

    /// The first week where B's mentions overtake A's, if any.
    pub fn crossover_week(&self) -> Option<u32> {
        let weeks: std::collections::BTreeSet<u32> =
            self.series_a.buckets.keys().chain(self.series_b.buckets.keys()).copied().collect();
        for w in weeks {
            let a = self.series_a.buckets.get(&w).map_or(0, |b| b.mentions);
            let b = self.series_b.buckets.get(&w).map_or(0, |b| b.mentions);
            if b > a {
                return Some(w);
            }
        }
        None
    }

    /// Summary rows: `(week, mentions_a, net_a, mentions_b, net_b)`.
    pub fn rows(&self) -> Vec<(u32, usize, f64, usize, f64)> {
        let weeks: std::collections::BTreeSet<u32> =
            self.series_a.buckets.keys().chain(self.series_b.buckets.keys()).copied().collect();
        weeks
            .into_iter()
            .map(|w| {
                let a = self.series_a.buckets.get(&w).copied().unwrap_or_default();
                let b = self.series_b.buckets.get(&w).copied().unwrap_or_default();
                (w, a.mentions, a.net_sentiment(), b.mentions, b.net_sentiment())
            })
            .collect()
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4}  {:>12} {:>6}  {:>12} {:>6}",
            "week", self.name_a, "sent", self.name_b, "sent"
        )?;
        for (w, ma, sa, mb, sb) in self.rows() {
            writeln!(f, "{w:>4}  {ma:>12} {sa:>+6.2}  {mb:>12} {sb:>+6.2}")?;
        }
        write!(
            f,
            "totals: {} = {}, {} = {}; trend slopes {:+.2} vs {:+.2}",
            self.name_a,
            self.series_a.total_mentions(),
            self.name_b,
            self.series_b.total_mentions(),
            self.series_a.trend_slope(),
            self.series_b.trend_slope(),
        )?;
        if let Some(w) = self.crossover_week() {
            write!(f, "; {} overtakes in week {w}", self.name_b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(counts: &[(u32, usize)]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(week, n) in counts {
            for _ in 0..n {
                ts.record(week, 1);
            }
        }
        ts
    }

    #[test]
    fn crossover_detection() {
        let a = series(&[(0, 10), (1, 10), (2, 10)]);
        let b = series(&[(0, 2), (1, 8), (2, 15)]);
        let r = ComparisonReport::new("A", a, "B", b);
        assert_eq!(r.crossover_week(), Some(2));
    }

    #[test]
    fn no_crossover_when_a_dominates() {
        let a = series(&[(0, 10), (1, 10)]);
        let b = series(&[(0, 2), (1, 3)]);
        let r = ComparisonReport::new("A", a, "B", b);
        assert_eq!(r.crossover_week(), None);
    }

    #[test]
    fn rows_cover_union_of_weeks() {
        let a = series(&[(0, 1)]);
        let b = series(&[(2, 1)]);
        let r = ComparisonReport::new("A", a, "B", b);
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows[1].0, 2);
        assert_eq!(rows[1].1, 0, "A missing in week 2");
    }

    #[test]
    fn display_renders_names_and_totals() {
        let r = ComparisonReport::new("Strato", series(&[(0, 3)]), "Nova", series(&[(0, 1)]));
        let text = r.to_string();
        assert!(text.contains("Strato"));
        assert!(text.contains("Nova"));
        assert!(text.contains("totals"));
    }
}
