//! Burst detection over mention time series: flagging buckets whose
//! volume spikes above the trailing baseline — the "what happened this
//! week?" primitive of entity-centric stream monitoring.

use crate::aggregate::TimeSeries;

/// A detected burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// The bursting bucket.
    pub bucket: u32,
    /// Observed mentions.
    pub mentions: usize,
    /// Trailing-baseline mean the bucket was compared against.
    pub baseline: f64,
    /// Z-score against the trailing window.
    pub z_score: f64,
}

/// Detection parameters.
#[derive(Debug, Clone, Copy)]
pub struct BurstConfig {
    /// Trailing window length (buckets) forming the baseline.
    pub window: usize,
    /// Minimum z-score to flag a burst.
    pub min_z: f64,
    /// Minimum absolute mentions (suppresses bursts over near-zero
    /// baselines).
    pub min_mentions: usize,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self { window: 4, min_z: 2.0, min_mentions: 5 }
    }
}

/// Detects bursts in a series. Buckets with fewer than two trailing
/// observations are never flagged (no baseline to compare against).
/// Missing buckets inside the observed range count as zero.
pub fn detect_bursts(series: &TimeSeries, cfg: &BurstConfig) -> Vec<Burst> {
    let Some((&first, _)) = series.buckets.first_key_value() else {
        return Vec::new();
    };
    let Some((&last, _)) = series.buckets.last_key_value() else {
        return Vec::new();
    };
    let counts: Vec<(u32, usize)> =
        (first..=last).map(|b| (b, series.buckets.get(&b).map_or(0, |s| s.mentions))).collect();
    let mut bursts = Vec::new();
    for (i, &(bucket, mentions)) in counts.iter().enumerate() {
        if i < 2 {
            continue;
        }
        let lo = i.saturating_sub(cfg.window.max(1));
        let window: Vec<f64> = counts[lo..i].iter().map(|&(_, m)| m as f64).collect();
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let var = window.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / window.len() as f64;
        // Poisson-style floor keeps the z-score finite on flat windows.
        let std = var.sqrt().max(mean.sqrt()).max(1.0);
        let z = (mentions as f64 - mean) / std;
        if z >= cfg.min_z && mentions >= cfg.min_mentions {
            bursts.push(Burst { bucket, mentions, baseline: mean, z_score: z });
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(counts: &[usize]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for (week, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                ts.record(week as u32, 0);
            }
        }
        ts
    }

    #[test]
    fn flat_series_has_no_bursts() {
        let ts = series(&[10, 10, 10, 10, 10, 10]);
        assert!(detect_bursts(&ts, &BurstConfig::default()).is_empty());
    }

    #[test]
    fn spike_is_detected_with_correct_bucket() {
        let ts = series(&[10, 10, 10, 10, 60, 10]);
        let bursts = detect_bursts(&ts, &BurstConfig::default());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].bucket, 4);
        assert_eq!(bursts[0].mentions, 60);
        assert!(bursts[0].z_score > 2.0);
        assert!((bursts[0].baseline - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gradual_ramp_is_not_a_burst() {
        let ts = series(&[10, 12, 14, 16, 18, 20, 22]);
        assert!(detect_bursts(&ts, &BurstConfig::default()).is_empty());
    }

    #[test]
    fn small_spikes_below_min_mentions_are_suppressed() {
        let ts = series(&[1, 1, 1, 1, 9, 1]);
        let cfg = BurstConfig { min_mentions: 10, ..Default::default() };
        assert!(detect_bursts(&ts, &cfg).is_empty());
        let lax = BurstConfig { min_mentions: 1, ..Default::default() };
        assert_eq!(detect_bursts(&ts, &lax).len(), 1);
        assert_eq!(detect_bursts(&ts, &lax)[0].bucket, 4);
    }

    #[test]
    fn missing_buckets_count_as_zero_baseline() {
        let mut ts = TimeSeries::new();
        for _ in 0..8 {
            ts.record(0, 0);
        }
        for _ in 0..40 {
            ts.record(6, 0);
        }
        // Weeks 1..5 are silent; week 6 explodes.
        let bursts = detect_bursts(&ts, &BurstConfig::default());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].bucket, 6);
    }

    #[test]
    fn empty_series() {
        assert!(detect_bursts(&TimeSeries::new(), &BurstConfig::default()).is_empty());
    }
}
