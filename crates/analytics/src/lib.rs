//! # kb-analytics
//!
//! Entity-centric analytics over text streams — the tutorial's §4
//! motivating example: "track and compare two entities in social media
//! over an extended timespan (e.g., the Apple iPhone vs. Samsung Galaxy
//! families)".
//!
//! The pipeline: each post is scanned for entity mentions
//! ([`kb_ned::detect_mentions`]), mentions are disambiguated against
//! the KB, resolved mentions of *tracked* entities are bucketed by time
//! and scored for sentiment, and a [`ComparisonReport`](report) renders
//! the volume/sentiment series side by side. [`exec`] runs the same
//! aggregation with a multi-threaded worker pool.

pub mod aggregate;
pub mod burst;
pub mod exec;
pub mod live;
pub mod report;
pub mod sentiment;
pub mod stream;
pub mod track;

pub use aggregate::TimeSeries;
pub use live::{synthesize_stream, window_mention_counts};
pub use report::ComparisonReport;
pub use stream::{sliding_windows, StreamPost, Window};
pub use track::Tracker;
