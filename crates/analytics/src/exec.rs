//! Parallel stream aggregation: a worker pool over post chunks with
//! commutative merge — the map-reduce shape of big-data analytics on a
//! single machine. Tracked-entity sets are selected declaratively with
//! `kb-query` (see [`tracked_by_query`]) instead of hand-rolled pattern
//! scans.

use std::collections::HashMap;

use kb_ned::Ned;
use kb_query::{Cell, QueryError};
use kb_store::{KbRead, TermId};

use crate::aggregate::TimeSeries;
use crate::stream::StreamPost;
use crate::track::Tracker;

/// Aggregates a stream with `workers` threads. Results are identical to
/// the serial [`Tracker::aggregate`] because per-entity series merge
/// commutatively. Works over any `Sync` KB view — in particular an
/// `Arc`-shared `KbSnapshot`, which the workers read without locking.
pub fn aggregate_parallel<K: KbRead + Sync + ?Sized>(
    tracker: &Tracker<'_, '_, K>,
    kb: &K,
    posts: &[StreamPost],
    workers: usize,
) -> HashMap<TermId, TimeSeries> {
    let workers = workers.max(1);
    if workers == 1 || posts.len() < 2 {
        return tracker.aggregate(kb, posts);
    }
    let chunk_size = posts.len().div_ceil(workers);
    let partials: Vec<HashMap<TermId, TimeSeries>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = posts
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move |_| tracker.aggregate(kb, chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("analytics worker panicked")).collect()
    })
    .expect("scope failed");
    let mut merged: HashMap<TermId, TimeSeries> =
        tracker.tracked.iter().map(|&e| (e, TimeSeries::new())).collect();
    for partial in partials {
        for (entity, series) in partial {
            merged.entry(entity).or_default().merge(&series);
        }
    }
    merged
}

/// Builds a [`Tracker`] whose tracked set is selected by a `kb-query`
/// query instead of a hand-assembled entity list — e.g. track everyone
/// a query like `SELECT ?p WHERE { ?p worksAt Nimbus_Systems }` binds.
///
/// The query must project exactly one column, and every row must bind
/// it to a term (aggregate columns are rejected). The tracked set is
/// deduplicated and sorted for deterministic downstream iteration.
pub fn tracked_by_query<'a, 'kb, K: KbRead + ?Sized>(
    ned: &'a Ned<'kb, K>,
    kb: &K,
    query_text: &str,
) -> Result<Tracker<'a, 'kb, K>, QueryError> {
    let out = kb_query::query(kb, query_text)?;
    if out.cols.len() != 1 {
        return Err(QueryError::Plan(format!(
            "tracking query must project exactly one column, got {}: {:?}",
            out.cols.len(),
            out.cols
        )));
    }
    let mut tracked: Vec<TermId> = out
        .rows
        .iter()
        .filter_map(|row| match row[0] {
            Cell::Term(id) => Some(id),
            Cell::Count(_) | Cell::Unbound => None,
        })
        .collect();
    tracked.sort_unstable();
    tracked.dedup();
    Ok(Tracker::new(ned, tracked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_ned::Ned;
    use kb_store::KnowledgeBase;

    #[test]
    fn parallel_equals_serial() {
        let mut kb = KnowledgeBase::new();
        let strato = kb.intern("Strato_3");
        let en = kb.labels.lang("en");
        kb.labels.add(strato, en, "Strato 3");
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Strato 3", strato);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![strato]);
        let posts: Vec<StreamPost> = (0..40)
            .map(|i| {
                StreamPost::new(
                    i % 14,
                    if i % 3 == 0 { "the Strato 3 is great" } else { "the Strato 3 is terrible" },
                )
            })
            .collect();
        let serial = tracker.aggregate(&kb, &posts);
        for w in [2, 4, 7] {
            let parallel = aggregate_parallel(&tracker, &kb, &posts, w);
            assert_eq!(serial, parallel, "workers = {w}");
        }
    }

    #[test]
    fn tracked_by_query_selects_entities() {
        let mut kb = KnowledgeBase::new();
        kb.assert_str("Alan", "worksAt", "Acme");
        kb.assert_str("Bea", "worksAt", "Acme");
        kb.assert_str("Cyr", "worksAt", "Globex");
        let mut ned = Ned::new(&kb);
        ned.finalize();
        let tracker = tracked_by_query(&ned, &kb, "SELECT ?p WHERE { ?p worksAt Acme }").unwrap();
        let names: Vec<&str> = tracker.tracked.iter().map(|&t| kb.resolve(t).unwrap()).collect();
        assert_eq!(names, vec!["Alan", "Bea"]);

        // A two-column projection is rejected.
        assert!(tracked_by_query(&ned, &kb, "?p worksAt ?co").is_err());
    }

    #[test]
    fn single_worker_short_circuits() {
        let kb = KnowledgeBase::new();
        let mut ned = Ned::new(&kb);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![]);
        let out = aggregate_parallel(&tracker, &kb, &[], 8);
        assert!(out.is_empty());
    }
}
