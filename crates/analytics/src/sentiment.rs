//! Lexicon-based sentiment scoring: the cheap, robust baseline that
//! large-scale stream analytics actually deploys.

/// Positive opinion words.
static POSITIVE: &[&str] = &[
    "amazing",
    "awesome",
    "brilliant",
    "excellent",
    "fantastic",
    "fast",
    "gorgeous",
    "great",
    "love",
    "loved",
    "nice",
    "superb",
    "wonderful",
];

/// Negative opinion words.
static NEGATIVE: &[&str] = &[
    "awful",
    "broken",
    "buggy",
    "disappointing",
    "flimsy",
    "hate",
    "hated",
    "overpriced",
    "poor",
    "slow",
    "terrible",
    "ugly",
    "worst",
];

/// Sentiment polarity of a text: `+1`, `-1` or `0`, by counting lexicon
/// hits over lowercased word tokens.
pub fn polarity(text: &str) -> i8 {
    let mut score = 0i32;
    for word in kb_nlp::token::word_texts(text) {
        if POSITIVE.binary_search(&word.as_str()).is_ok() {
            score += 1;
        } else if NEGATIVE.binary_search(&word.as_str()).is_ok() {
            score -= 1;
        }
    }
    score.signum() as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicons_are_sorted_for_binary_search() {
        let mut p = POSITIVE.to_vec();
        p.sort_unstable();
        assert_eq!(p, POSITIVE);
        let mut n = NEGATIVE.to_vec();
        n.sort_unstable();
        assert_eq!(n, NEGATIVE);
    }

    #[test]
    fn classifies_clear_cases() {
        assert_eq!(polarity("the camera is great! love it"), 1);
        assert_eq!(polarity("battery is terrible and slow"), -1);
        assert_eq!(polarity("no strong opinion yet"), 0);
    }

    #[test]
    fn mixed_text_nets_out() {
        assert_eq!(polarity("great screen but terrible battery"), 0);
        assert_eq!(polarity("great great but terrible"), 1);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(polarity("GREAT phone"), 1);
    }

    #[test]
    fn covers_the_corpus_lexicon() {
        // Every sentiment word the corpus generator uses must be scored,
        // otherwise T10's sentiment series degenerates.
        for w in kb_corpus::lexicon::POSITIVE_WORDS {
            assert_eq!(polarity(w), 1, "{w} not recognized as positive");
        }
        for w in kb_corpus::lexicon::NEGATIVE_WORDS {
            assert_eq!(polarity(w), -1, "{w} not recognized as negative");
        }
    }
}
