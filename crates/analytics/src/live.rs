//! Live-stream replay: scaling the §4 rival-product case study from a
//! fixed corpus to a continuous, arbitrarily long synthetic stream.
//!
//! The corpus generator plants a finite stream (thousands of posts
//! over a few weeks). A live deployment sees the same *shape* at a
//! thousand times the volume: posts keep arriving, the timeline keeps
//! extending, and analytics ask about *recent sliding windows* rather
//! than all of history. This module bridges the two:
//!
//! * [`synthesize_stream`] tiles the corpus stream end to end — each
//!   cycle re-emits every post with its day shifted by one horizon, so
//!   a 5k-post corpus becomes a million-post stream with the same
//!   per-week statistics. Bodies are `Arc<str>` clones: the million
//!   posts share the corpus posts' text allocations.
//! * [`window_mention_counts`] aggregates tracked-entity mentions over
//!   half-open sliding [`Window`]s, resolving each post exactly once
//!   no matter how many windows overlap it.
//!
//! The harvest side of the loop (turning stream batches into
//! [`DeltaSegment`](kb_store::DeltaSegment) installs and patching
//! standing views) lives in `kb_harvest::pipeline::IncrementalHarvester`
//! and `kb_query::ViewRegistry`; the end-to-end replay is exercised by
//! `tests/streaming_stress.rs` and harness T20.

use std::collections::HashMap;

use kb_store::{KbRead, TermId};

use crate::stream::{StreamPost, Window};
use crate::track::Tracker;

/// The number of days the stream spans: one past the last post's day
/// (days are half-open like everything else, so a stream whose last
/// post is day 20 occupies `[0, 21)`).
pub fn horizon_days(posts: &[StreamPost]) -> u32 {
    posts.iter().map(|p| p.day + 1).max().unwrap_or(0)
}

/// Tiles `base` into a stream of at least `target` posts by cycling
/// it with a one-horizon day shift per cycle: cycle `k` re-emits every
/// base post at `day + k * horizon`. Per-window statistics are
/// therefore periodic with the corpus's planted shape, which is what
/// makes replay results checkable at any scale. Post bodies are
/// refcount clones, so a million-post stream costs a million small
/// structs, not a million string copies.
pub fn synthesize_stream(base: &[StreamPost], target: usize) -> Vec<StreamPost> {
    if base.is_empty() || target == 0 {
        return Vec::new();
    }
    let horizon = horizon_days(base);
    let mut out = Vec::with_capacity(target);
    let mut cycle = 0u32;
    while out.len() < target {
        let shift = cycle * horizon;
        for post in base {
            if out.len() == target {
                break;
            }
            out.push(StreamPost { day: post.day + shift, text: std::sync::Arc::clone(&post.text) });
        }
        cycle += 1;
    }
    out
}

/// Per-window mention counts for each tracked entity, over half-open
/// sliding windows.
///
/// Every post is resolved through the tracker exactly once; the
/// resolved `(day, entity)` pairs are then distributed into all
/// windows containing the day. With overlapping windows this is the
/// difference between O(posts) and O(posts × overlap) NED work — the
/// resolution step dominates.
pub fn window_mention_counts<K: KbRead + ?Sized>(
    tracker: &Tracker<'_, '_, K>,
    kb: &K,
    posts: &[StreamPost],
    windows: &[Window],
) -> Vec<HashMap<TermId, usize>> {
    let mut resolved: Vec<(u32, TermId)> = Vec::new();
    for post in posts {
        for (entity, _sentiment) in tracker.process(kb, post) {
            resolved.push((post.day, entity));
        }
    }
    windows
        .iter()
        .map(|w| {
            let mut counts: HashMap<TermId, usize> = HashMap::new();
            for &(day, entity) in &resolved {
                if w.contains(day) {
                    *counts.entry(entity).or_insert(0) += 1;
                }
            }
            counts
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::sliding_windows;
    use kb_ned::Ned;
    use kb_store::KnowledgeBase;
    use std::sync::Arc;

    #[test]
    fn synthesized_stream_tiles_the_horizon() {
        let base = vec![StreamPost::new(0, "a"), StreamPost::new(3, "b"), StreamPost::new(6, "c")];
        let stream = synthesize_stream(&base, 8);
        assert_eq!(stream.len(), 8);
        assert_eq!(horizon_days(&base), 7);
        // Cycle 1 re-emits shifted by one horizon; bodies are shared.
        assert_eq!(stream[3].day, 7);
        assert_eq!(stream[5].day, 13);
        assert_eq!(stream[6].day, 14, "cycle 2 starts two horizons in");
        assert!(Arc::ptr_eq(&stream[3].text, &base[0].text));
        assert!(synthesize_stream(&[], 10).is_empty());
        assert!(synthesize_stream(&base, 0).is_empty());
    }

    #[test]
    fn window_counts_follow_the_half_open_convention() {
        let mut kb = KnowledgeBase::new();
        let strato = kb.intern("Strato_3");
        let en = kb.labels.lang("en");
        kb.labels.add(strato, en, "Strato 3");
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Strato 3", strato);
        ned.finalize();
        let tracker = Tracker::new(&ned, vec![strato]);
        // Mentions exactly at window boundaries: days 6 and 7.
        let posts = vec![
            StreamPost::new(6, "the Strato 3 on day six"),
            StreamPost::new(7, "the Strato 3 on day seven"),
        ];
        let windows = sliding_windows(14, 7, 7);
        let counts = window_mention_counts(&tracker, &kb, &posts, &windows);
        assert_eq!(counts[0].get(&strato), Some(&1), "day 6 belongs to [0,7)");
        assert_eq!(counts[1].get(&strato), Some(&1), "day 7 belongs to [7,14)");
        // An overlapping window sees both.
        let wide = [Window::new(4, 10)];
        let both = window_mention_counts(&tracker, &kb, &posts, &wide);
        assert_eq!(both[0].get(&strato), Some(&2));
    }
}
