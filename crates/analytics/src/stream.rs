//! The analytics input: timestamped text posts.

/// One post of a social-media-like stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPost {
    /// Day index from stream start.
    pub day: u32,
    /// Post text.
    pub text: String,
}

impl StreamPost {
    /// Creates a post.
    pub fn new(day: u32, text: &str) -> Self {
        Self { day, text: text.to_string() }
    }

    /// The week bucket this post falls into.
    pub fn week(&self) -> u32 {
        self.day / 7
    }
}

/// Converts a corpus post (drops gold annotations — analytics must
/// resolve mentions itself).
pub fn from_corpus(post: &kb_corpus::social::Post) -> StreamPost {
    StreamPost { day: post.day, text: post.text.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_bucketing() {
        assert_eq!(StreamPost::new(0, "x").week(), 0);
        assert_eq!(StreamPost::new(6, "x").week(), 0);
        assert_eq!(StreamPost::new(7, "x").week(), 1);
        assert_eq!(StreamPost::new(20, "x").week(), 2);
    }
}
