//! The analytics input: timestamped text posts, and the temporal
//! bucketing convention every aggregation in this crate follows.
//!
//! ## Half-open windows
//!
//! **All temporal buckets are half-open on the right: `[start,
//! end)`.** A window contains its start day and excludes its end day,
//! so consecutive windows of the same width tile the timeline with no
//! gap and no double-count: day 6 is the last day of week 0, day 7 the
//! first day of week 1. [`StreamPost::week`] (the fixed weekly
//! bucketing) and [`Window`]/[`sliding_windows`] (arbitrary sliding
//! windows) both implement this convention; the boundary tests below
//! pin it.

use std::sync::Arc;

/// One post of a social-media-like stream.
///
/// The body is an `Arc<str>`: cloning a post (windowing, per-worker
/// chunking, re-bucketing) bumps a refcount instead of copying the
/// text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPost {
    /// Day index from stream start.
    pub day: u32,
    /// Post text.
    pub text: Arc<str>,
}

impl StreamPost {
    /// Creates a post.
    pub fn new(day: u32, text: &str) -> Self {
        Self { day, text: Arc::from(text) }
    }

    /// The week bucket this post falls into. Week `k` is the half-open
    /// day range `[7k, 7(k+1))`: day 6 is still week 0, day 7 opens
    /// week 1.
    pub fn week(&self) -> u32 {
        self.day / 7
    }
}

/// A half-open range of day indices, `[start, end)`: contains `start`,
/// excludes `end`. The unit of sliding-window analytics — see the
/// module docs for why half-open is the only gap-free, overlap-free
/// tiling convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// First day inside the window.
    pub start: u32,
    /// First day *after* the window.
    pub end: u32,
}

impl Window {
    /// Creates `[start, end)`. Panics if `start > end` (an empty
    /// window `[d, d)` is allowed and contains nothing).
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "window start {start} past end {end}");
        Window { start, end }
    }

    /// Whether `day` falls inside `[start, end)`.
    pub fn contains(&self, day: u32) -> bool {
        self.start <= day && day < self.end
    }

    /// Number of days covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the window covers no days.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Half-open sliding windows of `width` days advancing by `step` days
/// over the day range `[0, horizon)`: `[0, w)`, `[s, s+w)`, `[2s,
/// 2s+w)`, … — the final windows clip at `horizon`. With `step ==
/// width` this degenerates to the tumbling (gap-free, overlap-free)
/// tiling `week()` uses.
///
/// Panics if `width` or `step` is zero.
pub fn sliding_windows(horizon: u32, width: u32, step: u32) -> Vec<Window> {
    assert!(width > 0, "zero-width windows cover nothing");
    assert!(step > 0, "zero step never advances");
    let mut out = Vec::new();
    let mut start = 0u32;
    while start < horizon {
        out.push(Window::new(start, (start + width).min(horizon)));
        match start.checked_add(step) {
            Some(next) => start = next,
            None => break,
        }
    }
    out
}

/// Converts a corpus post (drops gold annotations — analytics must
/// resolve mentions itself). Shares the body with the corpus post
/// rather than cloning it.
pub fn from_corpus(post: &kb_corpus::social::Post) -> StreamPost {
    StreamPost { day: post.day, text: Arc::clone(&post.text) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_bucketing() {
        assert_eq!(StreamPost::new(0, "x").week(), 0);
        assert_eq!(StreamPost::new(6, "x").week(), 0);
        assert_eq!(StreamPost::new(7, "x").week(), 1);
        assert_eq!(StreamPost::new(20, "x").week(), 2);
    }

    /// The half-open boundary contract: a window owns its start, not
    /// its end, so the week edges (6/7, 13/14) land exactly once.
    #[test]
    fn windows_are_half_open_at_both_boundaries() {
        let w0 = Window::new(0, 7);
        let w1 = Window::new(7, 14);
        assert!(w0.contains(0), "start day belongs to the window");
        assert!(w0.contains(6), "last interior day belongs to the window");
        assert!(!w0.contains(7), "end day is excluded");
        assert!(w1.contains(7), "…and owned by the next window");
        assert!(w1.contains(13));
        assert!(!w1.contains(14));
        // Half-open agrees with week() at every boundary timestamp.
        for day in [0u32, 6, 7, 13, 14, 20] {
            let week = StreamPost::new(day, "x").week();
            assert!(Window::new(week * 7, (week + 1) * 7).contains(day), "day {day}");
        }
        assert_eq!(w0.len(), 7);
        let empty = Window::new(3, 3);
        assert!(empty.is_empty());
        assert!(!empty.contains(3), "an empty window contains nothing, not even its start");
    }

    #[test]
    fn sliding_windows_tile_and_clip() {
        // Tumbling (step == width): gap-free, overlap-free.
        let tumbling = sliding_windows(21, 7, 7);
        assert_eq!(tumbling, vec![Window::new(0, 7), Window::new(7, 14), Window::new(14, 21)]);
        for day in 0..21 {
            assert_eq!(tumbling.iter().filter(|w| w.contains(day)).count(), 1, "day {day}");
        }
        // Overlapping: each interior day is seen by width/step windows.
        let sliding = sliding_windows(28, 14, 7);
        assert_eq!(sliding.len(), 4);
        assert_eq!(sliding[0], Window::new(0, 14));
        assert_eq!(sliding[1], Window::new(7, 21));
        assert_eq!(sliding.last().unwrap(), &Window::new(21, 28), "final window clips");
        assert_eq!(sliding.iter().filter(|w| w.contains(14)).count(), 2);
        // A horizon shorter than the width yields one clipped window.
        assert_eq!(sliding_windows(3, 7, 7), vec![Window::new(0, 3)]);
        assert!(sliding_windows(0, 7, 7).is_empty());
    }

    #[test]
    fn from_corpus_shares_the_body() {
        let post = kb_corpus::social::Post {
            day: 3,
            text: "shared body".into(),
            mentions: Vec::new(),
            gold_sentiment: 0,
        };
        let sp = from_corpus(&post);
        assert_eq!(sp.day, 3);
        assert!(Arc::ptr_eq(&sp.text, &post.text), "body must be shared, not copied");
        let sp2 = sp.clone();
        assert!(Arc::ptr_eq(&sp.text, &sp2.text), "clones must share too");
    }
}
