//! The analytics input: timestamped text posts.

use std::sync::Arc;

/// One post of a social-media-like stream.
///
/// The body is an `Arc<str>`: cloning a post (windowing, per-worker
/// chunking, re-bucketing) bumps a refcount instead of copying the
/// text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPost {
    /// Day index from stream start.
    pub day: u32,
    /// Post text.
    pub text: Arc<str>,
}

impl StreamPost {
    /// Creates a post.
    pub fn new(day: u32, text: &str) -> Self {
        Self { day, text: Arc::from(text) }
    }

    /// The week bucket this post falls into.
    pub fn week(&self) -> u32 {
        self.day / 7
    }
}

/// Converts a corpus post (drops gold annotations — analytics must
/// resolve mentions itself). Shares the body with the corpus post
/// rather than cloning it.
pub fn from_corpus(post: &kb_corpus::social::Post) -> StreamPost {
    StreamPost { day: post.day, text: Arc::clone(&post.text) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_bucketing() {
        assert_eq!(StreamPost::new(0, "x").week(), 0);
        assert_eq!(StreamPost::new(6, "x").week(), 0);
        assert_eq!(StreamPost::new(7, "x").week(), 1);
        assert_eq!(StreamPost::new(20, "x").week(), 2);
    }

    #[test]
    fn from_corpus_shares_the_body() {
        let post = kb_corpus::social::Post {
            day: 3,
            text: "shared body".into(),
            mentions: Vec::new(),
            gold_sentiment: 0,
        };
        let sp = from_corpus(&post);
        assert_eq!(sp.day, 3);
        assert!(Arc::ptr_eq(&sp.text, &post.text), "body must be shared, not copied");
        let sp2 = sp.clone();
        assert!(Arc::ptr_eq(&sp.text, &sp2.text), "clones must share too");
    }
}
