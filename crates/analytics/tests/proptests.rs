//! Property-based tests for the analytics aggregation layer.

use proptest::prelude::*;

use kb_analytics::aggregate::TimeSeries;
use kb_analytics::burst::{detect_bursts, BurstConfig};
use kb_analytics::sentiment::polarity;

fn events() -> impl Strategy<Value = Vec<(u32, i8)>> {
    prop::collection::vec((0u32..16, -1i8..=1), 0..120)
}

proptest! {
    /// Merge is commutative, associative, and totals add up.
    #[test]
    fn merge_algebra(a in events(), b in events(), c in events()) {
        let build = |evs: &[(u32, i8)]| {
            let mut ts = TimeSeries::new();
            for &(w, s) in evs {
                ts.record(w, s);
            }
            ts
        };
        let (ta, tb, tc) = (build(&a), build(&b), build(&c));
        // Commutativity.
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&tc);
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut a_bc = ta.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Totals.
        prop_assert_eq!(ab_c.total_mentions(), a.len() + b.len() + c.len());
    }

    /// Net sentiment stays within [-1, 1] for every bucket.
    #[test]
    fn net_sentiment_bounded(a in events()) {
        let mut ts = TimeSeries::new();
        for &(w, s) in &a {
            ts.record(w, s);
        }
        for b in ts.buckets.values() {
            let net = b.net_sentiment();
            prop_assert!((-1.0..=1.0).contains(&net));
            prop_assert!(b.positive + b.negative <= b.mentions);
        }
    }

    /// Burst buckets always exceed their reported baseline, and burst
    /// detection is deterministic.
    #[test]
    fn bursts_exceed_baseline(a in events()) {
        let mut ts = TimeSeries::new();
        for &(w, s) in &a {
            ts.record(w, s);
        }
        let cfg = BurstConfig::default();
        let bursts = detect_bursts(&ts, &cfg);
        for b in &bursts {
            prop_assert!(b.mentions as f64 > b.baseline, "{b:?}");
            prop_assert!(b.z_score >= cfg.min_z);
            prop_assert!(b.mentions >= cfg.min_mentions);
        }
        prop_assert_eq!(bursts, detect_bursts(&ts, &cfg));
    }

    /// Sentiment polarity is a sign function: bounded and stable under
    /// repetition of the same text.
    #[test]
    fn polarity_is_bounded_and_pure(text in "[a-z ]{0,80}") {
        let p = polarity(&text);
        prop_assert!((-1..=1).contains(&p));
        prop_assert_eq!(p, polarity(&text));
        // Adding a clearly positive word never decreases polarity class
        // from negative to... (monotonicity in one word):
        let boosted = format!("{text} great");
        prop_assert!(polarity(&boosted) >= p);
    }
}
