//! Boolean factor graphs with Gibbs-sampling marginal inference —
//! the DeepDive-style statistical-inference backend (tutorial §3,
//! "statistical learning, e.g. factor graphs and MLN's").
//!
//! Variables are booleans; factors are log-potentials over one or two
//! variables. [`gibbs_marginals`] estimates `P(x = true)` for every
//! variable. [`infer_candidates`] wires candidate facts into a graph:
//! unary evidence factors from extraction confidence, negative pairwise
//! factors between constraint-violating pairs — the *soft* counterpart
//! of the MaxSat reasoner's hard clauses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::facts::extract::CandidateFact;
use crate::facts::relation_spec;
use crate::facts::scoring::{type_verdict, TypeIndex, TypeVerdict};

/// A factor over one or two boolean variables.
#[derive(Debug, Clone)]
pub enum Factor {
    /// `log φ(x) = if x { log_odds } else { 0 }` — evidence for/against
    /// one variable.
    Unary {
        /// The variable.
        var: usize,
        /// Log-odds contributed when the variable is true.
        log_odds: f64,
    },
    /// Full pairwise table: `table[2*a + b]` is the log-potential of
    /// assignment `(a, b)`.
    Pairwise {
        /// First variable.
        a: usize,
        /// Second variable.
        b: usize,
        /// Log-potentials for (false,false), (false,true), (true,false),
        /// (true,true).
        table: [f64; 4],
    },
}

/// A factor graph over boolean variables.
#[derive(Debug, Clone, Default)]
pub struct FactorGraph {
    /// Number of variables.
    pub num_vars: usize,
    /// All factors.
    pub factors: Vec<Factor>,
}

impl FactorGraph {
    /// Creates a graph with `num_vars` variables and no factors.
    pub fn new(num_vars: usize) -> Self {
        Self { num_vars, factors: Vec::new() }
    }

    /// Adds unary evidence.
    pub fn unary(&mut self, var: usize, log_odds: f64) {
        self.factors.push(Factor::Unary { var, log_odds });
    }

    /// Adds a pairwise factor.
    pub fn pairwise(&mut self, a: usize, b: usize, table: [f64; 4]) {
        self.factors.push(Factor::Pairwise { a, b, table });
    }

    /// Adds a mutual-exclusion penalty: log-potential `-penalty` when
    /// both variables are true.
    pub fn mutex(&mut self, a: usize, b: usize, penalty: f64) {
        self.pairwise(a, b, [0.0, 0.0, 0.0, -penalty]);
    }
}

/// Gibbs-sampling parameters.
#[derive(Debug, Clone, Copy)]
pub struct GibbsConfig {
    /// RNG seed.
    pub seed: u64,
    /// Burn-in sweeps before sampling.
    pub burn_in: usize,
    /// Sweeps whose states are averaged into marginals.
    pub samples: usize,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self { seed: 17, burn_in: 100, samples: 400 }
    }
}

/// Estimates `P(x_v = true)` for every variable by Gibbs sampling.
pub fn gibbs_marginals(graph: &FactorGraph, cfg: &GibbsConfig) -> Vec<f64> {
    let n = graph.num_vars;
    if n == 0 {
        return vec![];
    }
    // var -> indices of factors touching it.
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in graph.factors.iter().enumerate() {
        match f {
            Factor::Unary { var, .. } => touching[*var].push(fi),
            Factor::Pairwise { a, b, .. } => {
                touching[*a].push(fi);
                if b != a {
                    touching[*b].push(fi);
                }
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut state: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let mut true_counts = vec![0usize; n];

    // Energy difference for setting var v true vs false, given the rest.
    let delta = |state: &[bool], v: usize, touching: &[Vec<usize>]| -> f64 {
        let mut d = 0.0;
        for &fi in &touching[v] {
            match &graph.factors[fi] {
                Factor::Unary { var, log_odds } => {
                    debug_assert_eq!(*var, v);
                    d += log_odds;
                }
                Factor::Pairwise { a, b, table } => {
                    let (other, v_is_a) = if *a == v { (*b, true) } else { (*a, false) };
                    let o = state[other];
                    let (with_true, with_false) = if v_is_a {
                        (table[2 + usize::from(o)], table[usize::from(o)])
                    } else {
                        (table[2 * usize::from(o) + 1], table[2 * usize::from(o)])
                    };
                    d += with_true - with_false;
                }
            }
        }
        d
    };

    for sweep in 0..cfg.burn_in + cfg.samples {
        for v in 0..n {
            let d = delta(&state, v, &touching);
            let p_true = 1.0 / (1.0 + (-d).exp());
            state[v] = rng.gen_bool(p_true.clamp(1e-9, 1.0 - 1e-9));
        }
        if sweep >= cfg.burn_in {
            for v in 0..n {
                if state[v] {
                    true_counts[v] += 1;
                }
            }
        }
    }
    true_counts.into_iter().map(|c| c as f64 / cfg.samples.max(1) as f64).collect()
}

/// Converts a confidence in `(0,1)` to clamped log-odds.
pub fn confidence_log_odds(conf: f64) -> f64 {
    let c = conf.clamp(0.02, 0.98);
    (c / (1.0 - c)).ln()
}

/// Builds the candidate-fact factor graph and returns per-candidate
/// marginal probabilities.
///
/// Encoding: unary evidence `logit(confidence)`; type violations add a
/// strong negative unary; functionality / inverse-functionality
/// conflicts become pairwise mutex penalties (soft, unlike the MaxSat
/// reasoner's hard clauses).
pub fn infer_candidates(
    candidates: &[CandidateFact],
    types: &TypeIndex,
    cfg: &GibbsConfig,
) -> Vec<f64> {
    let n = candidates.len();
    let mut graph = FactorGraph::new(n);
    for (i, c) in candidates.iter().enumerate() {
        graph.unary(i, confidence_log_odds(c.confidence));
        if type_verdict(c, types) == TypeVerdict::Violation {
            graph.unary(i, -6.0);
        }
    }
    let mut by_sr: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut by_ro: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        by_sr.entry((c.subject.as_str(), c.relation.as_str())).or_default().push(i);
        by_ro.entry((c.relation.as_str(), c.object.as_str())).or_default().push(i);
    }
    for ((_, rel), group) in &by_sr {
        let Some(spec) = relation_spec(rel) else { continue };
        if !spec.functional {
            continue;
        }
        for (pos, &a) in group.iter().enumerate() {
            for &b in &group[pos + 1..] {
                if candidates[a].object != candidates[b].object {
                    graph.mutex(a, b, 6.0);
                }
            }
        }
    }
    for ((rel, _), group) in &by_ro {
        let Some(spec) = relation_spec(rel) else { continue };
        if !spec.inverse_functional {
            continue;
        }
        for (pos, &a) in group.iter().enumerate() {
            for &b in &group[pos + 1..] {
                if candidates[a].subject != candidates[b].subject {
                    graph.mutex(a, b, 6.0);
                }
            }
        }
    }
    gibbs_marginals(&graph, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_unary_evidence_drives_marginals() {
        let mut g = FactorGraph::new(2);
        g.unary(0, 3.0);
        g.unary(1, -3.0);
        let m = gibbs_marginals(&g, &GibbsConfig::default());
        assert!(m[0] > 0.85, "m0 = {}", m[0]);
        assert!(m[1] < 0.15, "m1 = {}", m[1]);
    }

    #[test]
    fn no_factors_means_uniform_marginals() {
        let g = FactorGraph::new(1);
        let m = gibbs_marginals(&g, &GibbsConfig { samples: 2000, ..Default::default() });
        assert!((m[0] - 0.5).abs() < 0.1, "m = {}", m[0]);
    }

    #[test]
    fn mutex_suppresses_the_weaker_variable() {
        let mut g = FactorGraph::new(2);
        g.unary(0, 2.0);
        g.unary(1, 1.0);
        g.mutex(0, 1, 8.0);
        let m = gibbs_marginals(&g, &GibbsConfig::default());
        assert!(m[0] > m[1] + 0.2, "m = {m:?}");
        assert!(m[0] > 0.6);
    }

    #[test]
    fn positive_coupling_correlates_variables() {
        // x0 has strong evidence; x1 none, but coupled to x0.
        let mut g = FactorGraph::new(2);
        g.unary(0, 3.0);
        g.pairwise(0, 1, [1.5, -1.5, -1.5, 1.5]); // agreement reward
        let m = gibbs_marginals(&g, &GibbsConfig::default());
        assert!(m[1] > 0.7, "coupled var should follow: {}", m[1]);
    }

    #[test]
    fn marginals_are_deterministic_per_seed() {
        let mut g = FactorGraph::new(3);
        g.unary(0, 1.0);
        g.mutex(0, 1, 4.0);
        g.unary(2, -0.5);
        let cfg = GibbsConfig::default();
        assert_eq!(gibbs_marginals(&g, &cfg), gibbs_marginals(&g, &cfg));
    }

    #[test]
    fn empty_graph() {
        assert!(gibbs_marginals(&FactorGraph::new(0), &GibbsConfig::default()).is_empty());
    }

    fn cand(s: &str, r: &str, o: &str, conf: f64) -> CandidateFact {
        CandidateFact {
            subject: s.into(),
            relation: r.into(),
            object: o.into(),
            confidence: conf,
            support: 1,
            docs: 1,
            patterns: 1,
            hints: vec![],
        }
    }

    #[test]
    fn candidate_inference_resolves_functionality_conflicts() {
        let cands =
            vec![cand("Alan", "bornIn", "Lund", 0.95), cand("Alan", "bornIn", "Torberg", 0.4)];
        let m = infer_candidates(&cands, &TypeIndex::new(), &GibbsConfig::default());
        assert!(m[0] > 0.7, "strong candidate survives: {}", m[0]);
        assert!(m[1] < 0.45, "weak conflicting candidate suppressed: {}", m[1]);
    }

    #[test]
    fn candidate_inference_punishes_type_violations() {
        let mut types = TypeIndex::new();
        types.insert("AcmeCo".into(), ["company".to_string()].into_iter().collect());
        types.insert("Lund".into(), ["city".to_string()].into_iter().collect());
        let cands = vec![cand("AcmeCo", "bornIn", "Lund", 0.9)];
        let m = infer_candidates(&cands, &types, &GibbsConfig::default());
        assert!(m[0] < 0.2, "type violation must sink the marginal: {}", m[0]);
    }

    #[test]
    fn log_odds_conversion_is_clamped_and_monotone() {
        assert!(confidence_log_odds(0.999) <= confidence_log_odds(0.9999) + 1e-9);
        assert!(confidence_log_odds(0.9) > 0.0);
        assert!(confidence_log_odds(0.1) < 0.0);
        assert!(confidence_log_odds(0.0).is_finite());
        assert!(confidence_log_odds(1.0).is_finite());
    }
}
