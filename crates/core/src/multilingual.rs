//! Multilingual knowledge harvesting (tutorial §3): collecting entity
//! labels in multiple languages from interlanguage links, with a
//! transliteration-consistency filter that rejects corrupted links.
//!
//! Real interlanguage links are noisy (bot edits, vandalism, drift);
//! the filter checks that a foreign label is *string-consistent* with
//! the English one — sharing a long common core after stripping
//! language-specific affixes — before accepting it, mirroring the
//! name-consistency checks used when fusing multilingual sources.

use kb_nlp::similarity::jaro_winkler;
use kb_store::KnowledgeBase;

/// One interlanguage link: an entity's purported label in a language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangLink {
    /// Canonical entity name.
    pub entity: String,
    /// Language tag ("de", "fr", ...).
    pub lang: String,
    /// The label in that language.
    pub label: String,
    /// The trusted English label to check against.
    pub english: String,
}

/// Filter parameters.
#[derive(Debug, Clone, Copy)]
pub struct MultilingualConfig {
    /// Minimum Jaro-Winkler similarity between the affix-stripped
    /// foreign label and the English label.
    pub min_consistency: f64,
}

impl Default for MultilingualConfig {
    fn default() -> Self {
        Self { min_consistency: 0.75 }
    }
}

/// Strips known language-specific affixes before comparison
/// (the corpus' pseudo-translations add "haus"/"Le "; real systems use
/// per-language transliteration tables here).
fn strip_affixes(label: &str, lang: &str) -> String {
    match lang {
        "de" => label.strip_suffix("haus").unwrap_or(label).to_string(),
        "fr" => label.strip_prefix("Le ").unwrap_or(label).to_string(),
        _ => label.to_string(),
    }
}

/// Whether a link passes the consistency filter.
pub fn is_consistent(link: &LangLink, cfg: &MultilingualConfig) -> bool {
    let stripped = strip_affixes(&link.label, &link.lang);
    jaro_winkler(&stripped.to_lowercase(), &link.english.to_lowercase()) >= cfg.min_consistency
}

/// Harvest outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultilingualStats {
    /// Links examined.
    pub examined: usize,
    /// Links accepted into the KB.
    pub accepted: usize,
    /// Links rejected by the consistency filter.
    pub rejected: usize,
}

/// Harvests consistent labels into the KB's label store. When
/// `filter` is false every link is accepted (the unfiltered baseline of
/// experiment T9).
pub fn harvest_labels(
    kb: &mut KnowledgeBase,
    links: &[LangLink],
    cfg: &MultilingualConfig,
    filter: bool,
) -> MultilingualStats {
    let mut stats = MultilingualStats::default();
    for link in links {
        stats.examined += 1;
        if filter && !is_consistent(link, cfg) {
            stats.rejected += 1;
            continue;
        }
        let term = kb.intern(&link.entity);
        let lang = kb.labels.lang(&link.lang);
        kb.labels.add(term, lang, &link.label);
        stats.accepted += 1;
    }
    stats
}

/// Builds the link set from a corpus world, optionally corrupting a
/// fraction of links deterministically (every `1/noise`-th link gets a
/// shuffled label from another entity) — the noisy input for T9.
pub fn links_from_world(world: &kb_corpus::World, corrupt_every: usize) -> Vec<LangLink> {
    let mut links = Vec::new();
    let n = world.entities.len();
    for (i, e) in world.entities.iter().enumerate() {
        for (lang, label) in &e.labels {
            if *lang == "en" {
                continue;
            }
            let corrupted = corrupt_every > 0 && i % corrupt_every == 0;
            let label = if corrupted {
                // Take another entity's label in the same language.
                let other = &world.entities[(i + n / 2) % n];
                other
                    .labels
                    .iter()
                    .find(|(l, _)| l == lang)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_else(|| label.clone())
            } else {
                label.clone()
            };
            links.push(LangLink {
                entity: e.canonical.clone(),
                lang: (*lang).to_string(),
                label,
                english: e.display.clone(),
            });
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KbRead;

    fn link(entity: &str, lang: &str, label: &str, english: &str) -> LangLink {
        LangLink {
            entity: entity.into(),
            lang: lang.into(),
            label: label.into(),
            english: english.into(),
        }
    }

    #[test]
    fn consistent_links_pass() {
        let cfg = MultilingualConfig::default();
        assert!(is_consistent(&link("Lundholm", "de", "Lundholmhaus", "Lundholm"), &cfg));
        assert!(is_consistent(&link("Lundholm", "fr", "Le Lundholm", "Lundholm"), &cfg));
    }

    #[test]
    fn corrupted_links_fail() {
        let cfg = MultilingualConfig::default();
        assert!(!is_consistent(&link("Lundholm", "de", "Torberghaus", "Lundholm"), &cfg));
        assert!(!is_consistent(&link("Lundholm", "fr", "Le Quellstad", "Lundholm"), &cfg));
    }

    #[test]
    fn harvest_with_filter_rejects_noise() {
        let mut kb = KnowledgeBase::new();
        let links = vec![
            link("Lundholm", "de", "Lundholmhaus", "Lundholm"),
            link("Lundholm", "de", "Wrongville", "Lundholm"),
        ];
        let stats = harvest_labels(&mut kb, &links, &MultilingualConfig::default(), true);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(kb.labels.label_count(), 1);
    }

    #[test]
    fn harvest_without_filter_accepts_everything() {
        let mut kb = KnowledgeBase::new();
        let links = vec![
            link("Lundholm", "de", "Lundholmhaus", "Lundholm"),
            link("Lundholm", "de", "Wrongville", "Lundholm"),
        ];
        let stats = harvest_labels(&mut kb, &links, &MultilingualConfig::default(), false);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn world_links_cover_non_english_languages() {
        use kb_corpus::{CorpusConfig, World};
        let world = World::generate(&CorpusConfig::tiny().world);
        let links = links_from_world(&world, 0);
        assert!(!links.is_empty());
        assert!(links.iter().all(|l| l.lang != "en"));
        // Two foreign languages per entity.
        assert_eq!(links.len(), world.entities.len() * 2);
    }

    #[test]
    fn corruption_knob_corrupts_a_fraction() {
        use kb_corpus::{CorpusConfig, World};
        let world = World::generate(&CorpusConfig::tiny().world);
        let clean = links_from_world(&world, 0);
        let noisy = links_from_world(&world, 4);
        let differing = clean.iter().zip(&noisy).filter(|(a, b)| a.label != b.label).count();
        assert!(differing > 0);
        assert!(differing < clean.len() / 2);
    }

    #[test]
    fn filter_improves_accuracy_on_noisy_world_links() {
        use kb_corpus::{CorpusConfig, World};
        let world = World::generate(&CorpusConfig::tiny().world);
        let noisy = links_from_world(&world, 3);
        let gold: std::collections::HashSet<(String, String, String)> =
            links_from_world(&world, 0).into_iter().map(|l| (l.entity, l.lang, l.label)).collect();
        let accuracy = |filtered: bool| {
            let mut kb = KnowledgeBase::new();
            harvest_labels(&mut kb, &noisy, &MultilingualConfig::default(), filtered);
            let mut correct = 0usize;
            let mut total = 0usize;
            for (term, lang, label) in kb.labels.iter() {
                total += 1;
                let entity = kb.resolve(term).unwrap().to_string();
                let lang = kb.labels.lang_tag(lang).unwrap().to_string();
                if gold.contains(&(entity, lang, label.to_string())) {
                    correct += 1;
                }
            }
            correct as f64 / total.max(1) as f64
        };
        assert!(accuracy(true) > accuracy(false), "filter must improve label accuracy");
    }
}
