//! Harvesting entities and classes (tutorial §2): three method families
//! plus merge/induction utilities.
//!
//! * [`category`] — Wikipedia-style category-string analysis: parse the
//!   head noun, keep class categories ("Valdorian entrepreneurs" →
//!   `entrepreneur`), reject relational ones ("People born in X").
//! * [`hearst`] — Hearst patterns over free text: "CLASSES such as A, B
//!   and C" / "A and other CLASSES".
//! * [`setexp`] — set expansion: grow a seed set of a class via shared
//!   enumeration contexts.
//! * [`induce`] — merge class evidence and induce subclass edges by
//!   instance-set subsumption.

pub mod category;
pub mod hearst;
pub mod induce;
pub mod setexp;

use std::collections::HashSet;

/// A harvested `instanceOf` assertion keyed by canonical entity name and
/// class name, with the method that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstanceAssertion {
    /// Canonical entity name.
    pub entity: String,
    /// Class name (normalized singular, lowercase, underscored).
    pub class: String,
}

/// Converts a set of assertions to the `(entity, class)` string pairs
/// used by the evaluation.
pub fn to_eval_set(assertions: &[InstanceAssertion]) -> HashSet<(String, String)> {
    assertions.iter().map(|a| (a.entity.clone(), a.class.clone())).collect()
}

/// Normalizes a plural class head to the singular class identifier used
/// by the gold taxonomy: lowercase, `people → person`,
/// `-ies → -y`, trailing `-s` stripped, spaces → underscores.
pub fn singularize_class(plural: &str) -> String {
    let lower = plural.to_lowercase().replace(' ', "_");
    if lower == "people" || lower == "persons" {
        return "person".to_string();
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        return format!("{stem}y");
    }
    if let Some(stem) = lower.strip_suffix('s') {
        if !stem.is_empty() {
            return stem.to_string();
        }
    }
    lower
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singularize_covers_gold_classes() {
        assert_eq!(singularize_class("people"), "person");
        assert_eq!(singularize_class("cities"), "city");
        assert_eq!(singularize_class("companies"), "company");
        assert_eq!(singularize_class("entrepreneurs"), "entrepreneur");
        assert_eq!(singularize_class("universities"), "university");
        assert_eq!(singularize_class("phones"), "phone");
        assert_eq!(singularize_class("Phone companies"), "phone_company");
    }

    #[test]
    fn singularize_is_safe_on_degenerate_input() {
        assert_eq!(singularize_class("s"), "s");
        assert_eq!(singularize_class(""), "");
    }

    #[test]
    fn eval_set_deduplicates() {
        let a = InstanceAssertion { entity: "E".into(), class: "c".into() };
        let set = to_eval_set(&[a.clone(), a]);
        assert_eq!(set.len(), 1);
    }
}
