//! Hearst-pattern harvesting: "CLASSES such as A, B and C" and
//! "A, B and other CLASSES" (Hearst 1992), the classic web-based method
//! for gathering instances of classes.

use kb_corpus::{Doc, Mention};

use super::{singularize_class, InstanceAssertion};

/// Words that terminate the class phrase after "and other".
const PHRASE_TERMINATORS: [&str; 8] =
    ["appear", "are", "is", "were", "have", "can", "attract", "remain"];

/// Harvests instance assertions from both Hearst patterns over a
/// document collection. Entity grounding uses the documents' mention
/// annotations (the anchor-text signal of real Wikipedia).
pub fn harvest_hearst<'a>(
    docs: &[&Doc],
    canonical_of: impl Fn(kb_corpus::EntityId) -> &'a str,
) -> Vec<InstanceAssertion> {
    let mut out = Vec::new();
    for doc in docs {
        harvest_such_as(doc, &canonical_of, &mut out);
        harvest_and_other(doc, &canonical_of, &mut out);
    }
    out.sort_by(|a, b| (&a.entity, &a.class).cmp(&(&b.entity, &b.class)));
    out.dedup();
    out
}

/// "CLASSES such as A, B and C ..." — the class phrase precedes the cue,
/// the instances follow it until the sentence ends.
fn harvest_such_as<'a>(
    doc: &Doc,
    canonical_of: &impl Fn(kb_corpus::EntityId) -> &'a str,
    out: &mut Vec<InstanceAssertion>,
) {
    for cue in find_all(&doc.text, " such as ") {
        let Some(class) = class_phrase_before(&doc.text, cue) else { continue };
        let enum_start = cue + " such as ".len();
        let enum_end =
            doc.text[enum_start..].find('.').map(|p| enum_start + p).unwrap_or(doc.text.len());
        for m in mentions_in(doc, enum_start, enum_end) {
            out.push(InstanceAssertion {
                entity: canonical_of(m.entity).to_string(),
                class: class.clone(),
            });
        }
    }
}

/// "A, B and other CLASSES ..." — the instances precede the cue within
/// the sentence, the class phrase follows it.
fn harvest_and_other<'a>(
    doc: &Doc,
    canonical_of: &impl Fn(kb_corpus::EntityId) -> &'a str,
    out: &mut Vec<InstanceAssertion>,
) {
    for cue in find_all(&doc.text, " and other ") {
        let after = &doc.text[cue + " and other ".len()..];
        let Some(class) = class_phrase_after(after) else { continue };
        // Sentence start: position after the previous period.
        let sent_start = doc.text[..cue].rfind('.').map(|p| p + 1).unwrap_or(0);
        for m in mentions_in(doc, sent_start, cue) {
            out.push(InstanceAssertion {
                entity: canonical_of(m.entity).to_string(),
                class: class.clone(),
            });
        }
    }
}

/// All byte offsets where `needle` occurs in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

/// Mentions fully inside `[start, end)`.
fn mentions_in(doc: &Doc, start: usize, end: usize) -> impl Iterator<Item = &Mention> {
    doc.mentions.iter().filter(move |m| m.start >= start && m.end <= end)
}

/// Extracts the class phrase (up to two words) immediately before byte
/// offset `pos`, stopping at sentence boundaries. Returns the
/// normalized singular class.
fn class_phrase_before(text: &str, pos: usize) -> Option<String> {
    let before = &text[..pos];
    let sent_start = before.rfind('.').map(|p| p + 1).unwrap_or(0);
    let words: Vec<&str> = before[sent_start..].split_whitespace().collect();
    match words.len() {
        0 => None,
        1 => Some(singularize_class(words[0])),
        _ => {
            let last_two = format!("{} {}", words[words.len() - 2], words[words.len() - 1]);
            // Prefer the two-word phrase when the first word is a plain
            // lowercase modifier or a capitalized phrase-initial word
            // ("Phone companies"); otherwise the head alone.
            if words.len() == 2 || words[words.len() - 2].chars().all(char::is_alphanumeric) {
                Some(singularize_class(&last_two))
            } else {
                Some(singularize_class(words[words.len() - 1]))
            }
        }
    }
}

/// Extracts the class phrase following "and other": words until a
/// terminator verb or punctuation, capped at two words.
fn class_phrase_after(after: &str) -> Option<String> {
    let mut words = Vec::new();
    for w in after.split_whitespace() {
        let clean = w.trim_matches(|c: char| !c.is_alphanumeric());
        if clean.is_empty() || PHRASE_TERMINATORS.contains(&clean) {
            break;
        }
        words.push(clean);
        if words.len() == 2 {
            // Peek: if the next word is a terminator, the 2-word phrase
            // stands; otherwise keep only the head... two words is our cap
            // either way.
            break;
        }
        if w.ends_with('.') || w.ends_with(',') {
            break;
        }
    }
    if words.is_empty() {
        None
    } else {
        Some(singularize_class(&words.join(" ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::doc::TextBuilder;
    use kb_corpus::{DocKind, EntityId};

    fn doc_with(text_parts: &[(&str, Option<u32>)]) -> Doc {
        let mut b = TextBuilder::new();
        for (s, ent) in text_parts {
            match ent {
                Some(id) => b.push_mention(s, EntityId(*id)),
                None => b.push(s),
            }
        }
        let (text, mentions) = b.finish();
        Doc {
            id: 0,
            kind: DocKind::Overview,
            title: "t".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        }
    }

    fn names(id: kb_corpus::EntityId) -> &'static str {
        match id.0 {
            1 => "Lundholm",
            2 => "Torberg",
            3 => "Stavby",
            _ => "Other",
        }
    }

    #[test]
    fn such_as_pattern_yields_instances() {
        let doc = doc_with(&[
            ("Cities such as ", None),
            ("Lundholm", Some(1)),
            (", ", None),
            ("Torberg", Some(2)),
            (" and ", None),
            ("Stavby", Some(3)),
            (" are widely known. ", None),
        ]);
        let found = harvest_hearst(&[&doc], |id| names(id));
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|a| a.class == "city"));
        assert!(found.iter().any(|a| a.entity == "Lundholm"));
    }

    #[test]
    fn and_other_pattern_yields_instances() {
        let doc = doc_with(&[
            ("Reports mention ", None),
            ("Lundholm", Some(1)),
            (" and ", None),
            ("Torberg", Some(2)),
            (" and other cities appear in many reports. ", None),
        ]);
        let found = harvest_hearst(&[&doc], |id| names(id));
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|a| a.class == "city"));
    }

    #[test]
    fn two_word_class_phrases_become_compounds() {
        let doc = doc_with(&[
            ("Phone companies such as ", None),
            ("Lundholm", Some(1)),
            (" are widely known. ", None),
        ]);
        let found = harvest_hearst(&[&doc], |id| names(id));
        assert_eq!(found[0].class, "phone_company");
    }

    #[test]
    fn instances_outside_the_sentence_are_not_caught() {
        let doc = doc_with(&[
            ("Unrelated ", None),
            ("Stavby", Some(3)),
            (" fact. Cities such as ", None),
            ("Lundholm", Some(1)),
            (" are widely known. ", None),
            ("Torberg", Some(2)),
            (" is elsewhere. ", None),
        ]);
        let found = harvest_hearst(&[&doc], |id| names(id));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].entity, "Lundholm");
    }

    #[test]
    fn no_patterns_no_output() {
        let doc = doc_with(&[
            ("Just a plain sentence about ", None),
            ("Lundholm", Some(1)),
            (". ", None),
        ]);
        assert!(harvest_hearst(&[&doc], |id| names(id)).is_empty());
    }

    #[test]
    fn works_on_generated_overviews() {
        use kb_corpus::{gold, Corpus, CorpusConfig};
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let world = &corpus.world;
        let docs: Vec<&Doc> = corpus.overviews.iter().collect();
        let found = harvest_hearst(&docs, |id| world.entity(id).canonical.as_str());
        assert!(!found.is_empty());
        let predicted = super::super::to_eval_set(&found);
        let gold_set = gold::gold_instance_strings(world);
        let m = gold::pr_f1(&predicted, &gold_set);
        assert!(m.precision > 0.8, "precision {}", m.precision);
    }
}
