//! Merging class evidence and inducing subclass edges.
//!
//! Instance assertions from the three harvesters (categories, Hearst,
//! set expansion) are merged with per-method confidence weights; then
//! subclass edges are induced by *instance-set subsumption*: class A is
//! proposed as a subclass of class B when nearly all of A's instances
//! are also instances of B and A is strictly smaller.

use std::collections::{HashMap, HashSet};

use kb_store::{KnowledgeBase, StoreError};

use super::InstanceAssertion;

/// A merged instance assertion with combined confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedInstance {
    /// Canonical entity name.
    pub entity: String,
    /// Class name.
    pub class: String,
    /// Combined confidence (noisy-or over method confidences).
    pub confidence: f64,
}

/// Merges assertion lists with per-list confidences. Duplicate
/// `(entity, class)` pairs combine by noisy-or.
pub fn merge_instances(sources: &[(&[InstanceAssertion], f64)]) -> Vec<MergedInstance> {
    let mut merged: HashMap<(String, String), f64> = HashMap::new();
    for (assertions, conf) in sources {
        // Within one source, a pair counts once.
        let distinct: HashSet<(&str, &str)> =
            assertions.iter().map(|a| (a.entity.as_str(), a.class.as_str())).collect();
        for (e, c) in distinct {
            let slot = merged.entry((e.to_string(), c.to_string())).or_insert(0.0);
            *slot = 1.0 - (1.0 - *slot) * (1.0 - conf);
        }
    }
    let mut out: Vec<MergedInstance> = merged
        .into_iter()
        .map(|((entity, class), confidence)| MergedInstance { entity, class, confidence })
        .collect();
    out.sort_by(|a, b| (&a.entity, &a.class).cmp(&(&b.entity, &b.class)));
    out
}

/// Induces subclass edges by instance-set subsumption.
///
/// `A ⊂ B` is proposed when `|inst(A) ∩ inst(B)| / |inst(A)| ≥
/// min_containment`, `|inst(A)| ≥ min_instances`, and `|inst(A)| <
/// |inst(B)|`. Only the most specific containing classes are kept (no
/// shortcut edges to grandparents that a chain already implies).
pub fn induce_subclasses(
    instances: &[MergedInstance],
    min_containment: f64,
    min_instances: usize,
) -> Vec<(String, String)> {
    let mut members: HashMap<&str, HashSet<&str>> = HashMap::new();
    for i in instances {
        members.entry(i.class.as_str()).or_default().insert(i.entity.as_str());
    }
    let classes: Vec<&str> = {
        let mut v: Vec<&str> = members.keys().copied().collect();
        v.sort_unstable();
        v
    };
    let mut raw: Vec<(String, String)> = Vec::new();
    for &a in &classes {
        let ia = &members[a];
        if ia.len() < min_instances {
            continue;
        }
        for &b in &classes {
            if a == b {
                continue;
            }
            let ib = &members[b];
            if ia.len() >= ib.len() {
                continue;
            }
            let inter = ia.intersection(ib).count();
            if inter as f64 / ia.len() as f64 >= min_containment {
                raw.push((a.to_string(), b.to_string()));
            }
        }
    }
    // Transitive reduction: drop (a, c) when some (a, b) and (b, c) exist.
    let set: HashSet<(String, String)> = raw.iter().cloned().collect();
    raw.retain(|(a, c)| {
        !set.iter().any(|(x, b)| x == a && b != c && set.contains(&(b.clone(), c.clone())))
    });
    raw.sort();
    raw
}

/// Loads merged instances and subclass edges into a knowledge base:
/// `instanceOf` facts with their confidences, plus taxonomy edges.
/// Cycle-rejected edges are skipped (returned count reflects applied
/// edges).
pub fn load_into_kb(
    kb: &mut KnowledgeBase,
    instances: &[MergedInstance],
    subclass_edges: &[(String, String)],
    source: &str,
) -> Result<usize, StoreError> {
    let src = kb.register_source(source);
    let instance_of = kb.intern("instanceOf");
    for i in instances {
        let e = kb.intern(&i.entity);
        let c = kb.intern(&i.class);
        kb.taxonomy.add_class(c);
        kb.add_fact(kb_store::Fact {
            triple: kb_store::Triple::new(e, instance_of, c),
            confidence: i.confidence,
            source: src,
            span: None,
        });
    }
    let mut applied = 0;
    for (sub, sup) in subclass_edges {
        let s = kb.intern(sub);
        let p = kb.intern(sup);
        match kb.taxonomy.add_subclass(s, p) {
            Ok(true) => applied += 1,
            Ok(false) => {}
            Err(StoreError::TaxonomyCycle { .. }) => {} // induced noise; skip
            Err(e) => return Err(e),
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KbRead;

    fn ia(e: &str, c: &str) -> InstanceAssertion {
        InstanceAssertion { entity: e.into(), class: c.into() }
    }

    #[test]
    fn merge_combines_by_noisy_or() {
        let a = [ia("E", "c")];
        let b = [ia("E", "c"), ia("F", "c")];
        let merged = merge_instances(&[(&a, 0.5), (&b, 0.5)]);
        let e = merged.iter().find(|m| m.entity == "E").unwrap();
        assert!((e.confidence - 0.75).abs() < 1e-12);
        let f = merged.iter().find(|m| m.entity == "F").unwrap();
        assert!((f.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_within_one_source_count_once() {
        let a = [ia("E", "c"), ia("E", "c")];
        let merged = merge_instances(&[(&a, 0.6)]);
        assert_eq!(merged.len(), 1);
        assert!((merged[0].confidence - 0.6).abs() < 1e-12);
    }

    #[test]
    fn subsumption_induces_the_right_direction() {
        // entrepreneurs {A, B} ⊂ people {A, B, C, D}
        let mut inst = Vec::new();
        for e in ["A", "B"] {
            inst.push(MergedInstance {
                entity: e.into(),
                class: "entrepreneur".into(),
                confidence: 1.0,
            });
        }
        for e in ["A", "B", "C", "D"] {
            inst.push(MergedInstance { entity: e.into(), class: "person".into(), confidence: 1.0 });
        }
        let edges = induce_subclasses(&inst, 0.9, 2);
        assert_eq!(edges, vec![("entrepreneur".to_string(), "person".to_string())]);
    }

    #[test]
    fn partial_overlap_below_threshold_is_rejected() {
        let mut inst = Vec::new();
        for e in ["A", "B", "X"] {
            inst.push(MergedInstance { entity: e.into(), class: "small".into(), confidence: 1.0 });
        }
        for e in ["A", "B", "C", "D"] {
            inst.push(MergedInstance { entity: e.into(), class: "big".into(), confidence: 1.0 });
        }
        // containment 2/3 < 0.9
        assert!(induce_subclasses(&inst, 0.9, 2).is_empty());
        // but a lax threshold accepts it
        assert_eq!(induce_subclasses(&inst, 0.6, 2).len(), 1);
    }

    #[test]
    fn transitive_reduction_drops_shortcuts() {
        // a ⊂ b ⊂ c with full containment; (a, c) must be reduced away.
        let mut inst = Vec::new();
        for e in ["1", "2"] {
            inst.push(MergedInstance { entity: e.into(), class: "a".into(), confidence: 1.0 });
        }
        for e in ["1", "2", "3"] {
            inst.push(MergedInstance { entity: e.into(), class: "b".into(), confidence: 1.0 });
        }
        for e in ["1", "2", "3", "4"] {
            inst.push(MergedInstance { entity: e.into(), class: "c".into(), confidence: 1.0 });
        }
        let edges = induce_subclasses(&inst, 0.9, 2);
        assert!(edges.contains(&("a".to_string(), "b".to_string())));
        assert!(edges.contains(&("b".to_string(), "c".to_string())));
        assert!(!edges.contains(&("a".to_string(), "c".to_string())), "shortcut kept: {edges:?}");
    }

    #[test]
    fn load_into_kb_populates_taxonomy_and_facts() {
        let mut kb = KnowledgeBase::new();
        let inst = vec![
            MergedInstance { entity: "E".into(), class: "entrepreneur".into(), confidence: 0.9 },
            MergedInstance { entity: "E".into(), class: "person".into(), confidence: 0.8 },
        ];
        let edges = vec![("entrepreneur".to_string(), "person".to_string())];
        let applied = load_into_kb(&mut kb, &inst, &edges, "taxonomy").unwrap();
        assert_eq!(applied, 1);
        assert_eq!(kb.len(), 2);
        let ent = kb.term("entrepreneur").unwrap();
        let person = kb.term("person").unwrap();
        assert!(kb.taxonomy.is_subclass_of(ent, person));
    }

    #[test]
    fn load_skips_cycle_inducing_edges() {
        let mut kb = KnowledgeBase::new();
        let edges = vec![("a".to_string(), "b".to_string()), ("b".to_string(), "a".to_string())];
        let applied = load_into_kb(&mut kb, &[], &edges, "t").unwrap();
        assert_eq!(applied, 1, "second edge closes a cycle and is skipped");
    }
}
