//! Set expansion (SEAL/KnowItAll style): grow a seed set of a class by
//! finding entities that co-occur with the seeds in enumeration
//! contexts ("Popular cities include A, B, C and D").

use std::collections::{HashMap, HashSet};

use kb_corpus::Doc;

/// An enumeration group: entities listed together in one document.
pub type EnumGroup = Vec<String>;

/// Extracts enumeration groups from a document: maximal runs of
/// mentions separated only by list glue (`", "`, `" and "`, `" or "`).
pub fn enumeration_groups<'a>(
    doc: &Doc,
    canonical_of: &impl Fn(kb_corpus::EntityId) -> &'a str,
) -> Vec<EnumGroup> {
    let mut groups = Vec::new();
    let mut current: EnumGroup = Vec::new();
    for window in doc.mentions.windows(2) {
        let (a, b) = (&window[0], &window[1]);
        let gap = &doc.text[a.end..b.start.min(doc.text.len()).max(a.end)];
        let is_glue = {
            let g = gap.trim();
            g == "," || g == "and" || g == "or" || g == ", and" || g == ", or"
        };
        if is_glue {
            if current.is_empty() {
                current.push(canonical_of(a.entity).to_string());
            }
            current.push(canonical_of(b.entity).to_string());
        } else if !current.is_empty() {
            groups.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// A ranked expansion candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionCandidate {
    /// Canonical entity name.
    pub entity: String,
    /// Number of enumeration groups shared with at least one seed.
    pub shared_lists: usize,
    /// Score in `[0, 1]`: shared lists over the candidate's total lists.
    pub score: f64,
}

/// Expands `seeds` using enumeration co-occurrence across `docs`.
/// Returns candidates (seeds excluded) ranked by shared-list count, then
/// score, then name.
pub fn expand_set<'a>(
    docs: &[&Doc],
    canonical_of: impl Fn(kb_corpus::EntityId) -> &'a str,
    seeds: &HashSet<String>,
) -> Vec<ExpansionCandidate> {
    let mut shared: HashMap<String, usize> = HashMap::new();
    let mut total: HashMap<String, usize> = HashMap::new();
    for doc in docs {
        for group in enumeration_groups(doc, &canonical_of) {
            let has_seed = group.iter().any(|e| seeds.contains(e));
            for e in &group {
                *total.entry(e.clone()).or_insert(0) += 1;
                if has_seed && !seeds.contains(e) {
                    *shared.entry(e.clone()).or_insert(0) += 1;
                }
            }
        }
    }
    let mut out: Vec<ExpansionCandidate> = shared
        .into_iter()
        .map(|(entity, shared_lists)| {
            let t = total[&entity].max(1);
            ExpansionCandidate { score: shared_lists as f64 / t as f64, entity, shared_lists }
        })
        .collect();
    out.sort_by(|a, b| {
        b.shared_lists
            .cmp(&a.shared_lists)
            .then(b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.entity.cmp(&b.entity))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::doc::TextBuilder;
    use kb_corpus::{DocKind, EntityId};

    fn list_doc(ids: &[&[u32]]) -> Doc {
        let mut b = TextBuilder::new();
        for group in ids {
            b.push("Popular things include ");
            for (i, &id) in group.iter().enumerate() {
                if i > 0 {
                    if i + 1 == group.len() {
                        b.push(" and ");
                    } else {
                        b.push(", ");
                    }
                }
                b.push_mention(&format!("E{id}"), EntityId(id));
            }
            b.push(". ");
        }
        let (text, mentions) = b.finish();
        Doc {
            id: 0,
            kind: DocKind::Overview,
            title: "lists".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        }
    }

    fn name_of(id: EntityId) -> String {
        format!("E{}", id.0)
    }

    #[test]
    fn groups_split_on_non_glue_text() {
        let doc = list_doc(&[&[1, 2, 3], &[4, 5]]);
        let leak = name_of; // keep closure lifetime simple
        let groups = enumeration_groups(&doc, &|id| Box::leak(leak(id).into_boxed_str()) as &str);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec!["E1", "E2", "E3"]);
        assert_eq!(groups[1], vec!["E4", "E5"]);
    }

    #[test]
    fn expansion_finds_co_listed_entities() {
        let doc = list_doc(&[&[1, 2, 3], &[1, 4], &[5, 6]]);
        let seeds: HashSet<String> = ["E1".to_string()].into_iter().collect();
        let found =
            expand_set(&[&doc], |id| Box::leak(name_of(id).into_boxed_str()) as &str, &seeds);
        let names: Vec<&str> = found.iter().map(|c| c.entity.as_str()).collect();
        assert!(names.contains(&"E2"));
        assert!(names.contains(&"E4"));
        assert!(!names.contains(&"E5"), "E5 never co-occurs with the seed");
        assert!(!names.contains(&"E1"), "seeds are excluded");
    }

    #[test]
    fn candidates_are_ranked_by_shared_lists() {
        let doc = list_doc(&[&[1, 2], &[1, 2, 3], &[1, 3], &[2, 9]]);
        let seeds: HashSet<String> = ["E1".to_string()].into_iter().collect();
        let found =
            expand_set(&[&doc], |id| Box::leak(name_of(id).into_boxed_str()) as &str, &seeds);
        // E2 and E3 both share 2 lists with the seed; E3 wins the tie on
        // score (2/2 vs 2/3 of its lists shared).
        assert_eq!(found[0].entity, "E3");
        assert_eq!(found[0].shared_lists, 2);
        assert!((found[0].score - 1.0).abs() < 1e-12);
        let e2 = found.iter().find(|c| c.entity == "E2").unwrap();
        assert!((e2.score - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_on_generated_overviews_recovers_class_members() {
        use kb_corpus::{Corpus, CorpusConfig, EntityKind};
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let world = &corpus.world;
        let docs: Vec<&Doc> = corpus.overviews.iter().collect();
        // Seed with two cities; expansion should surface mostly cities.
        let mut cities = world.of_kind(EntityKind::City);
        let seeds: HashSet<String> = cities.by_ref().take(2).map(|e| e.canonical.clone()).collect();
        let found = expand_set(&docs, |id| world.entity(id).canonical.as_str(), &seeds);
        if found.is_empty() {
            // Tiny corpora may not co-list the seeds; acceptable.
            return;
        }
        let top: Vec<_> = found.iter().take(5).collect();
        let city_hits = top
            .iter()
            .filter(|c| world.by_canonical(&c.entity).is_some_and(|e| e.kind == EntityKind::City))
            .count();
        assert!(city_hits * 2 >= top.len(), "top-5 should be mostly cities");
    }
}
