//! Category-string analysis (WikiTaxonomy / YAGO style).
//!
//! Wikipedia's category system mixes *class* categories ("American
//! entrepreneurs") with *relational* categories ("People born in
//! Lundholm"). The classic heuristic (Ponzetto & Strube 2007; Suchanek
//! et al. 2007): take the plural head noun of the category name as a
//! class candidate, but only when the category is a genuine class
//! category — relational ones are recognized by prepositional phrases
//! after the head ("born in", "headquartered in", "in `<Place>`").

use kb_corpus::Doc;

use super::{singularize_class, InstanceAssertion};

/// A parsed category string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedCategory {
    /// A class category: the entity is an instance of `class`; if a
    /// modifier formed a compound, `parent` holds the bare head class.
    Class {
        /// Normalized class name ("entrepreneur", "phone_company").
        class: String,
        /// The bare head class when `class` is a compound
        /// ("phone_company" → "company").
        parent: Option<String>,
    },
    /// A relational category ("People born in X"). Its *head noun*
    /// still types the instance (a member of "People born in X" is a
    /// person) — the WikiTaxonomy refinement that recovers the coarse
    /// kind classes.
    Relational {
        /// The head class, when the head noun precedes the preposition
        /// ("people", "companies", "cities").
        head: Option<String>,
    },
}

/// Nationality-adjective suffixes produced by the corpus generator; such
/// modifiers describe the instance, not a subclass ("Valdorian
/// entrepreneurs" are entrepreneurs, not a class `valdorian_entrepreneur`).
const NATIONALITY_SUFFIXES: [&str; 3] = ["ian", "landic", "ese"];

fn is_nationality_adjective(word: &str) -> bool {
    word.chars().next().is_some_and(|c| c.is_uppercase())
        && NATIONALITY_SUFFIXES.iter().any(|s| word.ends_with(s))
}

/// Parses one category string.
pub fn parse_category(cat: &str) -> ParsedCategory {
    let tokens: Vec<&str> = cat.split_whitespace().collect();
    if tokens.is_empty() {
        return ParsedCategory::Relational { head: None };
    }
    // Relational: any preposition after the head ("People born in X",
    // "Companies headquartered in X", "Cities in X"). The head noun is
    // the token before the first verb/preposition — it still types the
    // instance.
    if let Some(pos) = tokens.iter().position(|t| {
        matches!(*t, "in" | "of" | "by" | "from" | "born" | "headquartered" | "located")
    }) {
        let head = if pos >= 1 { Some(singularize_class(tokens[pos - 1])) } else { None };
        return ParsedCategory::Relational { head };
    }
    match tokens.len() {
        1 => ParsedCategory::Class { class: singularize_class(tokens[0]), parent: None },
        2 => {
            let (modifier, head) = (tokens[0], tokens[1]);
            let head_class = singularize_class(head);
            if is_nationality_adjective(modifier) {
                // Nationality modifiers don't create subclasses.
                ParsedCategory::Class { class: head_class, parent: None }
            } else {
                let compound = format!("{}_{head_class}", modifier.to_lowercase());
                ParsedCategory::Class { class: compound, parent: Some(head_class) }
            }
        }
        // Longer prepositional-free categories are rare and ambiguous;
        // treat them as relational without a usable head.
        _ => ParsedCategory::Relational { head: None },
    }
}

/// Output of category harvesting over a document collection.
#[derive(Debug, Default, Clone)]
pub struct CategoryHarvest {
    /// Harvested instanceOf assertions.
    pub instances: Vec<InstanceAssertion>,
    /// Subclass edges induced from compound categories
    /// ("phone_company" ⊂ "company").
    pub subclass_edges: Vec<(String, String)>,
}

/// Harvests instanceOf assertions and compound-class subclass edges from
/// the categories of entity articles. The article's subject is the
/// instance; its canonical name comes through the `canonical_of`
/// resolver so the harvester stays decoupled from the corpus' entity
/// table.
pub fn harvest_categories<'a>(
    docs: &[&Doc],
    canonical_of: impl Fn(kb_corpus::EntityId) -> &'a str,
) -> CategoryHarvest {
    let mut out = CategoryHarvest::default();
    for doc in docs {
        let Some(subject) = doc.subject else { continue };
        let entity = canonical_of(subject).to_string();
        for cat in &doc.categories {
            match parse_category(cat) {
                ParsedCategory::Class { class, parent } => {
                    out.instances
                        .push(InstanceAssertion { entity: entity.clone(), class: class.clone() });
                    if let Some(parent) = parent {
                        let edge = (class, parent);
                        if !out.subclass_edges.contains(&edge) {
                            out.subclass_edges.push(edge);
                        }
                    }
                }
                ParsedCategory::Relational { head: Some(head) } => {
                    out.instances.push(InstanceAssertion { entity: entity.clone(), class: head });
                }
                ParsedCategory::Relational { head: None } => {}
            }
        }
    }
    out.instances.sort_by(|a, b| (&a.entity, &a.class).cmp(&(&b.entity, &b.class)));
    out.instances.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_categories_parse_to_classes() {
        assert_eq!(
            parse_category("Entrepreneurs"),
            ParsedCategory::Class { class: "entrepreneur".into(), parent: None }
        );
        assert_eq!(
            parse_category("Countries"),
            ParsedCategory::Class { class: "country".into(), parent: None }
        );
    }

    #[test]
    fn nationality_modifiers_are_dropped() {
        assert_eq!(
            parse_category("Valdorian entrepreneurs"),
            ParsedCategory::Class { class: "entrepreneur".into(), parent: None }
        );
        assert_eq!(
            parse_category("Norlandic scientists"),
            ParsedCategory::Class { class: "scientist".into(), parent: None }
        );
    }

    #[test]
    fn compound_categories_create_subclasses() {
        assert_eq!(
            parse_category("Phone companies"),
            ParsedCategory::Class { class: "phone_company".into(), parent: Some("company".into()) }
        );
    }

    #[test]
    fn relational_categories_keep_only_their_head_class() {
        assert_eq!(
            parse_category("People born in Lundholm"),
            ParsedCategory::Relational { head: Some("person".into()) }
        );
        assert_eq!(
            parse_category("Companies headquartered in Torberg"),
            ParsedCategory::Relational { head: Some("company".into()) }
        );
        assert_eq!(
            parse_category("Cities in Norland"),
            ParsedCategory::Relational { head: Some("city".into()) }
        );
        assert_eq!(parse_category(""), ParsedCategory::Relational { head: None });
    }

    #[test]
    fn harvest_over_generated_corpus_is_high_precision() {
        use kb_corpus::{gold, Corpus, CorpusConfig};
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let world = &corpus.world;
        let docs: Vec<&Doc> = corpus.articles.iter().collect();
        let harvest = harvest_categories(&docs, |id| world.entity(id).canonical.as_str());
        assert!(!harvest.instances.is_empty());
        let predicted = super::super::to_eval_set(&harvest.instances);
        let gold_set = gold::gold_instance_strings(world);
        let m = gold::pr_f1(&predicted, &gold_set);
        assert!(m.precision > 0.95, "precision {}", m.precision);
        assert!(m.recall > 0.3, "recall {}", m.recall);
    }

    #[test]
    fn compound_edges_match_gold_taxonomy() {
        use kb_corpus::{Corpus, CorpusConfig};
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let world = &corpus.world;
        let docs: Vec<&Doc> = corpus.articles.iter().collect();
        let harvest = harvest_categories(&docs, |id| world.entity(id).canonical.as_str());
        for (sub, sup) in &harvest.subclass_edges {
            assert!(
                world.taxonomy_edges.contains(&(sub.clone(), sup.clone())),
                "induced edge {sub} ⊂ {sup} not in gold"
            );
        }
    }
}
