//! # kb-harvest
//!
//! The core contribution: automatic knowledge-base construction from
//! text — the method families surveyed in Suchanek & Weikum,
//! *Knowledge Bases in the Age of Big Data Analytics* (VLDB 2014),
//! Sections 2–3:
//!
//! * **Entities & classes** ([`taxonomy`]): category-string analysis
//!   (WikiTaxonomy-style head-noun parsing), Hearst patterns
//!   ("X such as Y"), set expansion over enumeration contexts, and
//!   subsumption-based subclass induction.
//! * **Relational facts** ([`facts`]): surface-pattern extraction with
//!   distant supervision (seed facts → patterns → new facts), plus
//!   statistical confidence aggregation.
//! * **Consistency reasoning** ([`reasoning`]): a weighted MaxSat solver
//!   enforcing functionality, inverse-functionality and type constraints
//!   over candidate facts (SOFIE-style).
//! * **Statistical inference** ([`factorgraph`]): boolean factor graphs
//!   with Gibbs-sampling marginals (DeepDive-style), an alternative
//!   joint-inference backend.
//! * **Open IE** ([`openie`]): ReVerb-style verb-phrase relation
//!   extraction with lexical-frequency constraints.
//! * **Temporal knowledge** ([`temporal`]): temporal-expression tagging
//!   and fact timespan inference (YAGO2-style).
//! * **Commonsense** ([`commonsense`]): property and part-whole mining
//!   over generic sentences.
//! * **Multilingual** ([`multilingual`]): cross-lingual label harvesting
//!   with transliteration-consistency filtering.
//! * **Rule mining** ([`rules`]): AMIE-style Horn-rule mining with
//!   PCA confidence, plus rule-based KB completion.
//! * **The pipeline** ([`pipeline`]): a multi-threaded end-to-end run
//!   over a document collection producing a populated
//!   [`kb_store::KnowledgeBase`].
//! * **Resilience** ([`resilience`]): poison-document quarantine with a
//!   dead-letter queue, deterministic retry/backoff, stage budgets and
//!   the refinement degradation ladder — web-scale noise must not kill
//!   the harvest.

pub mod commonsense;
pub mod factorgraph;
pub mod facts;
pub mod multilingual;
pub mod openie;
pub mod pipeline;
pub mod reasoning;
pub mod resilience;
pub mod rules;
pub mod taxonomy;
pub mod temporal;

pub use facts::extract::CandidateFact;
pub use pipeline::{HarvestConfig, HarvestOutput};
pub use resilience::{
    Downgrade, DowngradeReason, PipelineError, QuarantineReason, Quarantined, ResilienceConfig,
    RetryPolicy,
};
