//! Open information extraction (tutorial §3): ReVerb-style extraction of
//! arbitrary SPO triples from text, with no pre-specified relation
//! vocabulary.
//!
//! For each sentence: POS-tag, chunk, and find verb phrases; the
//! relation phrase is the VP plus an immediately following preposition
//! ("was founded" + "by"); arg1 is the nearest non-pronoun NP to the
//! left, arg2 the nearest NP to the right. Two ReVerb constraints are
//! applied:
//!
//! * **syntactic** — the relation phrase must match the V | V P | V W* P
//!   shape, which the chunker guarantees;
//! * **lexical** — the normalized relation phrase must occur with at
//!   least [`OpenIeConfig::min_distinct_pairs`] distinct argument pairs
//!   corpus-wide, pruning overly specific or garbled phrases.

use std::collections::{HashMap, HashSet};

use kb_corpus::Doc;
use kb_nlp::chunk::{chunk, Chunk, ChunkKind};
use kb_nlp::pos::{PosTag, PosTagger};
use kb_nlp::sentence::split_sentences;
use kb_nlp::stem::stem;
use kb_nlp::token::{tokenize, Token};

/// One open extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenFact {
    /// First argument (surface form of the NP, determiners stripped).
    pub arg1: String,
    /// Normalized relation phrase (lowercased, stemmed content words).
    pub relation: String,
    /// The relation phrase as written.
    pub relation_surface: String,
    /// Second argument surface form.
    pub arg2: String,
    /// Heuristic confidence in `[0, 1]`.
    pub confidence: f64,
    /// Source document.
    pub doc_id: u32,
}

/// Extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct OpenIeConfig {
    /// Lexical constraint: minimum distinct argument pairs per phrase.
    pub min_distinct_pairs: usize,
    /// Maximum tokens in a relation phrase.
    pub max_phrase_tokens: usize,
}

impl Default for OpenIeConfig {
    fn default() -> Self {
        Self { min_distinct_pairs: 2, max_phrase_tokens: 5 }
    }
}

/// Extracts raw (unfiltered) open facts from one document: the per-doc
/// map step of the pipeline. The lexical constraint needs corpus-wide
/// statistics and is applied afterwards by
/// [`apply_lexical_constraint`].
pub fn extract_raw(doc: &Doc, cfg: &OpenIeConfig) -> Vec<OpenFact> {
    let tagger = PosTagger::new();
    let mut raw: Vec<OpenFact> = Vec::new();
    for sent in split_sentences(&doc.text) {
        let text = &doc.text[sent.start..sent.end];
        let tokens = tokenize(text);
        let tags = tagger.tag(&tokens);
        let chunks = chunk(&tokens, &tags);
        raw.extend(extract_from_chunks(&tokens, &tags, &chunks, doc.id, cfg));
    }
    raw
}

/// Runs Open IE over a document collection. Extractions failing the
/// lexical constraint are dropped; survivors get frequency-aware
/// confidences. Output is sorted by descending confidence, then args.
pub fn extract_open(docs: &[&Doc], cfg: &OpenIeConfig) -> Vec<OpenFact> {
    let raw: Vec<OpenFact> = docs.iter().flat_map(|d| extract_raw(d, cfg)).collect();
    apply_lexical_constraint(raw, cfg)
}

/// Applies the corpus-wide lexical constraint and frequency-aware
/// confidences to raw extractions (the reduce step).
pub fn apply_lexical_constraint(raw: Vec<OpenFact>, cfg: &OpenIeConfig) -> Vec<OpenFact> {
    // Lexical constraint: distinct arg pairs per normalized phrase.
    let mut pairs_per_phrase: HashMap<&str, HashSet<(&str, &str)>> = HashMap::new();
    for f in &raw {
        pairs_per_phrase
            .entry(f.relation.as_str())
            .or_default()
            .insert((f.arg1.as_str(), f.arg2.as_str()));
    }
    let phrase_freq: HashMap<String, usize> =
        pairs_per_phrase.iter().map(|(k, v)| (k.to_string(), v.len())).collect();
    let mut out: Vec<OpenFact> = raw
        .into_iter()
        .filter(|f| phrase_freq.get(&f.relation).copied().unwrap_or(0) >= cfg.min_distinct_pairs)
        .collect();
    for f in &mut out {
        f.confidence = confidence(f, phrase_freq[&f.relation]);
    }
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (&a.arg1, &a.relation, &a.arg2).cmp(&(&b.arg1, &b.relation, &b.arg2)))
    });
    out
}

/// Extracts from one chunked sentence.
fn extract_from_chunks(
    tokens: &[Token],
    tags: &[PosTag],
    chunks: &[Chunk],
    doc_id: u32,
    cfg: &OpenIeConfig,
) -> Vec<OpenFact> {
    let mut out = Vec::new();
    for (ci, c) in chunks.iter().enumerate() {
        if c.kind != ChunkKind::Vp {
            continue;
        }
        // Relation phrase: VP tokens plus a following preposition.
        let mut rel_end = c.end;
        if rel_end < tags.len() && tags[rel_end] == PosTag::Preposition {
            rel_end += 1;
        }
        if rel_end - c.start > cfg.max_phrase_tokens {
            continue;
        }
        // arg1: nearest preceding NP with a non-pronoun head.
        let arg1 = chunks[..ci]
            .iter()
            .rev()
            .find(|x| x.kind == ChunkKind::Np && tags[x.head] != PosTag::Pronoun);
        // arg2: nearest NP starting at or after rel_end.
        let arg2 = chunks[ci + 1..].iter().find(|x| x.kind == ChunkKind::Np && x.start >= rel_end);
        let (Some(a1), Some(a2)) = (arg1, arg2) else { continue };
        // arg2 must be adjacent to the relation phrase (no stray tokens).
        if a2.start != rel_end {
            continue;
        }
        let surface: String =
            tokens[c.start..rel_end].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
        let normalized = normalize_phrase(tokens, tags, c.start, rel_end);
        if normalized.is_empty() {
            continue;
        }
        out.push(OpenFact {
            arg1: np_surface(tokens, tags, a1),
            relation: normalized,
            relation_surface: surface,
            arg2: np_surface(tokens, tags, a2),
            confidence: 0.5,
            doc_id,
        });
    }
    out
}

/// NP surface with leading determiners stripped.
fn np_surface(tokens: &[Token], tags: &[PosTag], np: &Chunk) -> String {
    let mut start = np.start;
    while start < np.end && tags[start] == PosTag::Determiner {
        start += 1;
    }
    tokens[start..np.end].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ")
}

/// Normalizes a relation phrase: lowercase, stem the main verb, keep
/// auxiliaries and the trailing preposition, drop adverbs.
fn normalize_phrase(tokens: &[Token], tags: &[PosTag], start: usize, end: usize) -> String {
    let mut words = Vec::new();
    for i in start..end {
        match tags[i] {
            PosTag::Adverb => continue,
            PosTag::Verb => words.push(stem(&tokens[i].lower())),
            _ => words.push(tokens[i].lower()),
        }
    }
    words.join(" ")
}

/// Frequency-aware confidence: base 0.4, +0.1 per distinct pair up to
/// +0.4, +0.1 when both arguments look like proper names, −0.1 for long
/// phrases.
fn confidence(f: &OpenFact, distinct_pairs: usize) -> f64 {
    let mut c = 0.4 + 0.1 * (distinct_pairs.min(4) as f64);
    let proper = |s: &str| s.chars().next().is_some_and(char::is_uppercase);
    if proper(&f.arg1) && proper(&f.arg2) {
        c += 0.1;
    }
    if f.relation.split(' ').count() > 3 {
        c -= 0.1;
    }
    c.clamp(0.05, 0.99)
}

/// Groups extractions into distinct relations with pair counts — the
/// "prototypic relation phrases" view (T4 reports its size).
pub fn relation_inventory(facts: &[OpenFact]) -> Vec<(String, usize)> {
    let mut pairs: HashMap<&str, HashSet<(&str, &str)>> = HashMap::new();
    for f in facts {
        pairs.entry(f.relation.as_str()).or_default().insert((f.arg1.as_str(), f.arg2.as_str()));
    }
    let mut out: Vec<(String, usize)> =
        pairs.into_iter().map(|(k, v)| (k.to_string(), v.len())).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::doc::TextBuilder;
    use kb_corpus::DocKind;

    fn doc_from(text: &str) -> Doc {
        let mut b = TextBuilder::new();
        b.push(text);
        let (text, mentions) = b.finish();
        Doc {
            id: 1,
            kind: DocKind::Web,
            title: "t".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        }
    }

    fn lax() -> OpenIeConfig {
        OpenIeConfig { min_distinct_pairs: 1, max_phrase_tokens: 5 }
    }

    #[test]
    fn extracts_simple_svo() {
        let d = doc_from("Jobs founded Apple.");
        let facts = extract_open(&[&d], &lax());
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].arg1, "Jobs");
        assert_eq!(facts[0].relation, "found"); // stemmed "founded"
        assert_eq!(facts[0].arg2, "Apple");
    }

    #[test]
    fn verb_plus_preposition_phrases() {
        let d = doc_from("Varen was born in Lundholm.");
        let facts = extract_open(&[&d], &lax());
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].relation, "was born in");
        assert_eq!(facts[0].relation_surface, "was born in");
        assert_eq!(facts[0].arg2, "Lundholm");
    }

    #[test]
    fn determiners_are_stripped_from_args() {
        let d = doc_from("The company released the Strato 3.");
        let facts = extract_open(&[&d], &lax());
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].arg1, "company");
        assert_eq!(facts[0].arg2, "Strato 3");
    }

    #[test]
    fn pronoun_subjects_are_skipped_for_arg1() {
        // "He" is a pronoun; nearest non-pronoun NP to the left is absent.
        let d = doc_from("He founded Apple.");
        let facts = extract_open(&[&d], &lax());
        assert!(facts.is_empty());
    }

    #[test]
    fn adverbs_are_dropped_in_normalization() {
        let d1 = doc_from("Apple was originally based in Cupertino.");
        let d2 = doc_from("Nimbus was based in Lundholm.");
        let facts = extract_open(
            &[&d1, &d2],
            &OpenIeConfig { min_distinct_pairs: 2, max_phrase_tokens: 5 },
        );
        // Both normalize to the same phrase, satisfying the constraint.
        assert_eq!(facts.len(), 2);
        assert!(facts.iter().all(|f| f.relation == "was base in"));
    }

    #[test]
    fn lexical_constraint_prunes_one_off_phrases() {
        let d = doc_from("Jobs flurbicated Apple.");
        let strict = OpenIeConfig { min_distinct_pairs: 2, max_phrase_tokens: 5 };
        assert!(extract_open(&[&d], &strict).is_empty());
        assert_eq!(extract_open(&[&d], &lax()).len(), 1);
    }

    #[test]
    fn confidence_rises_with_distinct_pairs() {
        let docs: Vec<Doc> =
            (0..4).map(|i| doc_from(&format!("Alpha{i} employs Beta{i}."))).collect();
        let refs: Vec<&Doc> = docs.iter().collect();
        let many = extract_open(&refs, &lax());
        let single = extract_open(&refs[..1], &lax());
        assert!(many[0].confidence > single[0].confidence);
    }

    #[test]
    fn long_gap_between_phrase_and_arg2_is_rejected() {
        // "said that the market" — arg2 NP is not adjacent to the VP.
        let d = doc_from("Jobs said that maybe perhaps possibly the market grew.");
        let facts = extract_open(&[&d], &lax());
        assert!(facts.iter().all(|f| f.relation != "said that"));
    }

    #[test]
    fn relation_inventory_counts_distinct_pairs() {
        let d1 = doc_from("Alan works at Acme. Bea works at Zeta.");
        let facts = extract_open(&[&d1], &lax());
        let inv = relation_inventory(&facts);
        let works = inv.iter().find(|(r, _)| r == "work at").unwrap();
        assert_eq!(works.1, 2);
    }

    #[test]
    fn runs_on_generated_corpus() {
        use kb_corpus::{Corpus, CorpusConfig};
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let docs = corpus.all_docs();
        let facts = extract_open(&docs, &OpenIeConfig::default());
        assert!(!facts.is_empty(), "open IE should fire on the corpus");
        // Well-formed: non-empty args and relations.
        for f in &facts {
            assert!(!f.arg1.is_empty() && !f.arg2.is_empty() && !f.relation.is_empty());
            assert!((0.0..=1.0).contains(&f.confidence));
        }
    }
}
