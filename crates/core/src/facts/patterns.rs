//! Pattern-occurrence collection: the raw material of pattern-based
//! fact harvesting.
//!
//! For every sentence and every ordered pair of entity mentions in it
//! (bounded gap), we record the normalized *infix* — the word tokens
//! between the two mentions — together with temporal hints found in the
//! sentence. `"Jobs founded Apple in 1976."` yields the occurrence
//! `(Jobs, "founded", Apple)` with begin-hint 1976.

use kb_corpus::Doc;
use kb_nlp::sentence::split_sentences;
use kb_nlp::token::{tokenize, TokenKind};

/// A normalized surface pattern: the infix word sequence between the
/// two arguments. The *subject-first* orientation is part of the key:
/// `"founded"` (S before O) and `"was founded by"` (O before S, i.e.
/// `reversed`) are distinct patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternKey {
    /// Lowercased infix words joined by spaces.
    pub infix: String,
    /// Whether the *second* mention in text order is the pattern's
    /// logical first argument (passive voice etc.). At collection time
    /// this is always `false`; the distant-supervision step learns each
    /// pattern in both orientations.
    pub reversed: bool,
}

/// A temporal hint found in the occurrence's sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeHint {
    /// Begin year, if stated.
    pub begin: Option<i32>,
    /// End year, if stated ("from A to B").
    pub end: Option<i32>,
}

/// One co-occurrence of two entity mentions in a sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternOccurrence {
    /// Document id.
    pub doc_id: u32,
    /// Canonical name of the first mention (text order).
    pub first: String,
    /// Canonical name of the second mention (text order).
    pub second: String,
    /// The normalized infix pattern.
    pub pattern: PatternKey,
    /// Temporal hint from the same sentence, if any.
    pub hint: Option<TimeHint>,
}

/// Collection parameters.
#[derive(Debug, Clone, Copy)]
pub struct CollectConfig {
    /// Maximum number of infix tokens between the two mentions.
    pub max_gap: usize,
    /// Maximum mention pairs per sentence (guards pathological lists).
    pub max_pairs_per_sentence: usize,
}

impl Default for CollectConfig {
    fn default() -> Self {
        Self { max_gap: 8, max_pairs_per_sentence: 24 }
    }
}

/// Collects all pattern occurrences from one document.
pub fn collect_occurrences<'a>(
    doc: &Doc,
    canonical_of: &impl Fn(kb_corpus::EntityId) -> &'a str,
    cfg: &CollectConfig,
) -> Vec<PatternOccurrence> {
    let mut out = Vec::new();
    for sent in split_sentences(&doc.text) {
        let sentence = &doc.text[sent.start..sent.end];
        // Mentions inside this sentence, in text order.
        let mentions: Vec<_> =
            doc.mentions.iter().filter(|m| m.start >= sent.start && m.end <= sent.end).collect();
        if mentions.len() < 2 {
            continue;
        }
        let hint = sentence_time_hint(sentence);
        let mut pairs = 0;
        for i in 0..mentions.len() - 1 {
            let a = mentions[i];
            let b = mentions[i + 1..].iter().find(|m| m.start >= a.end).copied();
            // Only adjacent mention pairs: the infix must not contain a
            // third mention, which would almost always break the pattern.
            let Some(b) = b else { continue };
            if a.entity == b.entity {
                continue;
            }
            let gap_text = &doc.text[a.end..b.start];
            let infix_tokens: Vec<String> = tokenize(gap_text)
                .into_iter()
                .filter(|t| t.kind == TokenKind::Word)
                .map(|t| t.lower())
                .collect();
            if infix_tokens.is_empty() || infix_tokens.len() > cfg.max_gap {
                continue;
            }
            out.push(PatternOccurrence {
                doc_id: doc.id,
                first: canonical_of(a.entity).to_string(),
                second: canonical_of(b.entity).to_string(),
                pattern: PatternKey { infix: infix_tokens.join(" "), reversed: false },
                hint,
            });
            pairs += 1;
            if pairs >= cfg.max_pairs_per_sentence {
                break;
            }
        }
    }
    out
}

/// Extracts the sentence-level temporal hint: `from Y1 to Y2` wins over
/// a bare `in Y`; the first match of each shape is used.
pub fn sentence_time_hint(sentence: &str) -> Option<TimeHint> {
    let toks = tokenize(sentence);
    // from Y1 to Y2
    for w in toks.windows(4) {
        if w[0].kind == TokenKind::Word
            && w[0].lower() == "from"
            && w[1].kind == TokenKind::Number
            && w[2].lower() == "to"
            && w[3].kind == TokenKind::Number
        {
            if let (Some(a), Some(b)) = (parse_year(&w[1].text), parse_year(&w[3].text)) {
                return Some(TimeHint { begin: Some(a), end: Some(b) });
            }
        }
    }
    // in Y
    for w in toks.windows(2) {
        if w[0].kind == TokenKind::Word && w[0].lower() == "in" && w[1].kind == TokenKind::Number {
            if let Some(y) = parse_year(&w[1].text) {
                return Some(TimeHint { begin: Some(y), end: None });
            }
        }
    }
    None
}

/// Parses a plausible year (4 digits, 1000–2999).
pub fn parse_year(text: &str) -> Option<i32> {
    if text.len() != 4 {
        return None;
    }
    let y: i32 = text.parse().ok()?;
    (1000..3000).contains(&y).then_some(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::doc::TextBuilder;
    use kb_corpus::{DocKind, EntityId};

    fn doc(parts: &[(&str, Option<u32>)]) -> Doc {
        let mut b = TextBuilder::new();
        for (s, e) in parts {
            match e {
                Some(id) => b.push_mention(s, EntityId(*id)),
                None => b.push(s),
            }
        }
        let (text, mentions) = b.finish();
        Doc {
            id: 7,
            kind: DocKind::Article,
            title: "t".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        }
    }

    fn name(id: EntityId) -> &'static str {
        ["E0", "E1", "E2", "E3"][id.0 as usize]
    }

    #[test]
    fn simple_svo_occurrence() {
        let d = doc(&[
            ("Jobs", Some(1)),
            (" founded ", None),
            ("Apple", Some(2)),
            (" in 1976. ", None),
        ]);
        let occ = collect_occurrences(&d, &|id| name(id), &CollectConfig::default());
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].first, "E1");
        assert_eq!(occ[0].second, "E2");
        assert_eq!(occ[0].pattern.infix, "founded");
        assert_eq!(occ[0].hint, Some(TimeHint { begin: Some(1976), end: None }));
    }

    #[test]
    fn passive_pattern_is_collected_verbatim() {
        let d =
            doc(&[("Apple", Some(2)), (" was founded by ", None), ("Jobs", Some(1)), (". ", None)]);
        let occ = collect_occurrences(&d, &|id| name(id), &CollectConfig::default());
        assert_eq!(occ[0].pattern.infix, "was founded by");
        assert_eq!(occ[0].first, "E2");
        assert_eq!(occ[0].second, "E1");
    }

    #[test]
    fn from_to_hint_wins() {
        let d = doc(&[
            ("A", Some(1)),
            (" worked at ", None),
            ("B", Some(2)),
            (" from 1970 to 1985. ", None),
        ]);
        let occ = collect_occurrences(&d, &|id| name(id), &CollectConfig::default());
        assert_eq!(occ[0].hint, Some(TimeHint { begin: Some(1970), end: Some(1985) }));
    }

    #[test]
    fn cross_sentence_pairs_are_not_collected() {
        let d =
            doc(&[("Jobs", Some(1)), (" retired. ", None), ("Apple", Some(2)), (" grew. ", None)]);
        let occ = collect_occurrences(&d, &|id| name(id), &CollectConfig::default());
        assert!(occ.is_empty());
    }

    #[test]
    fn gap_limit_is_enforced() {
        let filler = " very very very very very very very very very long gap ";
        let d = doc(&[("A", Some(1)), (filler, None), ("B", Some(2)), (". ", None)]);
        let cfg = CollectConfig { max_gap: 5, ..Default::default() };
        assert!(collect_occurrences(&d, &|id| name(id), &cfg).is_empty());
    }

    #[test]
    fn empty_infix_pairs_are_skipped() {
        let d = doc(&[("A", Some(1)), (", ", None), ("B", Some(2)), (". ", None)]);
        assert!(collect_occurrences(&d, &|id| name(id), &CollectConfig::default()).is_empty());
    }

    #[test]
    fn only_adjacent_mention_pairs() {
        // A founded B in C -> pairs (A,B) and (B,C), but not (A,C).
        let d = doc(&[
            ("A", Some(1)),
            (" founded ", None),
            ("B", Some(2)),
            (" in ", None),
            ("C", Some(3)),
            (". ", None),
        ]);
        let occ = collect_occurrences(&d, &|id| name(id), &CollectConfig::default());
        assert_eq!(occ.len(), 2);
        assert!(occ.iter().all(|o| !(o.first == "E1" && o.second == "E3")));
    }

    #[test]
    fn same_entity_pairs_are_skipped() {
        let d = doc(&[("A", Some(1)), (" loves ", None), ("A", Some(1)), (". ", None)]);
        assert!(collect_occurrences(&d, &|id| name(id), &CollectConfig::default()).is_empty());
    }

    #[test]
    fn year_parser_bounds() {
        assert_eq!(parse_year("1976"), Some(1976));
        assert_eq!(parse_year("0999"), None);
        assert_eq!(parse_year("12345"), None);
        assert_eq!(parse_year("19a6"), None);
    }
}
