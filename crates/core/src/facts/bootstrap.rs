//! NELL-style bootstrapping: iterate the distant-supervision loop,
//! promoting high-confidence extractions into the seed set so that the
//! next round learns more patterns ("never-ending" coupled learning,
//! tutorial §2's NELL entry).
//!
//! Bootstrapping buys recall (new paraphrase patterns become learnable
//! once their facts are seeded) at the risk of *semantic drift* (one
//! wrong promotion teaches wrong patterns). The promotion threshold and
//! the type-checking refinement keep drift in check; experiment F6
//! traces precision/recall per round.

use std::collections::HashSet;

use super::distant::{self, FactKey, PatternModel, TrainConfig};
use super::extract::{self, CandidateFact, ExtractConfig};
use super::patterns::PatternOccurrence;
use super::scoring::{self, ScoreConfig, TypeIndex};

/// Bootstrapping parameters.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Maximum rounds (round 1 = plain distant supervision).
    pub rounds: usize,
    /// Candidates at or above this confidence are promoted to seeds.
    pub promote_threshold: f64,
    /// Training parameters per round.
    pub train: TrainConfig,
    /// Extraction parameters per round.
    pub extract: ExtractConfig,
    /// Type-scoring parameters applied before promotion.
    pub score: ScoreConfig,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            rounds: 4,
            promote_threshold: 0.85,
            train: TrainConfig::default(),
            extract: ExtractConfig::default(),
            score: ScoreConfig::default(),
        }
    }
}

/// Statistics for one bootstrapping round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Seed facts available to this round.
    pub seeds: usize,
    /// (pattern, orientation, relation) entries learned.
    pub patterns: usize,
    /// Candidates extracted.
    pub candidates: usize,
    /// Newly promoted facts after this round.
    pub promoted: usize,
}

/// The bootstrap outcome.
#[derive(Debug, Clone)]
pub struct BootstrapOutcome {
    /// Final-round candidates (type-scored).
    pub candidates: Vec<CandidateFact>,
    /// The final seed set (initial + promotions).
    pub seeds: HashSet<FactKey>,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// The final pattern model.
    pub model: PatternModel,
}

/// Runs the bootstrap loop. Stops early when a round promotes nothing
/// new.
pub fn bootstrap(
    occurrences: &[PatternOccurrence],
    initial_seeds: &HashSet<FactKey>,
    types: &TypeIndex,
    cfg: &BootstrapConfig,
) -> BootstrapOutcome {
    let mut seeds = initial_seeds.clone();
    let mut rounds = Vec::new();
    let mut final_candidates = Vec::new();
    let mut final_model = PatternModel::default();
    for round in 1..=cfg.rounds.max(1) {
        let model = distant::train(occurrences, &seeds, &cfg.train);
        let mut candidates = extract::extract_candidates(occurrences, &model, &cfg.extract);
        scoring::apply_type_scoring(&mut candidates, types, &cfg.score);
        let mut promoted = 0usize;
        for c in &candidates {
            if c.confidence >= cfg.promote_threshold && seeds.insert(c.key()) {
                promoted += 1;
            }
        }
        rounds.push(RoundStats {
            round,
            seeds: seeds.len() - promoted,
            patterns: model.len(),
            candidates: candidates.len(),
            promoted,
        });
        final_candidates = candidates;
        final_model = model;
        if promoted == 0 {
            break;
        }
    }
    BootstrapOutcome { candidates: final_candidates, seeds, rounds, model: final_model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::patterns::PatternKey;

    fn occ(first: &str, infix: &str, second: &str) -> PatternOccurrence {
        PatternOccurrence {
            doc_id: 0,
            first: first.into(),
            second: second.into(),
            pattern: PatternKey { infix: infix.into(), reversed: false },
            hint: None,
        }
    }

    /// Corpus sketch: "was born in" covers seeds; the same entity pairs
    /// also appear with "hails from", which only becomes learnable once
    /// the first round's extractions are promoted.
    fn occurrences() -> Vec<PatternOccurrence> {
        let mut occs = Vec::new();
        for i in 0..6 {
            let (p, c) = (format!("P{i}"), format!("C{i}"));
            occs.push(occ(&p, "was born in", &c));
        }
        // "hails from" appears for pairs 2..6 — NOT the initial seeds.
        for i in 2..6 {
            let (p, c) = (format!("P{i}"), format!("C{i}"));
            occs.push(occ(&p, "hails from", &c));
        }
        // ...and for two pairs only "hails from" exists.
        occs.push(occ("P7", "hails from", "C7"));
        occs.push(occ("P8", "hails from", "C8"));
        occs
    }

    fn initial_seeds() -> HashSet<FactKey> {
        // Only the first two pairs are known.
        (0..2).map(|i| (format!("P{i}"), "bornIn".to_string(), format!("C{i}"))).collect()
    }

    #[test]
    fn bootstrapping_learns_second_generation_patterns() {
        let occs = occurrences();
        let seeds = initial_seeds();
        let types = TypeIndex::new();
        let cfg = BootstrapConfig { promote_threshold: 0.4, ..Default::default() };
        let out = bootstrap(&occs, &seeds, &types, &cfg);
        assert!(out.rounds.len() >= 2, "should iterate: {:?}", out.rounds);
        // The second-generation pattern eventually fires on the pairs
        // only "hails from" covers.
        let found_p7 = out
            .candidates
            .iter()
            .any(|c| c.subject == "P7" && c.relation == "bornIn" && c.object == "C7");
        assert!(found_p7, "bootstrap failed to learn 'hails from': {:?}", out.candidates);
    }

    #[test]
    fn single_round_equals_plain_distant_supervision() {
        let occs = occurrences();
        let seeds = initial_seeds();
        let types = TypeIndex::new();
        let cfg = BootstrapConfig { rounds: 1, ..Default::default() };
        let out = bootstrap(&occs, &seeds, &types, &cfg);
        assert_eq!(out.rounds.len(), 1);
        // Round 1 cannot know "hails from"-only pairs.
        assert!(!out.candidates.iter().any(|c| c.subject == "P7" && c.confidence >= 0.4));
    }

    #[test]
    fn stops_early_when_nothing_promotes() {
        let occs = occurrences();
        let seeds = initial_seeds();
        let types = TypeIndex::new();
        // Impossible promotion threshold: must stop after round 1.
        let cfg = BootstrapConfig { promote_threshold: 1.1, rounds: 10, ..Default::default() };
        let out = bootstrap(&occs, &seeds, &types, &cfg);
        assert_eq!(out.rounds.len(), 1);
        assert_eq!(out.rounds[0].promoted, 0);
        assert_eq!(out.seeds, seeds);
    }

    #[test]
    fn round_stats_are_monotone_in_seeds() {
        let occs = occurrences();
        let seeds = initial_seeds();
        let types = TypeIndex::new();
        let cfg = BootstrapConfig { promote_threshold: 0.4, ..Default::default() };
        let out = bootstrap(&occs, &seeds, &types, &cfg);
        for w in out.rounds.windows(2) {
            assert!(w[1].seeds >= w[0].seeds, "seed count must not shrink");
        }
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let out = bootstrap(&[], &HashSet::new(), &TypeIndex::new(), &BootstrapConfig::default());
        assert!(out.candidates.is_empty());
        assert_eq!(out.rounds.len(), 1);
    }
}
