//! Candidate-fact extraction: applying the learned pattern model to all
//! occurrences and aggregating evidence per candidate.

use std::collections::{HashMap, HashSet};

use super::distant::{FactKey, PatternModel};
use super::patterns::{PatternOccurrence, TimeHint};

/// A candidate fact with aggregated evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateFact {
    /// Canonical subject.
    pub subject: String,
    /// Relation name.
    pub relation: String,
    /// Canonical object.
    pub object: String,
    /// Noisy-or combination of the supporting patterns' precisions.
    pub confidence: f64,
    /// Number of supporting occurrences.
    pub support: usize,
    /// Distinct supporting documents.
    pub docs: usize,
    /// Distinct supporting patterns.
    pub patterns: usize,
    /// Temporal hints gathered from supporting sentences.
    pub hints: Vec<TimeHint>,
}

impl CandidateFact {
    /// The `(s, r, o)` string key of this candidate.
    pub fn key(&self) -> FactKey {
        (self.subject.clone(), self.relation.clone(), self.object.clone())
    }
}

/// Extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExtractConfig {
    /// Patterns with per-relation precision below this never fire.
    pub min_pattern_precision: f64,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        Self { min_pattern_precision: 0.15 }
    }
}

/// Applies the model to all occurrences, producing aggregated candidate
/// facts sorted by descending confidence.
pub fn extract_candidates(
    occurrences: &[PatternOccurrence],
    model: &PatternModel,
    cfg: &ExtractConfig,
) -> Vec<CandidateFact> {
    struct Agg {
        miss_prob: f64,
        support: usize,
        docs: HashSet<u32>,
        patterns: HashSet<String>,
        hints: Vec<TimeHint>,
    }
    let mut by_key: HashMap<FactKey, Agg> = HashMap::new();
    for occ in occurrences {
        for (reversed, (s, o)) in
            [(false, (&occ.first, &occ.second)), (true, (&occ.second, &occ.first))]
        {
            let Some(stats) = model.predictions(&occ.pattern, reversed) else { continue };
            for (rel, &(precision, _)) in &stats.relations {
                if precision < cfg.min_pattern_precision {
                    continue;
                }
                let key = (s.clone(), rel.clone(), o.clone());
                let agg = by_key.entry(key).or_insert_with(|| Agg {
                    miss_prob: 1.0,
                    support: 0,
                    docs: HashSet::new(),
                    patterns: HashSet::new(),
                    hints: Vec::new(),
                });
                agg.miss_prob *= 1.0 - precision;
                agg.support += 1;
                agg.docs.insert(occ.doc_id);
                agg.patterns.insert(occ.pattern.infix.clone());
                if let Some(h) = occ.hint {
                    agg.hints.push(h);
                }
            }
        }
    }
    let mut out: Vec<CandidateFact> = by_key
        .into_iter()
        .map(|((subject, relation, object), agg)| CandidateFact {
            subject,
            relation,
            object,
            confidence: 1.0 - agg.miss_prob,
            support: agg.support,
            docs: agg.docs.len(),
            patterns: agg.patterns.len(),
            hints: agg.hints,
        })
        .collect();
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key().cmp(&b.key()))
    });
    out
}

/// Thresholds candidates into a predicted fact set for evaluation.
pub fn predicted_set(candidates: &[CandidateFact], min_confidence: f64) -> HashSet<FactKey> {
    candidates.iter().filter(|c| c.confidence >= min_confidence).map(CandidateFact::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::distant::{train, TrainConfig};
    use crate::facts::patterns::PatternKey;

    fn occ(first: &str, infix: &str, second: &str, doc: u32) -> PatternOccurrence {
        PatternOccurrence {
            doc_id: doc,
            first: first.into(),
            second: second.into(),
            pattern: PatternKey { infix: infix.into(), reversed: false },
            hint: None,
        }
    }

    fn trained_model() -> PatternModel {
        let occs = vec![
            occ("A", "was born in", "X", 0),
            occ("B", "was born in", "Y", 0),
            occ("C", "was born in", "Z", 0),
        ];
        let seeds = [
            ("A".to_string(), "bornIn".to_string(), "X".to_string()),
            ("B".to_string(), "bornIn".to_string(), "Y".to_string()),
            ("C".to_string(), "bornIn".to_string(), "Z".to_string()),
        ]
        .into_iter()
        .collect();
        train(&occs, &seeds, &TrainConfig::default())
    }

    #[test]
    fn extraction_generalizes_to_new_pairs() {
        let model = trained_model();
        let new_occs = vec![occ("D", "was born in", "W", 5)];
        let cands = extract_candidates(&new_occs, &model, &ExtractConfig::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].subject, "D");
        assert_eq!(cands[0].relation, "bornIn");
        assert_eq!(cands[0].object, "W");
        assert!(cands[0].confidence > 0.5);
    }

    #[test]
    fn repeated_evidence_raises_confidence() {
        let model = trained_model();
        let once = extract_candidates(
            &[occ("D", "was born in", "W", 1)],
            &model,
            &ExtractConfig::default(),
        );
        let thrice = extract_candidates(
            &[
                occ("D", "was born in", "W", 1),
                occ("D", "was born in", "W", 2),
                occ("D", "was born in", "W", 3),
            ],
            &model,
            &ExtractConfig::default(),
        );
        assert!(thrice[0].confidence > once[0].confidence);
        assert_eq!(thrice[0].support, 3);
        assert_eq!(thrice[0].docs, 3);
    }

    #[test]
    fn unknown_patterns_extract_nothing() {
        let model = trained_model();
        let cands = extract_candidates(
            &[occ("D", "completely novel pattern", "W", 1)],
            &model,
            &ExtractConfig::default(),
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn min_precision_gate_applies() {
        let model = trained_model();
        let strict = ExtractConfig { min_pattern_precision: 0.99 };
        let cands = extract_candidates(&[occ("D", "was born in", "W", 1)], &model, &strict);
        assert!(cands.is_empty());
    }

    #[test]
    fn predicted_set_thresholds() {
        let cands = vec![
            CandidateFact {
                subject: "A".into(),
                relation: "r".into(),
                object: "B".into(),
                confidence: 0.9,
                support: 1,
                docs: 1,
                patterns: 1,
                hints: vec![],
            },
            CandidateFact {
                subject: "C".into(),
                relation: "r".into(),
                object: "D".into(),
                confidence: 0.2,
                support: 1,
                docs: 1,
                patterns: 1,
                hints: vec![],
            },
        ];
        let set = predicted_set(&cands, 0.5);
        assert_eq!(set.len(), 1);
        assert!(set.contains(&("A".to_string(), "r".to_string(), "B".to_string())));
    }

    #[test]
    fn output_is_sorted_by_confidence() {
        let model = trained_model();
        let occs = vec![
            occ("D", "was born in", "W", 1),
            occ("E", "was born in", "V", 1),
            occ("E", "was born in", "V", 2),
        ];
        let cands = extract_candidates(&occs, &model, &ExtractConfig::default());
        assert!(cands.windows(2).all(|w| w[0].confidence >= w[1].confidence));
        assert_eq!(cands[0].subject, "E");
    }
}
