//! Statistical refinement of candidate facts with harvested type
//! information.
//!
//! The extractor alone scores a candidate only by its patterns. This
//! stage adds the entity-typing signal the tutorial's "statistical
//! learning" methods exploit: a candidate whose subject or object type
//! (as harvested by the taxonomy stage) contradicts the relation's
//! declared signature is heavily penalized; type-confirmed candidates
//! get a mild boost.

use std::collections::{HashMap, HashSet};

use super::extract::CandidateFact;
use super::relation_spec;

/// Harvested typing: entity canonical name → classes (including
/// superclasses if the caller expanded them).
pub type TypeIndex = HashMap<String, HashSet<String>>;

/// Scoring parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScoreConfig {
    /// Multiplier when a type contradicts the signature.
    pub type_violation_penalty: f64,
    /// Multiplier (applied as `1 - (1-conf)*x`) when both types confirm.
    pub type_match_boost: f64,
    /// Multiplier when entity types are unknown (no evidence either way).
    pub unknown_type_factor: f64,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        Self {
            type_violation_penalty: 0.1,
            type_match_boost: 0.5,
            // Absence of type evidence is not evidence against: leave
            // unknown-typed candidates untouched.
            unknown_type_factor: 1.0,
        }
    }
}

/// How a candidate's types relate to the relation signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeVerdict {
    /// Both argument types confirm the signature.
    Match,
    /// At least one argument has a known type that contradicts it.
    Violation,
    /// Types unknown for one or both arguments.
    Unknown,
}

/// The pairwise-disjoint top-level kind classes — declared domain
/// knowledge, like the relation signatures themselves (YAGO/SOFIE
/// declare exactly such disjointness constraints).
pub const DISJOINT_KINDS: [&str; 6] =
    ["person", "company", "city", "country", "university", "product"];

/// Checks a candidate against the declared relation signature using the
/// harvested type index.
///
/// An argument *violates* the signature only when its harvested classes
/// include a kind class that is declared disjoint with the required
/// one. Harvested classes that are not kind classes (occupations etc.)
/// carry no disjointness information, so their presence alone never
/// produces a violation — the harvested taxonomy is incomplete and
/// "not known to be a person" must not mean "not a person".
pub fn type_verdict(c: &CandidateFact, types: &TypeIndex) -> TypeVerdict {
    let Some(spec) = relation_spec(&c.relation) else {
        return TypeVerdict::Unknown;
    };
    let check = |entity: &str, required: &str| -> Option<bool> {
        let classes = types.get(entity)?;
        if classes.contains(required) {
            return Some(true);
        }
        let has_disjoint_kind =
            DISJOINT_KINDS.iter().any(|k| *k != required && classes.contains(*k));
        if has_disjoint_kind {
            Some(false)
        } else {
            None // no kind evidence either way
        }
    };
    let s = check(&c.subject, spec.domain);
    let o = check(&c.object, spec.range);
    match (s, o) {
        (Some(true), Some(true)) => TypeVerdict::Match,
        (Some(false), _) | (_, Some(false)) => TypeVerdict::Violation,
        _ => TypeVerdict::Unknown,
    }
}

/// Rescales candidate confidences in place according to their type
/// verdicts, then re-sorts by confidence.
pub fn apply_type_scoring(candidates: &mut [CandidateFact], types: &TypeIndex, cfg: &ScoreConfig) {
    for c in candidates.iter_mut() {
        match type_verdict(c, types) {
            TypeVerdict::Match => {
                c.confidence = 1.0 - (1.0 - c.confidence) * cfg.type_match_boost;
            }
            TypeVerdict::Violation => {
                c.confidence *= cfg.type_violation_penalty;
            }
            TypeVerdict::Unknown => {
                c.confidence *= cfg.unknown_type_factor;
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key().cmp(&b.key()))
    });
}

/// Builds a [`TypeIndex`] from merged taxonomy instances, expanding each
/// entity's classes through the provided subclass edges so that an
/// `entrepreneur` also counts as a `person`.
pub fn build_type_index(
    instances: &[crate::taxonomy::induce::MergedInstance],
    subclass_edges: &[(String, String)],
) -> TypeIndex {
    // class -> superclasses (direct)
    let mut up: HashMap<&str, Vec<&str>> = HashMap::new();
    for (sub, sup) in subclass_edges {
        up.entry(sub.as_str()).or_default().push(sup.as_str());
    }
    let mut index: TypeIndex = HashMap::new();
    for inst in instances {
        let classes = index.entry(inst.entity.clone()).or_default();
        // BFS through superclasses.
        let mut queue = vec![inst.class.as_str()];
        while let Some(c) = queue.pop() {
            if classes.insert(c.to_string()) {
                if let Some(sups) = up.get(c) {
                    queue.extend(sups.iter().copied());
                }
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::induce::MergedInstance;

    fn cand(s: &str, r: &str, o: &str, conf: f64) -> CandidateFact {
        CandidateFact {
            subject: s.into(),
            relation: r.into(),
            object: o.into(),
            confidence: conf,
            support: 1,
            docs: 1,
            patterns: 1,
            hints: vec![],
        }
    }

    fn types() -> TypeIndex {
        let mut t = TypeIndex::new();
        t.insert("Alan".into(), ["person"].iter().map(|s| s.to_string()).collect());
        t.insert("Lund".into(), ["city"].iter().map(|s| s.to_string()).collect());
        t.insert("AcmeCo".into(), ["company"].iter().map(|s| s.to_string()).collect());
        t
    }

    #[test]
    fn verdicts_cover_all_cases() {
        let t = types();
        assert_eq!(type_verdict(&cand("Alan", "bornIn", "Lund", 0.5), &t), TypeVerdict::Match);
        assert_eq!(
            type_verdict(&cand("AcmeCo", "bornIn", "Lund", 0.5), &t),
            TypeVerdict::Violation
        );
        assert_eq!(type_verdict(&cand("Mystery", "bornIn", "Lund", 0.5), &t), TypeVerdict::Unknown);
        assert_eq!(
            type_verdict(&cand("Alan", "unknownRel", "Lund", 0.5), &t),
            TypeVerdict::Unknown
        );
    }

    #[test]
    fn scoring_boosts_matches_and_punishes_violations() {
        let t = types();
        let mut cands = vec![
            cand("Alan", "bornIn", "Lund", 0.6),
            cand("AcmeCo", "bornIn", "Lund", 0.6),
            cand("Mystery", "bornIn", "Lund", 0.6),
        ];
        apply_type_scoring(&mut cands, &t, &ScoreConfig::default());
        let get = |s: &str| cands.iter().find(|c| c.subject == s).unwrap().confidence;
        assert!(get("Alan") > 0.6);
        assert!(get("AcmeCo") < 0.1);
        // Unknown types are left untouched by default.
        assert!((get("Mystery") - 0.6).abs() < 1e-12);
        // Sorted descending after rescoring.
        assert!(cands.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn type_index_expands_superclasses() {
        let instances = vec![MergedInstance {
            entity: "Alan".into(),
            class: "entrepreneur".into(),
            confidence: 1.0,
        }];
        let edges = vec![
            ("entrepreneur".to_string(), "person".to_string()),
            ("person".to_string(), "entity".to_string()),
        ];
        let index = build_type_index(&instances, &edges);
        let classes = &index["Alan"];
        assert!(classes.contains("entrepreneur"));
        assert!(classes.contains("person"));
        assert!(classes.contains("entity"));
    }

    #[test]
    fn type_index_handles_cycles_gracefully() {
        let instances =
            vec![MergedInstance { entity: "X".into(), class: "a".into(), confidence: 1.0 }];
        // Malformed (cyclic) edges must not hang.
        let edges = vec![("a".to_string(), "b".to_string()), ("b".to_string(), "a".to_string())];
        let index = build_type_index(&instances, &edges);
        assert!(index["X"].contains("a") && index["X"].contains("b"));
    }
}
