//! Infobox fact harvesting — the DBpedia recipe: map semi-structured
//! infobox keys to KB relations via a declared mapping (DBpedia's
//! "mappings wiki" equivalent) and resolve attribute values to
//! entities.
//!
//! Infobox extraction is the high-precision/low-effort counterpart to
//! text extraction; experiment T12 compares the two and their union.

use kb_corpus::Doc;

use super::extract::CandidateFact;

/// The declared infobox-key → relation mapping. Keys not listed are
/// ignored (names, free-text fields, years handled elsewhere).
pub const INFOBOX_MAPPING: &[(&str, &str)] = &[
    ("birth_place", "bornIn"),
    ("citizenship", "citizenOf"),
    ("founded", "founded"),
    ("employer", "worksAt"),
    ("spouse", "marriedTo"),
    ("alma_mater", "studiedAt"),
    ("country", "locatedIn"),
    ("headquarters", "headquarteredIn"),
    ("capital_of", "capitalOf"),
    ("products", "created"),
];

/// Relation mapped to an infobox key, if any.
pub fn relation_for_key(key: &str) -> Option<&'static str> {
    INFOBOX_MAPPING.iter().find(|(k, _)| *k == key).map(|&(_, r)| r)
}

/// Harvests candidate facts from the infoboxes of entity articles.
///
/// * `canonical_of` resolves an article subject (entity id) to its
///   canonical name;
/// * `resolve_value` resolves an infobox value string (a display name)
///   to a canonical entity name — unresolvable values are skipped (they
///   are literals or unknown entities).
///
/// Returned candidates carry confidence [`INFOBOX_CONFIDENCE`] and full
/// per-doc provenance.
pub fn harvest_infoboxes<'a>(
    docs: &[&Doc],
    canonical_of: impl Fn(kb_corpus::EntityId) -> &'a str,
    resolve_value: impl Fn(&str) -> Option<String>,
) -> Vec<CandidateFact> {
    let mut out: Vec<CandidateFact> = Vec::new();
    for doc in docs {
        let Some(subject) = doc.subject else { continue };
        let subject_name = canonical_of(subject);
        for (key, value) in &doc.infobox {
            let Some(relation) = relation_for_key(key) else { continue };
            let Some(value_entity) = resolve_value(value) else { continue };
            // The article subject is always the relation's subject: the
            // corpus emits infobox rows from the subject's own facts
            // ("founded: AcmeCo" on a person page = person founded it).
            let (s, o) = (subject_name.to_string(), value_entity);
            out.push(CandidateFact {
                subject: s,
                relation: relation.to_string(),
                object: o,
                confidence: INFOBOX_CONFIDENCE,
                support: 1,
                docs: 1,
                patterns: 0,
                hints: vec![],
            });
        }
    }
    // Merge duplicates (same fact from several infoboxes).
    out.sort_by_key(|a| a.key());
    let mut merged: Vec<CandidateFact> = Vec::new();
    for c in out {
        match merged.last_mut() {
            Some(last) if last.key() == c.key() => {
                last.support += 1;
                last.docs += 1;
                last.confidence = 1.0 - (1.0 - last.confidence) * (1.0 - c.confidence);
            }
            _ => merged.push(c),
        }
    }
    merged
}

/// Extraction confidence assigned to a single infobox statement.
pub const INFOBOX_CONFIDENCE: f64 = 0.95;

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::doc::TextBuilder;
    use kb_corpus::{DocKind, EntityId};

    fn doc(subject: u32, infobox: &[(&str, &str)]) -> Doc {
        let b = TextBuilder::new();
        let (text, mentions) = b.finish();
        Doc {
            id: 0,
            kind: DocKind::Article,
            title: format!("E{subject}"),
            subject: Some(EntityId(subject)),
            text,
            mentions,
            infobox: infobox.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            categories: vec![],
        }
    }

    fn canon(id: EntityId) -> &'static str {
        ["E0", "E1", "E2"][id.0 as usize]
    }

    fn resolver(v: &str) -> Option<String> {
        match v {
            "Lundholm" => Some("Lundholm".to_string()),
            "Alan Varen" => Some("Alan_Varen".to_string()),
            _ => None,
        }
    }

    #[test]
    fn mapped_keys_become_facts() {
        let d = doc(0, &[("birth_place", "Lundholm"), ("name", "E0")]);
        let facts = harvest_infoboxes(&[&d], canon, resolver);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].subject, "E0");
        assert_eq!(facts[0].relation, "bornIn");
        assert_eq!(facts[0].object, "Lundholm");
        assert_eq!(facts[0].confidence, INFOBOX_CONFIDENCE);
    }

    #[test]
    fn founded_keeps_the_page_subject_as_relation_subject() {
        // On a person page, "founded: AcmeCo" means the person founded it...
        // but our resolver only knows people; use spouse for the shape.
        let d = doc(1, &[("spouse", "Alan Varen")]);
        let facts = harvest_infoboxes(&[&d], canon, resolver);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].subject, "E1");
        assert_eq!(facts[0].relation, "marriedTo");
        assert_eq!(facts[0].object, "Alan_Varen");
    }

    #[test]
    fn unresolvable_values_and_unmapped_keys_are_skipped() {
        let d = doc(0, &[("birth_place", "Atlantis"), ("favorite_color", "Lundholm")]);
        assert!(harvest_infoboxes(&[&d], canon, resolver).is_empty());
    }

    #[test]
    fn duplicates_across_docs_merge() {
        let d1 = doc(0, &[("birth_place", "Lundholm")]);
        let d2 = doc(0, &[("birth_place", "Lundholm")]);
        let facts = harvest_infoboxes(&[&d1, &d2], canon, resolver);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].support, 2);
        assert!(facts[0].confidence > INFOBOX_CONFIDENCE);
    }

    #[test]
    fn mapping_covers_the_declared_schema() {
        for (_, rel) in INFOBOX_MAPPING {
            assert!(super::super::relation_spec(rel).is_some(), "{rel} not in schema");
        }
    }

    #[test]
    fn works_on_generated_corpus_with_high_precision() {
        use kb_corpus::{gold, Corpus, CorpusConfig};
        use std::collections::HashMap;
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let world = &corpus.world;
        let docs: Vec<&Doc> = corpus.articles.iter().collect();
        // Display-name resolver from the world's alias table.
        let display_map: HashMap<String, String> =
            world.entities.iter().map(|e| (e.display.clone(), e.canonical.clone())).collect();
        let facts = harvest_infoboxes(
            &docs,
            |id| world.entity(id).canonical.as_str(),
            |v| display_map.get(v).cloned(),
        );
        assert!(!facts.is_empty());
        let predicted: std::collections::HashSet<_> = facts.iter().map(|c| c.key()).collect();
        let gold_set = gold::gold_fact_strings(world);
        let m = gold::pr_f1(&predicted, &gold_set);
        assert!(m.precision > 0.99, "infobox precision {}", m.precision);
        // The corpus renders each fact into its infobox with probability
        // `infobox_coverage` (0.75 in the tiny preset).
        assert!(m.recall > 0.6, "infobox recall {}", m.recall);
        assert!(m.recall < 0.95, "recall should reflect partial coverage");
    }
}
