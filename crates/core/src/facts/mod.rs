//! Harvesting relational facts (tutorial §3): pattern occurrence
//! collection, distant-supervision pattern learning, candidate
//! extraction and statistical scoring.
//!
//! The flow mirrors the classic harvesting stack (KnowItAll → SOFIE →
//! DeepDive lineages):
//!
//! 1. [`patterns`] scans sentences for pairs of entity mentions and
//!    records the normalized token *infix* between them plus temporal
//!    hints ("in 1976", "from 1970 to 1985").
//! 2. [`distant`] labels occurrences with a *seed* fact set (distant
//!    supervision) and estimates per-(pattern, relation) precision.
//! 3. [`extract`] applies the learned pattern model to all occurrences,
//!    aggregating evidence per candidate fact (noisy-or).
//! 4. [`scoring`] refines candidates with harvested type information.
//!
//! [`infobox`] adds the semi-structured channel: DBpedia-style
//! harvesting from infobox key/value pairs under a declared mapping.
//!
//! The relation *schema* (names, domain/range kinds, functionality) is
//! declared domain knowledge, as in YAGO/SOFIE — see
//! [`RelationSpec`].

pub mod bootstrap;
pub mod distant;
pub mod extract;
pub mod generalize;
pub mod infobox;
pub mod patterns;
pub mod scoring;

/// Declared schema knowledge for one closed-IE relation: what the
/// harvester is told up front (not learned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSpec {
    /// Predicate name ("bornIn").
    pub name: &'static str,
    /// Required subject class ("person").
    pub domain: &'static str,
    /// Required object class ("city").
    pub range: &'static str,
    /// At most one object per subject.
    pub functional: bool,
    /// At most one subject per object.
    pub inverse_functional: bool,
}

/// The declared relation schema used throughout the harvesting
/// experiments. Mirrors the corpus' relation vocabulary — this is the
/// "pre-specified set of relations" of closed IE.
pub const RELATION_SCHEMA: &[RelationSpec] = &[
    RelationSpec {
        name: "bornIn",
        domain: "person",
        range: "city",
        functional: true,
        inverse_functional: false,
    },
    RelationSpec {
        name: "citizenOf",
        domain: "person",
        range: "country",
        functional: true,
        inverse_functional: false,
    },
    RelationSpec {
        name: "founded",
        domain: "person",
        range: "company",
        functional: false,
        inverse_functional: false,
    },
    RelationSpec {
        name: "worksAt",
        domain: "person",
        range: "company",
        functional: false,
        inverse_functional: false,
    },
    RelationSpec {
        name: "marriedTo",
        domain: "person",
        range: "person",
        functional: true,
        inverse_functional: true,
    },
    RelationSpec {
        name: "studiedAt",
        domain: "person",
        range: "university",
        functional: false,
        inverse_functional: false,
    },
    RelationSpec {
        name: "locatedIn",
        domain: "city",
        range: "country",
        functional: true,
        inverse_functional: false,
    },
    RelationSpec {
        name: "headquarteredIn",
        domain: "company",
        range: "city",
        functional: true,
        inverse_functional: false,
    },
    RelationSpec {
        name: "capitalOf",
        domain: "city",
        range: "country",
        functional: true,
        inverse_functional: true,
    },
    RelationSpec {
        name: "created",
        domain: "company",
        range: "product",
        functional: false,
        inverse_functional: true,
    },
];

/// Looks up a relation's spec by name.
pub fn relation_spec(name: &str) -> Option<&'static RelationSpec> {
    RELATION_SCHEMA.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_corpus_relations() {
        for rel in kb_corpus::world::ALL_RELS {
            let spec = relation_spec(rel.name()).expect("schema covers corpus relation");
            assert_eq!(spec.functional, rel.functional(), "{}", rel.name());
            assert_eq!(spec.inverse_functional, rel.inverse_functional(), "{}", rel.name());
            assert_eq!(spec.domain, rel.domain().class_name(), "{}", rel.name());
            assert_eq!(spec.range, rel.range().class_name(), "{}", rel.name());
        }
    }

    #[test]
    fn unknown_relations_have_no_spec() {
        assert!(relation_spec("flibbered").is_none());
    }
}
