//! Pattern generalization via frequent-subsequence mining.
//!
//! Surface patterns are brittle: `"was originally born in"` never
//! matches the learned `"was born in"`. Following the tutorial's note
//! that open/closed IE systems exploit "big-data techniques like
//! frequent sequence mining", this module mines the frequent *gapped*
//! subsequences (PrefixSpan) of each relation's learned infixes and
//! matches new occurrences against those generalized skeletons —
//! trading a little precision for paraphrase-robust recall.

use std::collections::HashMap;

use kb_nlp::seqmine::prefix_span;

use super::distant::PatternModel;
use super::extract::CandidateFact;
use super::patterns::{PatternOccurrence, TimeHint};

/// A generalized pattern: an ordered token skeleton that must appear
/// (possibly with gaps) inside an occurrence's infix.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralizedPattern {
    /// The skeleton tokens, in order.
    pub skeleton: Vec<String>,
    /// The relation it predicts.
    pub relation: String,
    /// Whether the skeleton was learned from reversed-orientation
    /// patterns (object first in text).
    pub reversed: bool,
    /// Confidence inherited from the supporting exact patterns
    /// (their mean precision, discounted).
    pub confidence: f64,
}

/// Generalization parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneralizeConfig {
    /// A skeleton must be supported by at least this many distinct
    /// exact patterns of the same relation.
    pub min_pattern_support: usize,
    /// Minimum skeleton length in tokens (1-token skeletons like "in"
    /// are hopelessly unspecific).
    pub min_skeleton_len: usize,
    /// Confidence discount relative to the supporting exact patterns.
    pub confidence_discount: f64,
}

impl Default for GeneralizeConfig {
    fn default() -> Self {
        Self { min_pattern_support: 2, min_skeleton_len: 2, confidence_discount: 0.7 }
    }
}

/// Mines generalized skeletons from a learned pattern model.
pub fn generalize(model: &PatternModel, cfg: &GeneralizeConfig) -> Vec<GeneralizedPattern> {
    let mut out = Vec::new();
    for (reversed, table) in [(false, &model.forward), (true, &model.reversed)] {
        // Group exact infixes by predicted relation.
        let mut by_relation: HashMap<&str, Vec<(&str, f64)>> = HashMap::new();
        for (infix, stats) in table {
            for (rel, &(precision, _)) in &stats.relations {
                by_relation.entry(rel).or_default().push((infix, precision));
            }
        }
        for (rel, patterns) in by_relation {
            if patterns.len() < cfg.min_pattern_support {
                continue;
            }
            let sequences: Vec<Vec<String>> = patterns
                .iter()
                .map(|(infix, _)| infix.split(' ').map(str::to_string).collect())
                .collect();
            let mean_precision: f64 =
                patterns.iter().map(|&(_, p)| p).sum::<f64>() / patterns.len() as f64;
            for mined in prefix_span(&sequences, cfg.min_pattern_support, 4) {
                if mined.items.len() < cfg.min_skeleton_len {
                    continue;
                }
                // Skeletons equal to some exact pattern are fine: the
                // generalized layer only fires on occurrences the exact
                // model missed, so there is no double counting.
                out.push(GeneralizedPattern {
                    skeleton: mined.items,
                    relation: rel.to_string(),
                    reversed,
                    confidence: (mean_precision * cfg.confidence_discount).clamp(0.0, 0.99),
                });
            }
        }
    }
    // Deduplicate identical skeleton/relation/orientation entries.
    out.sort_by(|a, b| {
        (&a.relation, &a.skeleton, a.reversed)
            .cmp(&(&b.relation, &b.skeleton, b.reversed))
            .then(b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal))
    });
    out.dedup_by(|a, b| {
        a.relation == b.relation && a.skeleton == b.skeleton && a.reversed == b.reversed
    });
    out
}

/// Whether `skeleton` occurs (in order, gaps allowed) in `tokens`.
fn is_subsequence(skeleton: &[String], tokens: &[&str]) -> bool {
    let mut it = tokens.iter();
    skeleton.iter().all(|s| it.any(|t| *t == s))
}

/// Applies generalized patterns to occurrences the exact model missed,
/// producing extra candidate facts.
pub fn extract_generalized(
    occurrences: &[PatternOccurrence],
    model: &PatternModel,
    generalized: &[GeneralizedPattern],
) -> Vec<CandidateFact> {
    struct Agg {
        confidence: f64,
        support: usize,
        docs: std::collections::HashSet<u32>,
        hints: Vec<TimeHint>,
    }
    let mut by_key: HashMap<(String, String, String), Agg> = HashMap::new();
    for occ in occurrences {
        // Skip occurrences the exact model already understands — the
        // generalized layer only adds what exact matching missed.
        if model.predictions(&occ.pattern, false).is_some()
            || model.predictions(&occ.pattern, true).is_some()
        {
            continue;
        }
        let tokens: Vec<&str> = occ.pattern.infix.split(' ').collect();
        for g in generalized {
            if !is_subsequence(&g.skeleton, &tokens) {
                continue;
            }
            let (s, o) = if g.reversed {
                (occ.second.clone(), occ.first.clone())
            } else {
                (occ.first.clone(), occ.second.clone())
            };
            let agg = by_key.entry((s, g.relation.clone(), o)).or_insert_with(|| Agg {
                confidence: 0.0,
                support: 0,
                docs: std::collections::HashSet::new(),
                hints: Vec::new(),
            });
            agg.confidence = 1.0 - (1.0 - agg.confidence) * (1.0 - g.confidence);
            agg.support += 1;
            agg.docs.insert(occ.doc_id);
            if let Some(h) = occ.hint {
                agg.hints.push(h);
            }
        }
    }
    let mut out: Vec<CandidateFact> = by_key
        .into_iter()
        .map(|((subject, relation, object), agg)| CandidateFact {
            subject,
            relation,
            object,
            confidence: agg.confidence,
            support: agg.support,
            docs: agg.docs.len(),
            patterns: 1,
            hints: agg.hints,
        })
        .collect();
    out.sort_by_key(|a| a.key());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::distant::{train, TrainConfig};
    use crate::facts::patterns::PatternKey;
    use std::collections::HashSet;

    fn occ(first: &str, infix: &str, second: &str) -> PatternOccurrence {
        PatternOccurrence {
            doc_id: 0,
            first: first.into(),
            second: second.into(),
            pattern: PatternKey { infix: infix.into(), reversed: false },
            hint: None,
        }
    }

    /// Trains a model with two paraphrases of bornIn sharing the
    /// skeleton "born in".
    fn model() -> PatternModel {
        let occs = vec![
            occ("A", "was born in", "X"),
            occ("B", "was born in", "Y"),
            occ("C", "born in", "Z"),
            occ("D", "born in", "W"),
        ];
        let seeds: HashSet<(String, String, String)> =
            [("A", "X"), ("B", "Y"), ("C", "Z"), ("D", "W")]
                .into_iter()
                .map(|(s, o)| (s.to_string(), "bornIn".to_string(), o.to_string()))
                .collect();
        train(&occs, &seeds, &TrainConfig::default())
    }

    #[test]
    fn skeletons_are_mined_across_paraphrases() {
        let g = generalize(&model(), &GeneralizeConfig::default());
        assert!(
            g.iter().any(|p| p.skeleton == vec!["born", "in"] && p.relation == "bornIn"),
            "missing 'born in' skeleton: {g:?}"
        );
        // Confidence is discounted below the exact patterns' precision.
        let born_in = g.iter().find(|p| p.skeleton == vec!["born", "in"]).unwrap();
        assert!(born_in.confidence < 0.9);
    }

    #[test]
    fn generalized_extraction_catches_new_paraphrases() {
        let m = model();
        let g = generalize(&m, &GeneralizeConfig::default());
        // "was originally born in" is unseen as an exact pattern.
        let new = vec![occ("E", "was originally born in", "V")];
        let found = extract_generalized(&new, &m, &g);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].subject, "E");
        assert_eq!(found[0].relation, "bornIn");
        assert!(found[0].confidence > 0.2);
    }

    #[test]
    fn exactly_matched_occurrences_are_left_alone() {
        let m = model();
        let g = generalize(&m, &GeneralizeConfig::default());
        let seen = vec![occ("F", "was born in", "U")];
        assert!(extract_generalized(&seen, &m, &g).is_empty());
    }

    #[test]
    fn skeleton_order_matters() {
        let m = model();
        let g = generalize(&m, &GeneralizeConfig::default());
        // "in born" reverses the skeleton order: no match.
        let scrambled = vec![occ("G", "in was born", "T")];
        assert!(extract_generalized(&scrambled, &m, &g).is_empty());
    }

    #[test]
    fn empty_model_generalizes_to_nothing() {
        let g = generalize(&PatternModel::default(), &GeneralizeConfig::default());
        assert!(g.is_empty());
    }
}
