//! Distant supervision: learn per-(pattern, relation) precision from a
//! seed fact set (Mintz et al. 2009 lineage, as used by NELL, DeepDive
//! and Knowledge Vault).
//!
//! Every pattern occurrence whose argument pair appears in the seeds for
//! relation *r* is a positive example for *(pattern, r)*; pairs known
//! under a *different* relation count as negatives; pairs unknown to the
//! seed set count as weak negatives (the seed KB is incomplete — the
//! classic distant-supervision noise source), discounted by
//! [`TrainConfig::unknown_discount`].

use std::collections::{HashMap, HashSet};

use super::patterns::{PatternKey, PatternOccurrence};

/// A seed/gold fact keyed by canonical strings.
pub type FactKey = (String, String, String);

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Additive smoothing in the precision denominator.
    pub smoothing: f64,
    /// Weight of occurrences whose pair is unknown to the seeds.
    pub unknown_discount: f64,
    /// Minimum positive support for a (pattern, relation) to be kept.
    pub min_support: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { smoothing: 1.0, unknown_discount: 0.1, min_support: 2 }
    }
}

/// A learned pattern with its per-relation precision estimates.
#[derive(Debug, Clone, Default)]
pub struct PatternStats {
    /// relation name → (estimated precision, positive support).
    pub relations: HashMap<String, (f64, usize)>,
}

/// The learned pattern model.
#[derive(Debug, Clone, Default)]
pub struct PatternModel {
    /// Forward-orientation patterns (subject mention first in text).
    pub forward: HashMap<String, PatternStats>,
    /// Reversed-orientation patterns (object first, e.g. passives).
    pub reversed: HashMap<String, PatternStats>,
}

impl PatternModel {
    /// Relations predicted by `pattern` in the given orientation, with
    /// precision estimates.
    pub fn predictions(&self, pattern: &PatternKey, reversed: bool) -> Option<&PatternStats> {
        if reversed {
            self.reversed.get(&pattern.infix)
        } else {
            self.forward.get(&pattern.infix)
        }
    }

    /// Total number of retained (pattern, orientation, relation) entries.
    pub fn len(&self) -> usize {
        self.forward.values().chain(self.reversed.values()).map(|s| s.relations.len()).sum()
    }

    /// Whether nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Trains the pattern model from occurrences and seed facts.
///
/// Seeds index: `(subject, object) → set of relation names`. Each
/// occurrence is tried in both orientations: `(first, second)` trains
/// the forward table, `(second, first)` the reversed table.
pub fn train(
    occurrences: &[PatternOccurrence],
    seeds: &HashSet<FactKey>,
    cfg: &TrainConfig,
) -> PatternModel {
    // (s, o) -> rels
    let mut pair_rels: HashMap<(&str, &str), Vec<&str>> = HashMap::new();
    let mut seeded_entities: HashSet<&str> = HashSet::new();
    for (s, r, o) in seeds {
        pair_rels.entry((s.as_str(), o.as_str())).or_default().push(r.as_str());
        seeded_entities.insert(s.as_str());
        seeded_entities.insert(o.as_str());
    }

    // counts[orientation][infix][rel] = positives; totals track the
    // denominator components per infix.
    #[derive(Default)]
    struct Tally {
        pos: HashMap<String, HashMap<String, usize>>,
        neg: HashMap<String, f64>,
    }
    let mut tallies = [Tally::default(), Tally::default()];

    for occ in occurrences {
        for (ori, (s, o)) in [
            (0usize, (occ.first.as_str(), occ.second.as_str())),
            (1usize, (occ.second.as_str(), occ.first.as_str())),
        ] {
            let tally = &mut tallies[ori];
            match pair_rels.get(&(s, o)) {
                Some(rels) => {
                    for r in rels {
                        *tally
                            .pos
                            .entry(occ.pattern.infix.clone())
                            .or_default()
                            .entry((*r).to_string())
                            .or_insert(0) += 1;
                    }
                }
                None => {
                    // Unknown pair: weak negative evidence, stronger when
                    // both entities are covered by the seed KB (then the
                    // absence of the fact is more meaningful).
                    let w = if seeded_entities.contains(s) && seeded_entities.contains(o) {
                        cfg.unknown_discount * 2.0
                    } else {
                        cfg.unknown_discount
                    };
                    *tally.neg.entry(occ.pattern.infix.clone()).or_insert(0.0) += w;
                }
            }
        }
    }

    let mut model = PatternModel::default();
    for (ori, tally) in tallies.into_iter().enumerate() {
        let table = if ori == 0 { &mut model.forward } else { &mut model.reversed };
        for (infix, rel_counts) in tally.pos {
            let neg = tally.neg.get(&infix).copied().unwrap_or(0.0);
            let total_pos: usize = rel_counts.values().sum();
            let mut stats = PatternStats::default();
            for (rel, pos) in rel_counts {
                if pos < cfg.min_support {
                    continue;
                }
                // Other relations' positives are hard negatives for this one.
                let other_pos = (total_pos - pos) as f64;
                let precision = pos as f64 / (pos as f64 + other_pos + neg + cfg.smoothing);
                stats.relations.insert(rel, (precision, pos));
            }
            if !stats.relations.is_empty() {
                table.insert(infix, stats);
            }
        }
    }
    model
}

/// Draws a deterministic seed subset of the gold facts: every `k`-th
/// fact per relation (a stratified sample, so every relation gets
/// seeds).
pub fn stratified_seeds(gold: &HashSet<FactKey>, fraction: f64) -> HashSet<FactKey> {
    let mut by_rel: HashMap<&str, Vec<&FactKey>> = HashMap::new();
    for f in gold {
        by_rel.entry(f.1.as_str()).or_default().push(f);
    }
    let mut seeds = HashSet::new();
    for (_, mut facts) in by_rel {
        facts.sort();
        let take = ((facts.len() as f64) * fraction).ceil() as usize;
        for f in facts.into_iter().take(take.max(1)) {
            seeds.insert(f.clone());
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(first: &str, infix: &str, second: &str) -> PatternOccurrence {
        PatternOccurrence {
            doc_id: 0,
            first: first.into(),
            second: second.into(),
            pattern: PatternKey { infix: infix.into(), reversed: false },
            hint: None,
        }
    }

    fn fact(s: &str, r: &str, o: &str) -> FactKey {
        (s.into(), r.into(), o.into())
    }

    #[test]
    fn positive_patterns_are_learned_forward() {
        let occs = vec![
            occ("A", "was born in", "X"),
            occ("B", "was born in", "Y"),
            occ("C", "was born in", "Z"),
        ];
        let seeds: HashSet<FactKey> =
            [fact("A", "bornIn", "X"), fact("B", "bornIn", "Y"), fact("C", "bornIn", "Z")]
                .into_iter()
                .collect();
        let model = train(&occs, &seeds, &TrainConfig::default());
        let stats = model
            .predictions(&PatternKey { infix: "was born in".into(), reversed: false }, false)
            .unwrap();
        let (prec, support) = stats.relations["bornIn"];
        assert_eq!(support, 3);
        assert!(prec > 0.7, "precision {prec}");
    }

    #[test]
    fn passive_patterns_are_learned_reversed() {
        // Text order: Company ... founder. Logical: founder founded company.
        let occs =
            vec![occ("AppleCo", "was founded by", "Jobs"), occ("BetaCo", "was founded by", "Ann")];
        let seeds: HashSet<FactKey> =
            [fact("Jobs", "founded", "AppleCo"), fact("Ann", "founded", "BetaCo")]
                .into_iter()
                .collect();
        let model = train(&occs, &seeds, &TrainConfig::default());
        assert!(model
            .predictions(&PatternKey { infix: "was founded by".into(), reversed: false }, true)
            .is_some());
        assert!(model
            .predictions(&PatternKey { infix: "was founded by".into(), reversed: false }, false)
            .is_none());
    }

    #[test]
    fn min_support_filters_one_off_patterns() {
        let occs = vec![occ("A", "visited", "X")];
        let seeds: HashSet<FactKey> = [fact("A", "bornIn", "X")].into_iter().collect();
        let model = train(&occs, &seeds, &TrainConfig::default());
        assert!(model.is_empty(), "support 1 must be dropped");
    }

    #[test]
    fn conflicting_relations_depress_precision() {
        let occs = vec![
            occ("A", "is linked with", "X"),
            occ("B", "is linked with", "Y"),
            occ("C", "is linked with", "Z"),
            occ("D", "is linked with", "W"),
        ];
        let seeds: HashSet<FactKey> = [
            fact("A", "bornIn", "X"),
            fact("B", "bornIn", "Y"),
            fact("C", "worksAt", "Z"),
            fact("D", "worksAt", "W"),
        ]
        .into_iter()
        .collect();
        let model = train(&occs, &seeds, &TrainConfig::default());
        let stats = model
            .predictions(&PatternKey { infix: "is linked with".into(), reversed: false }, false)
            .unwrap();
        let (p_born, _) = stats.relations["bornIn"];
        assert!(p_born < 0.5, "ambiguous pattern must have low precision, got {p_born}");
    }

    #[test]
    fn unknown_pairs_weaken_patterns() {
        let mut occs = vec![occ("A", "met", "X"), occ("B", "met", "Y")];
        // Lots of unknown-pair occurrences for the same pattern.
        for i in 0..20 {
            occs.push(occ(&format!("U{i}"), "met", &format!("V{i}")));
        }
        let seeds: HashSet<FactKey> =
            [fact("A", "bornIn", "X"), fact("B", "bornIn", "Y")].into_iter().collect();
        let model = train(&occs, &seeds, &TrainConfig::default());
        let stats =
            model.predictions(&PatternKey { infix: "met".into(), reversed: false }, false).unwrap();
        let (prec, _) = stats.relations["bornIn"];
        assert!(prec < 0.6, "noisy pattern should be discounted, got {prec}");
    }

    #[test]
    fn stratified_seeds_cover_every_relation() {
        let gold: HashSet<FactKey> = (0..10)
            .map(|i| fact(&format!("S{i}"), "bornIn", &format!("O{i}")))
            .chain((0..4).map(|i| fact(&format!("P{i}"), "worksAt", &format!("Q{i}"))))
            .collect();
        let seeds = stratified_seeds(&gold, 0.2);
        assert!(seeds.iter().any(|(_, r, _)| r == "bornIn"));
        assert!(seeds.iter().any(|(_, r, _)| r == "worksAt"));
        assert!(seeds.len() < gold.len());
        // Deterministic.
        assert_eq!(seeds, stratified_seeds(&gold, 0.2));
    }
}
