//! Horn-rule mining over the knowledge base (AMIE-style), covering the
//! tutorial's "commonsense rules" topic: regularities like *the capital
//! of a country is located in it* or *marriage is symmetric* are mined
//! from the KB itself with support/confidence statistics, then usable
//! for KB completion.
//!
//! Three rule shapes are mined:
//!
//! * **implication** — `r1(x, y) ⇒ r2(x, y)`;
//! * **inverse** — `r1(x, y) ⇒ r2(y, x)` (symmetry when `r1 = r2`);
//! * **chain** — `r1(x, z) ∧ r2(z, y) ⇒ r3(x, y)`.
//!
//! Confidence comes in two flavors, as in AMIE: *standard* (body
//! instantiations satisfying the head over all body instantiations) and
//! *PCA* (denominator restricted to subjects for which the head
//! relation is known at all — the partial-completeness assumption that
//! makes mining on incomplete KBs meaningful).
//!
//! ```
//! use kb_store::KnowledgeBase;
//! use kb_harvest::rules::{mine_rules, RuleConfig, RuleShape};
//!
//! let mut kb = KnowledgeBase::new();
//! for i in 0..6 {
//!     let (a, b) = (format!("P{i}"), format!("Q{i}"));
//!     kb.assert_str(&a, "marriedTo", &b);
//!     kb.assert_str(&b, "marriedTo", &a);
//! }
//! let cfg = RuleConfig { min_support: 5, ..Default::default() };
//! let rules = mine_rules(&kb, &cfg);
//! assert!(rules.iter().any(|r| r.shape == RuleShape::Inverse && r.head == "marriedTo"));
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

use kb_store::{KbRead, TermId};

/// The shape of a mined rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleShape {
    /// `r1(x, y) ⇒ r2(x, y)`
    Implication,
    /// `r1(x, y) ⇒ r2(y, x)`
    Inverse,
    /// `r1(x, z) ∧ r2(z, y) ⇒ r3(x, y)`
    Chain,
}

/// A mined Horn rule with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Shape of the rule.
    pub shape: RuleShape,
    /// Body relation names (one for implication/inverse, two for chain).
    pub body: Vec<String>,
    /// Head relation name.
    pub head: String,
    /// Number of body instantiations whose head holds.
    pub support: usize,
    /// support / number of head facts.
    pub head_coverage: f64,
    /// support / number of body instantiations.
    pub std_confidence: f64,
    /// support / body instantiations whose subject has any head fact.
    pub pca_confidence: f64,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            RuleShape::Implication => write!(f, "{}(x,y) ⇒ {}(x,y)", self.body[0], self.head)?,
            RuleShape::Inverse => write!(f, "{}(x,y) ⇒ {}(y,x)", self.body[0], self.head)?,
            RuleShape::Chain => {
                write!(f, "{}(x,z) ∧ {}(z,y) ⇒ {}(x,y)", self.body[0], self.body[1], self.head)?
            }
        }
        write!(
            f,
            "   [support {}, head-cov {:.2}, conf {:.2}, PCA {:.2}]",
            self.support, self.head_coverage, self.std_confidence, self.pca_confidence
        )
    }
}

/// Mining thresholds.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Minimum support (body-and-head instantiations).
    pub min_support: usize,
    /// Minimum PCA confidence.
    pub min_pca_confidence: f64,
    /// Minimum *standard* confidence. PCA alone overrates rules whose
    /// head relation exists only for a biased subject subset (e.g.
    /// `locatedIn(x,y) ⇒ capitalOf(x,y)` scores PCA 1.0 because only
    /// capitals carry `capitalOf` facts); AMIE guards with both.
    pub min_std_confidence: f64,
    /// Minimum head coverage (filters trivial rules on huge relations).
    pub min_head_coverage: f64,
    /// Predicates excluded from mining (schema predicates).
    pub exclude: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self {
            min_support: 5,
            min_pca_confidence: 0.5,
            min_std_confidence: 0.3,
            min_head_coverage: 0.1,
            exclude: vec!["instanceOf".to_string()],
        }
    }
}

/// Per-relation fact view used during mining.
struct RelView {
    name: String,
    pairs: Vec<(TermId, TermId)>,
    pair_set: HashSet<(TermId, TermId)>,
    by_subject: HashMap<TermId, Vec<TermId>>,
    subjects: HashSet<TermId>,
}

fn build_views<K: KbRead + ?Sized>(kb: &K, cfg: &RuleConfig) -> Vec<RelView> {
    let mut by_rel: HashMap<TermId, Vec<(TermId, TermId)>> = HashMap::new();
    for fact in kb.iter() {
        by_rel.entry(fact.triple.p).or_default().push((fact.triple.s, fact.triple.o));
    }
    let mut views: Vec<RelView> = by_rel
        .into_iter()
        .filter_map(|(p, pairs)| {
            let name = kb.resolve(p)?.to_string();
            if cfg.exclude.contains(&name) {
                return None;
            }
            let pair_set: HashSet<(TermId, TermId)> = pairs.iter().copied().collect();
            let mut by_subject: HashMap<TermId, Vec<TermId>> = HashMap::new();
            let mut subjects = HashSet::new();
            for &(s, o) in &pairs {
                by_subject.entry(s).or_default().push(o);
                subjects.insert(s);
            }
            Some(RelView { name, pairs, pair_set, by_subject, subjects })
        })
        .collect();
    views.sort_by(|a, b| a.name.cmp(&b.name));
    views
}

/// Scores one candidate rule given its body instantiations.
fn score(
    body_pairs: &HashSet<(TermId, TermId)>,
    head: &RelView,
    shape: RuleShape,
    body_names: Vec<String>,
) -> Rule {
    let support = body_pairs.iter().filter(|&&(x, y)| head.pair_set.contains(&(x, y))).count();
    let pca_denominator = body_pairs.iter().filter(|&&(x, _)| head.subjects.contains(&x)).count();
    let body_count = body_pairs.len();
    Rule {
        shape,
        body: body_names,
        head: head.name.clone(),
        support,
        head_coverage: if head.pairs.is_empty() {
            0.0
        } else {
            support as f64 / head.pairs.len() as f64
        },
        std_confidence: if body_count == 0 { 0.0 } else { support as f64 / body_count as f64 },
        pca_confidence: if pca_denominator == 0 {
            0.0
        } else {
            support as f64 / pca_denominator as f64
        },
    }
}

/// Mines all rules passing the thresholds, ranked by PCA confidence,
/// then support.
pub fn mine_rules<K: KbRead + ?Sized>(kb: &K, cfg: &RuleConfig) -> Vec<Rule> {
    let views = build_views(kb, cfg);
    let mut out: Vec<Rule> = Vec::new();
    let keep = |r: &Rule| {
        r.support >= cfg.min_support
            && r.pca_confidence >= cfg.min_pca_confidence
            && r.std_confidence >= cfg.min_std_confidence
            && r.head_coverage >= cfg.min_head_coverage
    };
    for body in &views {
        for head in &views {
            // Implication r_body(x,y) ⇒ r_head(x,y); skip the tautology.
            if body.name != head.name {
                let rule =
                    score(&body.pair_set, head, RuleShape::Implication, vec![body.name.clone()]);
                if keep(&rule) {
                    out.push(rule);
                }
            }
            // Inverse r_body(x,y) ⇒ r_head(y,x) (symmetry when equal).
            let inverted: HashSet<(TermId, TermId)> =
                body.pair_set.iter().map(|&(x, y)| (y, x)).collect();
            let rule = score(&inverted, head, RuleShape::Inverse, vec![body.name.clone()]);
            if keep(&rule) {
                out.push(rule);
            }
        }
    }
    // Chains r1(x,z) ∧ r2(z,y) ⇒ r3(x,y).
    for r1 in &views {
        for r2 in &views {
            let mut joined: HashSet<(TermId, TermId)> = HashSet::new();
            for &(x, z) in &r1.pairs {
                if let Some(ys) = r2.by_subject.get(&z) {
                    for &y in ys {
                        if x != y {
                            joined.insert((x, y));
                        }
                    }
                }
            }
            if joined.is_empty() {
                continue;
            }
            for head in &views {
                // Skip chains that trivially restate one body atom.
                if head.name == r1.name || head.name == r2.name {
                    continue;
                }
                let rule =
                    score(&joined, head, RuleShape::Chain, vec![r1.name.clone(), r2.name.clone()]);
                if keep(&rule) {
                    out.push(rule);
                }
            }
        }
    }
    out.sort_by(|a, b| {
        b.pca_confidence
            .partial_cmp(&a.pca_confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.support.cmp(&a.support))
            .then(a.head.cmp(&b.head))
            .then(a.body.cmp(&b.body))
    });
    out
}

/// A fact predicted by applying a rule (not yet in the KB).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PredictedFact {
    /// Subject canonical name.
    pub subject: String,
    /// Head relation name.
    pub relation: String,
    /// Object canonical name.
    pub object: String,
}

/// Applies mined rules to the KB: returns facts the rules *predict* but
/// the KB does not contain — rule-based KB completion.
pub fn apply_rules<K: KbRead + ?Sized>(
    kb: &K,
    rules: &[Rule],
    cfg: &RuleConfig,
) -> Vec<PredictedFact> {
    let views = build_views(kb, cfg);
    let view_of = |name: &str| views.iter().find(|v| v.name == name);
    let mut predictions: HashSet<PredictedFact> = HashSet::new();
    for rule in rules {
        let Some(head) = view_of(&rule.head) else { continue };
        let body_pairs: HashSet<(TermId, TermId)> = match rule.shape {
            RuleShape::Implication => match view_of(&rule.body[0]) {
                Some(v) => v.pair_set.clone(),
                None => continue,
            },
            RuleShape::Inverse => match view_of(&rule.body[0]) {
                Some(v) => v.pair_set.iter().map(|&(x, y)| (y, x)).collect(),
                None => continue,
            },
            RuleShape::Chain => {
                let (Some(r1), Some(r2)) = (view_of(&rule.body[0]), view_of(&rule.body[1])) else {
                    continue;
                };
                let mut joined = HashSet::new();
                for &(x, z) in &r1.pairs {
                    if let Some(ys) = r2.by_subject.get(&z) {
                        for &y in ys {
                            if x != y {
                                joined.insert((x, y));
                            }
                        }
                    }
                }
                joined
            }
        };
        for (x, y) in body_pairs {
            if !head.pair_set.contains(&(x, y)) {
                let (Some(s), Some(o)) = (kb.resolve(x), kb.resolve(y)) else { continue };
                predictions.insert(PredictedFact {
                    subject: s.to_string(),
                    relation: head.name.clone(),
                    object: o.to_string(),
                });
            }
        }
    }
    let mut out: Vec<PredictedFact> = predictions.into_iter().collect();
    out.sort_by(|a, b| {
        (&a.relation, &a.subject, &a.object).cmp(&(&b.relation, &b.subject, &b.object))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KnowledgeBase;

    /// A KB where capitalOf ⊑ locatedIn, marriedTo is symmetric, and
    /// bornIn ∘ locatedIn = citizenOf.
    fn sample() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let cities = ["C1", "C2", "C3", "C4", "C5", "C6"];
        let countries = ["N1", "N2", "N3"];
        for (i, city) in cities.iter().enumerate() {
            let country = countries[i % countries.len()];
            kb.assert_str(city, "locatedIn", country);
            if i < countries.len() {
                kb.assert_str(city, "capitalOf", country);
            }
        }
        for i in 0..12 {
            let p = format!("P{i}");
            let q = format!("Q{i}");
            let city = cities[i % cities.len()];
            let country = countries[(i % cities.len()) % countries.len()];
            kb.assert_str(&p, "bornIn", city);
            kb.assert_str(&p, "citizenOf", country);
            kb.assert_str(&p, "marriedTo", &q);
            kb.assert_str(&q, "marriedTo", &p);
        }
        kb
    }

    fn lax() -> RuleConfig {
        RuleConfig {
            min_support: 3,
            min_pca_confidence: 0.5,
            min_std_confidence: 0.3,
            min_head_coverage: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn finds_capital_implies_located() {
        let rules = mine_rules(&sample(), &lax());
        let rule = rules
            .iter()
            .find(|r| {
                r.shape == RuleShape::Implication
                    && r.body == vec!["capitalOf"]
                    && r.head == "locatedIn"
            })
            .expect("capitalOf ⇒ locatedIn");
        assert_eq!(rule.std_confidence, 1.0);
        assert_eq!(rule.pca_confidence, 1.0);
        assert_eq!(rule.support, 3);
    }

    #[test]
    fn finds_marriage_symmetry() {
        let rules = mine_rules(&sample(), &lax());
        let rule = rules
            .iter()
            .find(|r| {
                r.shape == RuleShape::Inverse
                    && r.body == vec!["marriedTo"]
                    && r.head == "marriedTo"
            })
            .expect("marriedTo symmetry");
        assert_eq!(rule.std_confidence, 1.0);
        assert_eq!(rule.support, 24);
    }

    #[test]
    fn finds_the_citizenship_chain() {
        let rules = mine_rules(&sample(), &lax());
        let rule = rules
            .iter()
            .find(|r| {
                r.shape == RuleShape::Chain
                    && r.body == vec!["bornIn".to_string(), "locatedIn".to_string()]
                    && r.head == "citizenOf"
            })
            .expect("bornIn ∧ locatedIn ⇒ citizenOf");
        assert!(rule.std_confidence > 0.99);
        assert_eq!(rule.support, 12);
    }

    #[test]
    fn low_confidence_rules_are_filtered() {
        let rules = mine_rules(&sample(), &RuleConfig::default());
        for r in &rules {
            assert!(r.pca_confidence >= 0.5, "{r}");
            assert!(r.support >= 5, "{r}");
        }
        // bornIn ⇒ marriedTo must not survive.
        assert!(!rules.iter().any(|r| r.body == vec!["bornIn"] && r.head == "marriedTo"));
    }

    #[test]
    fn pca_confidence_ignores_unknown_subjects() {
        // Half the capital facts' locatedIn counterpart is "missing":
        // PCA confidence should stay high while std confidence drops.
        let mut kb = KnowledgeBase::new();
        for i in 0..10 {
            let city = format!("C{i}");
            kb.assert_str(&city, "capitalOf", "N");
            // Only half the cities have ANY locatedIn fact.
            if i % 2 == 0 {
                kb.assert_str(&city, "locatedIn", "N");
            }
        }
        let rules = mine_rules(&kb, &lax());
        let rule = rules
            .iter()
            .find(|r| r.shape == RuleShape::Implication && r.head == "locatedIn")
            .expect("rule survives thanks to PCA");
        assert!(rule.std_confidence < 0.6);
        assert_eq!(rule.pca_confidence, 1.0);
    }

    #[test]
    fn application_completes_the_kb() {
        // Remove some citizenships; the chain rule should predict them.
        let mut kb = sample();
        let p0 = kb.term("P0").unwrap();
        let citizen = kb.term("citizenOf").unwrap();
        let n1 = kb.term("N1").unwrap();
        kb.retract(kb_store::Triple::new(p0, citizen, n1));
        let rules = mine_rules(&kb, &lax());
        let predictions = apply_rules(&kb, &rules, &lax());
        assert!(
            predictions
                .iter()
                .any(|p| p.subject == "P0" && p.relation == "citizenOf" && p.object == "N1"),
            "missing citizenship not predicted: {predictions:?}"
        );
    }

    #[test]
    fn rules_render_readably() {
        let rules = mine_rules(&sample(), &lax());
        let text = rules[0].to_string();
        assert!(text.contains('⇒'));
        assert!(text.contains("support"));
    }

    #[test]
    fn empty_kb_mines_nothing() {
        let kb = KnowledgeBase::new();
        assert!(mine_rules(&kb, &RuleConfig::default()).is_empty());
    }
}
