//! The end-to-end harvesting pipeline: documents in, populated
//! knowledge base out — with document-parallel occurrence collection
//! (the "scalable distributed algorithms" of the tutorial, realized as
//! a multi-threaded worker pool) and a resilience layer that keeps the
//! harvest alive on poisoned input.
//!
//! Failure model (see DESIGN.md, "Failure model"):
//!
//! * **Quarantine** — per-document work runs behind integrity
//!   validation plus `catch_unwind`; a poison document lands in the
//!   dead-letter queue ([`PipelineStats::quarantined`]) instead of
//!   killing the run.
//! * **Degradation** — the refinement stage falls back from
//!   [`Method::Reasoning`] / [`Method::FactorGraph`] to
//!   [`Method::Statistical`] when it panics or blows its budget, and
//!   records the [`Downgrade`].
//! * **No panics across the API** — [`harvest`] returns
//!   `Result<_, PipelineError>`; worker joins and stage bodies are
//!   shielded.

use std::collections::HashSet;
use std::time::Instant;

use kb_corpus::{gold, Corpus, Doc};
use kb_store::{Fact, KbShard, KnowledgeBase, SourceId, TimeSpan, Triple};

use crate::factorgraph::{self, GibbsConfig};
use crate::facts::distant::{self, FactKey, TrainConfig};
use crate::facts::extract::{self, CandidateFact, ExtractConfig};
use crate::facts::patterns::{self, CollectConfig, PatternOccurrence};
use crate::facts::scoring::{self, ScoreConfig, TypeIndex};
use crate::reasoning::{self, SolverConfig};
use crate::resilience::{
    catch_panic, panic_payload_to_string, BudgetGuard, Downgrade, DowngradeReason, PipelineError,
    QuarantineReason, Quarantined, ResilienceConfig,
};
use crate::taxonomy::induce::{self, MergedInstance};
use crate::taxonomy::{category, hearst};
use crate::temporal;

/// Which refinement stack to run after pattern extraction — the rows of
/// experiment T3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Raw pattern extraction only.
    PatternsOnly,
    /// + statistical type-aware scoring.
    Statistical,
    /// + weighted-MaxSat consistency reasoning.
    Reasoning,
    /// Statistical scoring + factor-graph joint inference.
    FactorGraph,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct HarvestConfig {
    /// Fraction of gold facts revealed as distant-supervision seeds.
    pub seed_fraction: f64,
    /// Final acceptance threshold on candidate confidence.
    pub min_confidence: f64,
    /// Worker threads for occurrence collection.
    pub workers: usize,
    /// Refinement method.
    pub method: Method,
    /// Whether to add PrefixSpan-generalized pattern matches (extra
    /// recall on unseen paraphrases, slightly discounted confidence).
    pub generalize: bool,
    /// Occurrence collection parameters.
    pub collect: CollectConfig,
    /// Distant-supervision training parameters.
    pub train: TrainConfig,
    /// Extraction parameters.
    pub extract: ExtractConfig,
    /// Retry, quarantine and degradation knobs.
    pub resilience: ResilienceConfig,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        Self {
            seed_fraction: 0.25,
            min_confidence: 0.5,
            workers: 4,
            method: Method::Reasoning,
            generalize: false,
            collect: CollectConfig::default(),
            train: TrainConfig::default(),
            extract: ExtractConfig::default(),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Wall-clock timings and counters per stage, plus the run's resilience
/// ledger (dead letters, retries, downgrades).
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Documents that survived quarantine and were processed.
    pub docs: usize,
    /// Pattern occurrences collected.
    pub occurrences: usize,
    /// (pattern, orientation, relation) entries learned.
    pub patterns_learned: usize,
    /// Candidates extracted.
    pub candidates: usize,
    /// Candidates accepted into the KB.
    pub accepted: usize,
    /// Instance assertions merged.
    pub instances: usize,
    /// Seconds spent collecting occurrences.
    pub collect_secs: f64,
    /// Seconds spent in training + extraction + refinement.
    pub infer_secs: f64,
    /// The dead-letter queue: every quarantined document with its
    /// captured failure.
    pub quarantined: Vec<Quarantined>,
    /// Extra per-document extraction attempts spent on retries.
    pub retries: usize,
    /// Degradation-ladder rungs taken during refinement.
    pub downgrades: Vec<Downgrade>,
}

impl PipelineStats {
    /// Whether any stage was downgraded during the run.
    pub fn downgraded(&self) -> bool {
        !self.downgrades.is_empty()
    }

    /// Number of documents in the dead-letter queue.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

/// Everything the pipeline produces.
#[derive(Debug)]
pub struct HarvestOutput {
    /// The populated knowledge base.
    pub kb: KnowledgeBase,
    /// All scored candidates after the configured refinement.
    pub candidates: Vec<CandidateFact>,
    /// The accepted subset (confidence ≥ threshold, reasoner-approved).
    pub accepted: Vec<CandidateFact>,
    /// Merged taxonomy instances.
    pub instances: Vec<MergedInstance>,
    /// Applied subclass edges.
    pub subclass_edges: Vec<(String, String)>,
    /// The distant-supervision seeds used (for seed-excluded evaluation).
    pub seeds: HashSet<FactKey>,
    /// Stage statistics.
    pub stats: PipelineStats,
}

/// Splits `docs` into per-worker chunks and joins the results without
/// letting a worker panic escape: a panicking join becomes a
/// [`PipelineError::WorkerPanic`].
fn scoped_map_chunks<'env, T: Send>(
    chunks: &'env [&'env [&'env Doc]],
    stage: &'static str,
    work: impl Fn(usize, &'env [&'env Doc]) -> T + Sync,
) -> Result<Vec<T>, PipelineError> {
    let joined = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(idx, chunk)| {
                scope.spawn({
                    let work = &work;
                    move |_| work(idx, chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|p| PipelineError::WorkerPanic {
                    stage,
                    detail: panic_payload_to_string(p),
                })
            })
            .collect::<Result<Vec<T>, PipelineError>>()
    })
    .map_err(|p| PipelineError::WorkerPanic { stage, detail: panic_payload_to_string(p) })?;
    joined
}

/// Collects occurrences over `docs` with `workers` threads. Output
/// order equals the serial doc order regardless of worker count. Worker
/// panics surface as [`PipelineError`] instead of unwinding (for
/// per-document quarantine semantics use [`collect_resilient`]).
pub fn collect_parallel<'a>(
    docs: &[&Doc],
    canonical_of: &(impl Fn(kb_corpus::EntityId) -> &'a str + Sync),
    cfg: &CollectConfig,
    workers: usize,
) -> Result<Vec<PatternOccurrence>, PipelineError> {
    let workers = workers.max(1);
    if workers == 1 || docs.len() < 2 {
        return Ok(docs
            .iter()
            .flat_map(|d| patterns::collect_occurrences(d, canonical_of, cfg))
            .collect());
    }
    let chunk_size = docs.len().div_ceil(workers);
    let chunks: Vec<&[&Doc]> = docs.chunks(chunk_size).collect();
    let mut results: Vec<(usize, Vec<PatternOccurrence>)> =
        scoped_map_chunks(&chunks, "collect", |idx, chunk| {
            let occs: Vec<PatternOccurrence> = chunk
                .iter()
                .flat_map(|d| patterns::collect_occurrences(d, canonical_of, cfg))
                .collect();
            (idx, occs)
        })?;
    results.sort_by_key(|&(idx, _)| idx);
    Ok(results.into_iter().flat_map(|(_, occs)| occs).collect())
}

/// The per-document analysis stage: pattern-occurrence collection plus
/// raw Open IE extraction — the pipeline's "map" work, parallelized
/// over document chunks for experiment F2. Output order is independent
/// of the worker count; worker panics surface as [`PipelineError`].
pub fn analyze_parallel<'a>(
    docs: &[&Doc],
    canonical_of: &(impl Fn(kb_corpus::EntityId) -> &'a str + Sync),
    collect_cfg: &CollectConfig,
    openie_cfg: &crate::openie::OpenIeConfig,
    workers: usize,
) -> Result<(Vec<PatternOccurrence>, Vec<crate::openie::OpenFact>), PipelineError> {
    let workers = workers.max(1);
    let analyze_chunk = |chunk: &[&Doc]| {
        let mut occs = Vec::new();
        let mut open = Vec::new();
        for d in chunk {
            occs.extend(patterns::collect_occurrences(d, canonical_of, collect_cfg));
            open.extend(crate::openie::extract_raw(d, openie_cfg));
        }
        (occs, open)
    };
    if workers == 1 || docs.len() < 2 {
        return Ok(analyze_chunk(docs));
    }
    let chunk_size = docs.len().div_ceil(workers);
    let chunks: Vec<&[&Doc]> = docs.chunks(chunk_size).collect();
    type AnalyzedChunk = (usize, (Vec<PatternOccurrence>, Vec<crate::openie::OpenFact>));
    let mut results: Vec<AnalyzedChunk> =
        scoped_map_chunks(&chunks, "analyze", |idx, chunk| (idx, analyze_chunk(chunk)))?;
    results.sort_by_key(|&(idx, _)| idx);
    let mut occs = Vec::new();
    let mut open = Vec::new();
    for (_, (o, f)) in results {
        occs.extend(o);
        open.extend(f);
    }
    Ok((occs, open))
}

/// What [`collect_resilient`] produced: the occurrences and survivors,
/// plus the dead-letter queue and retry ledger.
#[derive(Debug)]
pub struct CollectOutcome {
    /// Occurrences from surviving documents, in serial doc order.
    pub occurrences: Vec<PatternOccurrence>,
    /// Indices (into the input slice) of documents that survived.
    pub survivors: Vec<usize>,
    /// Quarantined documents, in serial doc order.
    pub quarantined: Vec<Quarantined>,
    /// Extra extraction attempts spent on retries.
    pub retries: usize,
}

/// Per-document result inside the resilient collection workers.
enum DocOutcome {
    Survived(Vec<PatternOccurrence>),
    Dead(QuarantineReason),
}

/// Fault-tolerant occurrence collection: each document is validated
/// (mention spans in bounds, on char boundaries, entity ids below
/// `entity_bound`) and then extracted behind `catch_unwind` with the
/// configured retry policy. A document that fails validation or keeps
/// panicking is quarantined; the rest of the harvest proceeds without
/// it. Output order is deterministic and independent of `workers`.
pub fn collect_resilient<'a>(
    docs: &[&Doc],
    canonical_of: &(impl Fn(kb_corpus::EntityId) -> &'a str + Sync),
    cfg: &CollectConfig,
    workers: usize,
    res: &ResilienceConfig,
    entity_bound: u32,
) -> Result<CollectOutcome, PipelineError> {
    let workers = workers.max(1);
    let process = |doc: &Doc| -> (DocOutcome, u32) {
        if let Some(defect) = doc.integrity_error(entity_bound) {
            // Validation failures are permanent properties of the input;
            // retrying cannot fix them.
            return (DocOutcome::Dead(QuarantineReason::Defect(defect.to_string())), 1);
        }
        let outcome = res
            .retry
            .run(|_| catch_panic(|| patterns::collect_occurrences(doc, canonical_of, cfg)));
        match outcome.result {
            Ok(occs) => (DocOutcome::Survived(occs), outcome.attempts),
            Err(msg) => (DocOutcome::Dead(QuarantineReason::Panic(msg)), outcome.attempts),
        }
    };
    let per_doc: Vec<(usize, (DocOutcome, u32))> = if workers == 1 || docs.len() < 2 {
        docs.iter().enumerate().map(|(i, d)| (i, process(d))).collect()
    } else {
        let chunk_size = docs.len().div_ceil(workers);
        let chunks: Vec<&[&Doc]> = docs.chunks(chunk_size).collect();
        let mut results: Vec<Vec<(usize, (DocOutcome, u32))>> =
            scoped_map_chunks(&chunks, "collect-resilient", |idx, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(off, d)| (idx * chunk_size + off, process(d)))
                    .collect()
            })?;
        results.sort_by_key(|chunk| chunk.first().map_or(0, |&(i, _)| i));
        results.into_iter().flatten().collect()
    };
    let mut out = CollectOutcome {
        occurrences: Vec::new(),
        survivors: Vec::new(),
        quarantined: Vec::new(),
        retries: 0,
    };
    for (i, (doc_outcome, attempts)) in per_doc {
        out.retries += attempts.saturating_sub(1) as usize;
        match doc_outcome {
            DocOutcome::Survived(occs) => {
                out.survivors.push(i);
                out.occurrences.extend(occs);
            }
            DocOutcome::Dead(reason) => out.quarantined.push(Quarantined {
                doc_id: docs[i].id,
                title: docs[i].title.clone(),
                reason,
                attempts,
            }),
        }
    }
    Ok(out)
}

/// Indices of candidates clearing the acceptance threshold.
fn threshold_filter(candidates: &[CandidateFact], min_confidence: f64) -> Vec<usize> {
    (0..candidates.len()).filter(|&i| candidates[i].confidence >= min_confidence).collect()
}

/// The refinement stage with its graceful-degradation ladder.
///
/// [`Method::Reasoning`] and [`Method::FactorGraph`] run behind a panic
/// shield and a wall-clock budget; if either trips, the stage falls
/// back to the already-computed [`Method::Statistical`] scores and
/// records the [`Downgrade`]. The budget check is cooperative (the
/// result of an over-budget solve is discarded, not preempted), so a
/// budget of `0` forces the ladder deterministically.
fn refine_candidates(
    candidates: &mut [CandidateFact],
    types: &TypeIndex,
    cfg: &HarvestConfig,
) -> (Vec<usize>, Vec<Downgrade>) {
    enum Refined {
        Accepted(Vec<usize>),
        Marginals(Vec<f64>),
    }
    let method = cfg.method;
    match method {
        Method::PatternsOnly => (threshold_filter(candidates, cfg.min_confidence), Vec::new()),
        Method::Statistical => {
            scoring::apply_type_scoring(candidates, types, &ScoreConfig::default());
            (threshold_filter(candidates, cfg.min_confidence), Vec::new())
        }
        Method::Reasoning | Method::FactorGraph => {
            scoring::apply_type_scoring(candidates, types, &ScoreConfig::default());
            let budget = cfg.resilience.refine_budget_secs;
            let attempt = if budget <= 0.0 {
                Err(DowngradeReason::BudgetExceeded { budget_secs: budget, elapsed_secs: 0.0 })
            } else {
                let guard = BudgetGuard::start(budget);
                let shielded = catch_panic(|| {
                    if cfg.resilience.inject_refine_panic {
                        panic!("injected refinement fault (chaos hook)");
                    }
                    match method {
                        Method::Reasoning => {
                            let outcome = reasoning::reason_candidates(
                                candidates,
                                types,
                                &SolverConfig::default(),
                            );
                            Refined::Accepted(
                                outcome
                                    .accepted
                                    .into_iter()
                                    .filter(|&i| candidates[i].confidence >= cfg.min_confidence)
                                    .collect(),
                            )
                        }
                        Method::FactorGraph => Refined::Marginals(factorgraph::infer_candidates(
                            candidates,
                            types,
                            &GibbsConfig::default(),
                        )),
                        _ => unreachable!("outer match restricts the method"),
                    }
                });
                match shielded {
                    Ok(refined) if !guard.exceeded() => Ok(refined),
                    Ok(_) => Err(DowngradeReason::BudgetExceeded {
                        budget_secs: budget,
                        elapsed_secs: guard.elapsed_secs(),
                    }),
                    Err(payload) => Err(DowngradeReason::Panicked(payload)),
                }
            };
            match attempt {
                Ok(Refined::Accepted(accepted)) => (accepted, Vec::new()),
                Ok(Refined::Marginals(marginals)) => {
                    for (c, &m) in candidates.iter_mut().zip(&marginals) {
                        c.confidence = m;
                    }
                    (threshold_filter(candidates, cfg.min_confidence), Vec::new())
                }
                Err(reason) => {
                    let downgrade = Downgrade {
                        stage: "refinement",
                        from: method,
                        to: Method::Statistical,
                        reason,
                    };
                    (threshold_filter(candidates, cfg.min_confidence), vec![downgrade])
                }
            }
        }
    }
}

/// Below this many accepted facts per worker, sharded ingest costs more
/// in thread setup than it saves; the loader stays serial.
const MIN_FACTS_PER_SHARD: usize = 64;

/// Loads accepted candidates into the KB. With several workers and
/// enough facts, each worker builds a private [`KbShard`] (local
/// dictionary, no contention on the global store) and the shards merge
/// at a barrier in chunk order. The merge is bit-identical to a serial
/// ingest — same dictionary ids, same noisy-or confidence combination —
/// because each shard interns subject, relation, object in candidate
/// order and [`KnowledgeBase::merge_shards`] replays shards in order.
fn ingest_accepted(
    kb: &mut KnowledgeBase,
    accepted: &[CandidateFact],
    src: SourceId,
    workers: usize,
) -> Result<(), PipelineError> {
    let workers = workers.max(1);
    if workers == 1 || accepted.len() < 2 * MIN_FACTS_PER_SHARD {
        for c in accepted {
            let triple =
                Triple::new(kb.intern(&c.subject), kb.intern(&c.relation), kb.intern(&c.object));
            let span: Option<TimeSpan> = temporal::infer_span(&c.hints);
            kb.add_fact(Fact { triple, confidence: c.confidence.min(1.0), source: src, span });
        }
        return Ok(());
    }
    let chunk_size = accepted.len().div_ceil(workers);
    let chunks: Vec<&[CandidateFact]> = accepted.chunks(chunk_size).collect();
    let mut shards: Vec<(usize, KbShard)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(idx, chunk)| {
                scope.spawn(move |_| {
                    let mut shard = KbShard::new();
                    for c in *chunk {
                        let span: Option<TimeSpan> = temporal::infer_span(&c.hints);
                        shard.add(
                            &c.subject,
                            &c.relation,
                            &c.object,
                            c.confidence.min(1.0),
                            src,
                            span,
                        );
                    }
                    (idx, shard)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|p| PipelineError::WorkerPanic {
                    stage: "kb-load",
                    detail: panic_payload_to_string(p),
                })
            })
            .collect::<Result<Vec<_>, PipelineError>>()
    })
    .map_err(|p| PipelineError::WorkerPanic {
        stage: "kb-load",
        detail: panic_payload_to_string(p),
    })??;
    shards.sort_by_key(|&(idx, _)| idx);
    kb.merge_shards(shards.into_iter().map(|(_, shard)| shard));
    Ok(())
}

/// Runs the full pipeline over a corpus. Never panics on poisoned
/// documents: structurally corrupt or extractor-crashing documents are
/// quarantined into [`PipelineStats::quarantined`] and the harvest
/// proceeds over the survivors.
pub fn harvest(corpus: &Corpus, cfg: &HarvestConfig) -> Result<HarvestOutput, PipelineError> {
    let world = &corpus.world;
    let all_docs = corpus.all_docs();
    let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
    let entity_bound = world.entities.len() as u32;

    // ---- Phase 1: quarantine + occurrence collection (parallel) -----
    let obs = kb_obs::global();
    let t0 = Instant::now();
    let collect_span = obs.span("harvest.phase.collect_us");
    let collected = collect_resilient(
        &all_docs,
        &canonical_of,
        &cfg.collect,
        cfg.workers,
        &cfg.resilience,
        entity_bound,
    )?;
    collect_span.stop();
    let collect_secs = t0.elapsed().as_secs_f64();
    let docs: Vec<&Doc> = collected.survivors.iter().map(|&i| all_docs[i]).collect();
    let occurrences = collected.occurrences;
    let quarantined = collected.quarantined;
    let retries = collected.retries;

    // The remaining stages run over validated survivors only; shield
    // them anyway so no unexpected panic crosses the public API.
    catch_panic(|| -> Result<HarvestOutput, PipelineError> {
        // ---- Phase 2: entities & classes ----------------------------
        let taxonomy_span = obs.span("harvest.phase.taxonomy_us");
        let cat = category::harvest_categories(&docs, canonical_of);
        let hearst_inst = hearst::harvest_hearst(&docs, canonical_of);
        let instances = induce::merge_instances(&[(&cat.instances, 0.9), (&hearst_inst, 0.7)]);
        let mut subclass_edges = cat.subclass_edges.clone();
        for edge in induce::induce_subclasses(&instances, 0.95, 3) {
            if !subclass_edges.contains(&edge) {
                subclass_edges.push(edge);
            }
        }
        let types = scoring::build_type_index(&instances, &subclass_edges);
        taxonomy_span.stop();

        // ---- Phase 3: distant supervision + extraction --------------
        let t1 = Instant::now();
        let extract_span = obs.span("harvest.phase.extract_us");
        let gold_facts = gold::gold_fact_strings(world);
        let seeds = distant::stratified_seeds(&gold_facts, cfg.seed_fraction);
        let model = distant::train(&occurrences, &seeds, &cfg.train);
        let mut candidates = extract::extract_candidates(&occurrences, &model, &cfg.extract);
        if cfg.generalize {
            use crate::facts::generalize::{extract_generalized, generalize, GeneralizeConfig};
            let skeletons = generalize(&model, &GeneralizeConfig::default());
            let extra = extract_generalized(&occurrences, &model, &skeletons);
            // Merge: generalized candidates are new keys by construction
            // (they only cover occurrences the exact model missed), but a
            // fact can be seen both ways through different occurrences.
            let mut by_key: std::collections::HashMap<_, usize> =
                candidates.iter().enumerate().map(|(i, c)| (c.key(), i)).collect();
            for g in extra {
                match by_key.get(&g.key()) {
                    Some(&i) => {
                        let c = &mut candidates[i];
                        c.confidence = 1.0 - (1.0 - c.confidence) * (1.0 - g.confidence);
                        c.support += g.support;
                        c.hints.extend(g.hints);
                    }
                    None => {
                        by_key.insert(g.key(), candidates.len());
                        candidates.push(g);
                    }
                }
            }
        }

        extract_span.stop();

        // ---- Phase 4: refinement (with degradation ladder) ----------
        let refine_span = obs.span("harvest.phase.refine_us");
        let (accepted_idx, downgrades) = refine_candidates(&mut candidates, &types, cfg);
        let accepted: Vec<CandidateFact> =
            accepted_idx.iter().map(|&i| candidates[i].clone()).collect();
        refine_span.stop();
        let infer_secs = t1.elapsed().as_secs_f64();

        // ---- Phase 5: load KB (sharded ingest + merge barrier) ------
        let load_span = obs.span("harvest.phase.load_us");
        let mut kb = KnowledgeBase::new();
        let src = kb.register_source("harvest");
        induce::load_into_kb(&mut kb, &instances, &subclass_edges, "taxonomy")?;
        ingest_accepted(&mut kb, &accepted, src, cfg.workers)?;
        // Surface forms from mention annotations (the anchor-text signal).
        let en = kb.labels.lang("en");
        for doc in &docs {
            for m in &doc.mentions {
                let term = kb.intern(canonical_of(m.entity));
                kb.labels.add(term, en, &m.surface);
            }
        }

        load_span.stop();

        let stats = PipelineStats {
            docs: docs.len(),
            occurrences: occurrences.len(),
            patterns_learned: model.len(),
            candidates: candidates.len(),
            accepted: accepted.len(),
            instances: instances.len(),
            collect_secs,
            infer_secs,
            quarantined,
            retries,
            downgrades,
        };
        record_pipeline_metrics(&stats);
        Ok(HarvestOutput { kb, candidates, accepted, instances, subclass_edges, seeds, stats })
    })
    .map_err(|detail| PipelineError::StagePanic { stage: "harvest", detail })?
}

/// Publishes one harvest run's volume and resilience ledger as
/// `harvest.*` counters in the global [`kb_obs`] registry (counters
/// accumulate across runs; `kbkit metrics` resets between phases).
fn record_pipeline_metrics(stats: &PipelineStats) {
    let obs = kb_obs::global();
    obs.counter("harvest.docs.processed").add(stats.docs as u64);
    obs.counter("harvest.docs.quarantined").add(stats.quarantined.len() as u64);
    obs.counter("harvest.facts.candidates").add(stats.candidates as u64);
    obs.counter("harvest.facts.accepted").add(stats.accepted as u64);
    obs.counter("harvest.facts.rejected")
        .add(stats.candidates.saturating_sub(stats.accepted) as u64);
    obs.counter("harvest.resilience.retries").add(stats.retries as u64);
    obs.counter("harvest.resilience.downgrades").add(stats.downgrades.len() as u64);
}

/// What one incremental batch produced: the frozen delta (ready for
/// [`SegmentedSnapshot::with_delta`] or
/// `QueryService::apply_delta`) plus the batch's volume and
/// dead-letter ledger.
///
/// [`SegmentedSnapshot::with_delta`]: kb_store::SegmentedSnapshot::with_delta
#[derive(Debug)]
pub struct BatchOutcome {
    /// The batch's accepted facts as a delta segment, frozen against
    /// the view passed to [`IncrementalHarvester::harvest_batch`].
    pub delta: kb_store::DeltaSegment,
    /// Candidates extracted from the batch.
    pub candidates: usize,
    /// Candidates accepted into the delta.
    pub accepted: usize,
    /// Pattern occurrences collected from the batch.
    pub occurrences: usize,
    /// Documents quarantined within the batch.
    pub quarantined: Vec<Quarantined>,
}

/// Incremental harvesting: freeze the *models* once, then turn each
/// later document batch into a [`kb_store::DeltaSegment`] instead of
/// rebuilding the knowledge base from scratch.
///
/// [`bootstrap`](Self::bootstrap) runs the full pipeline over an
/// initial document set — learning the pattern model, the type index
/// and the distant-supervision seeds — and returns the populated base
/// KB. [`harvest_batch`](Self::harvest_batch) then processes a batch
/// with the frozen models: resilient collection → extraction →
/// statistical type scoring → threshold, loading the survivors into a
/// throwaway [`KbBuilder`](kb_store::KbBuilder) that freezes as a
/// delta against the currently-served view. Batches use the
/// statistical refinement rung (not the global reasoner, whose
/// consistency constraints need the whole fact set) so per-batch
/// install cost stays proportional to the batch, not the base — the
/// periodic compaction or full rebuild restores the stronger
/// refinement.
pub struct IncrementalHarvester {
    cfg: HarvestConfig,
    model: distant::PatternModel,
    types: TypeIndex,
}

impl IncrementalHarvester {
    /// Runs the full pipeline over `corpus` (the bootstrap corpus),
    /// freezing the learned pattern model and type index for later
    /// batches. Returns the harvester plus the bootstrap output (whose
    /// `kb` becomes the segmented base).
    pub fn bootstrap(
        corpus: &Corpus,
        cfg: &HarvestConfig,
    ) -> Result<(Self, HarvestOutput), PipelineError> {
        let out = harvest(corpus, cfg)?;
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let seeds = distant::stratified_seeds(&gold_facts, cfg.seed_fraction);
        // Re-derive the frozen models from the bootstrap artifacts: the
        // occurrences are not kept in HarvestOutput, so retrain on the
        // bootstrap corpus once (same inputs → same model).
        let all_docs = corpus.all_docs();
        let world = &corpus.world;
        let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
        let collected = collect_resilient(
            &all_docs,
            &canonical_of,
            &cfg.collect,
            cfg.workers,
            &cfg.resilience,
            world.entities.len() as u32,
        )?;
        let model = distant::train(&collected.occurrences, &seeds, &cfg.train);
        let types = scoring::build_type_index(&out.instances, &out.subclass_edges);
        Ok((Self { cfg: cfg.clone(), model, types }, out))
    }

    /// Harvests one document batch with the frozen models and freezes
    /// the accepted facts as a delta against `view` (which must be the
    /// currently-served [`SegmentedSnapshot`] — the sequential-stacking
    /// contract).
    ///
    /// [`SegmentedSnapshot`]: kb_store::SegmentedSnapshot
    pub fn harvest_batch(
        &self,
        world: &kb_corpus::World,
        docs: &[&Doc],
        view: &kb_store::SegmentedSnapshot,
    ) -> Result<BatchOutcome, PipelineError> {
        let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
        let collected = collect_resilient(
            docs,
            &canonical_of,
            &self.cfg.collect,
            self.cfg.workers,
            &self.cfg.resilience,
            world.entities.len() as u32,
        )?;
        catch_panic(|| -> Result<BatchOutcome, PipelineError> {
            let mut candidates =
                extract::extract_candidates(&collected.occurrences, &self.model, &self.cfg.extract);
            scoring::apply_type_scoring(&mut candidates, &self.types, &ScoreConfig::default());
            let accepted_idx = threshold_filter(&candidates, self.cfg.min_confidence);

            let mut b = kb_store::KbBuilder::new();
            let src = b.register_source("harvest");
            for &i in &accepted_idx {
                let c = &candidates[i];
                let triple =
                    Triple::new(b.intern(&c.subject), b.intern(&c.relation), b.intern(&c.object));
                let span: Option<TimeSpan> = temporal::infer_span(&c.hints);
                b.add_fact(Fact { triple, confidence: c.confidence.min(1.0), source: src, span });
            }
            let delta = b.freeze_delta(view);
            Ok(BatchOutcome {
                delta,
                candidates: candidates.len(),
                accepted: accepted_idx.len(),
                occurrences: collected.occurrences.len(),
                quarantined: collected.quarantined,
            })
        })
        .map_err(|detail| PipelineError::StagePanic { stage: "harvest-batch", detail })?
    }
}

/// Evaluates accepted facts against gold, excluding the seeds from both
/// sides (we score what the system *discovered*, not what it was told).
pub fn evaluate_discovered(
    accepted: &[CandidateFact],
    gold_facts: &HashSet<FactKey>,
    seeds: &HashSet<FactKey>,
) -> gold::PrF1 {
    let predicted: HashSet<FactKey> =
        accepted.iter().map(CandidateFact::key).filter(|k| !seeds.contains(k)).collect();
    let target: HashSet<FactKey> = gold_facts.difference(seeds).cloned().collect();
    gold::pr_f1(&predicted, &target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::RetryPolicy;
    use kb_corpus::{CorpusConfig, EntityId, Mention};
    use kb_store::KbRead;

    fn run(method: Method) -> (Corpus, HarvestOutput) {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let cfg = HarvestConfig { method, workers: 2, ..Default::default() };
        let out = harvest(&corpus, &cfg).expect("harvest");
        (corpus, out)
    }

    #[test]
    fn pipeline_produces_a_populated_kb() {
        let (_, out) = run(Method::Reasoning);
        assert!(out.stats.occurrences > 0);
        assert!(out.stats.candidates > 0);
        assert!(out.stats.accepted > 0);
        assert!(!out.kb.is_empty());
        assert!(out.kb.labels.label_count() > 0);
        assert!(out.kb.taxonomy.class_count() > 0);
        assert!(out.stats.quarantined.is_empty());
        assert!(!out.stats.downgraded());
    }

    #[test]
    fn discovered_facts_beat_coin_flip_precision() {
        let (corpus, out) = run(Method::Reasoning);
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m = evaluate_discovered(&out.accepted, &gold_facts, &out.seeds);
        assert!(m.precision > 0.5, "precision {}", m.precision);
        // The tiny corpus shows each rare paraphrase only once or twice,
        // so min-support filtering caps recall; the standard corpus
        // (experiment T3) reaches far higher recall.
        assert!(m.recall > 0.1, "recall {}", m.recall);
    }

    #[test]
    fn reasoning_never_loses_precision_vs_patterns_only() {
        let (corpus, po) = run(Method::PatternsOnly);
        let (_, rs) = run(Method::Reasoning);
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m_po = evaluate_discovered(&po.accepted, &gold_facts, &po.seeds);
        let m_rs = evaluate_discovered(&rs.accepted, &gold_facts, &rs.seeds);
        assert!(
            m_rs.precision >= m_po.precision - 0.02,
            "reasoning {} vs patterns {}",
            m_rs.precision,
            m_po.precision
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let out1 = harvest(&corpus, &HarvestConfig { workers: 1, ..Default::default() })
            .expect("harvest x1");
        let out4 = harvest(&corpus, &HarvestConfig { workers: 4, ..Default::default() })
            .expect("harvest x4");
        assert_eq!(out1.stats.occurrences, out4.stats.occurrences);
        let keys1: Vec<_> = out1.accepted.iter().map(CandidateFact::key).collect();
        let keys4: Vec<_> = out4.accepted.iter().map(CandidateFact::key).collect();
        assert_eq!(keys1, keys4);
        // The sharded KB load must be bit-identical to the serial one:
        // same dictionary ids, same facts, same confidences.
        assert_eq!(
            kb_store::ntriples::to_string(&out1.kb),
            kb_store::ntriples::to_string(&out4.kb),
        );
    }

    #[test]
    fn sharded_ingest_matches_serial_for_large_candidate_sets() {
        // Enough synthetic candidates to force the parallel shard path
        // (>= 2 * MIN_FACTS_PER_SHARD), with duplicate keys so the
        // noisy-or merge order matters.
        let candidates: Vec<CandidateFact> = (0..(4 * MIN_FACTS_PER_SHARD))
            .map(|i| CandidateFact {
                subject: format!("S{}", i % 97),
                relation: format!("r{}", i % 7),
                object: format!("O{}", i % 53),
                confidence: 0.3 + 0.6 * ((i % 11) as f64 / 11.0),
                support: 1,
                docs: 1,
                patterns: 1,
                hints: Vec::new(),
            })
            .collect();
        let build = |workers: usize| {
            let mut kb = KnowledgeBase::new();
            let src = kb.register_source("harvest");
            ingest_accepted(&mut kb, &candidates, src, workers).expect("ingest");
            kb
        };
        let serial = build(1);
        for workers in [2, 3, 4, 7] {
            let sharded = build(workers);
            assert_eq!(serial.len(), sharded.len(), "workers={workers}");
            assert_eq!(
                kb_store::ntriples::to_string(&serial),
                kb_store::ntriples::to_string(&sharded),
                "workers={workers}",
            );
        }
    }

    #[test]
    fn factor_graph_method_runs_end_to_end() {
        let (corpus, out) = run(Method::FactorGraph);
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m = evaluate_discovered(&out.accepted, &gold_facts, &out.seeds);
        assert!(m.precision > 0.4, "precision {}", m.precision);
    }

    #[test]
    fn accepted_facts_carry_temporal_spans_when_hinted() {
        let (_, out) = run(Method::Reasoning);
        let spanned = out.kb.iter().filter(|f| f.span.is_some()).count();
        assert!(spanned > 0, "some harvested facts should carry time spans");
    }

    // ---- incremental ------------------------------------------------

    /// Incremental mode end to end: bootstrap over a corpus prefix,
    /// stream the held-out documents as delta batches, and verify the
    /// segmented view grows without touching the base.
    #[test]
    fn incremental_batches_stack_deltas_on_the_bootstrap_base() {
        use kb_store::{KbRead, SegmentedSnapshot};
        use std::sync::Arc;

        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let holdout = (corpus.articles.len() / 3).max(2);
        let split = corpus.articles.len() - holdout;
        let boot = Corpus {
            world: corpus.world.clone(),
            articles: corpus.articles[..split].to_vec(),
            overviews: corpus.overviews.clone(),
            web_pages: corpus.web_pages.clone(),
            essays: corpus.essays.clone(),
            posts: Vec::new(),
        };
        let cfg = HarvestConfig { method: Method::Statistical, workers: 2, ..Default::default() };
        let (inc, out) = IncrementalHarvester::bootstrap(&boot, &cfg).expect("bootstrap");
        let base = out.kb.snapshot().into_shared();
        let base_len = base.len();
        let mut view = SegmentedSnapshot::from_base(base);

        let held: Vec<&Doc> = corpus.articles[split..].iter().collect();
        let mut accepted_total = 0usize;
        for chunk in held.chunks(2) {
            let outcome = inc.harvest_batch(&corpus.world, chunk, &view).expect("batch");
            assert!(outcome.occurrences > 0, "held-out articles must yield occurrences");
            assert!(outcome.quarantined.is_empty());
            accepted_total += outcome.accepted;
            view = view.with_delta(Arc::new(outcome.delta));
        }
        assert!(view.delta_count() >= 1);
        assert!(accepted_total > 0, "frozen model should accept facts from held-out docs");
        assert!(
            view.len() > base_len,
            "deltas must add net-new facts: base {base_len}, view {}",
            view.len()
        );
        // The stack compacts back to a monolithic snapshot with the
        // same answers.
        let compacted = view.compact();
        assert_eq!(compacted.len(), view.len());
    }

    // ---- resilience -------------------------------------------------

    #[test]
    fn corrupt_docs_are_quarantined_not_fatal() {
        let mut corpus = Corpus::generate(&CorpusConfig::tiny());
        // Dangle a mention past the end of the first article's text.
        let victim_id = corpus.articles[0].id;
        let len = corpus.articles[0].text.len();
        corpus.articles[0].mentions.push(Mention {
            start: len + 10,
            end: len + 20,
            entity: EntityId(0),
            surface: "ghost".into(),
        });
        let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest survives poison");
        assert_eq!(out.stats.quarantined_count(), 1);
        let dead = &out.stats.quarantined[0];
        assert_eq!(dead.doc_id, victim_id);
        assert!(matches!(dead.reason, QuarantineReason::Defect(_)), "{:?}", dead.reason);
        assert_eq!(out.stats.docs, corpus.all_docs().len() - 1);
        assert!(!out.kb.is_empty());
    }

    #[test]
    fn extractor_panics_are_caught_retried_and_dead_lettered() {
        // Point one article's mentions at a phantom entity and disable
        // the validation bound, so the document reaches the extractor
        // and panics there — exercising the catch_unwind + retry path.
        let mut corpus = Corpus::generate(&CorpusConfig::tiny());
        let poison_id = corpus.articles[0].id;
        // Alternate two phantom ids: the extractor skips same-entity
        // mention pairs, so a single shared phantom id would never be
        // resolved (and never panic). The ids stay below the disabled
        // validation bound so the document reaches the extractor.
        for (i, m) in corpus.articles[0].mentions.iter_mut().enumerate() {
            m.entity = EntityId(1_000_000 + (i as u32 % 2));
        }
        let docs = corpus.all_docs();
        let total = docs.len();
        let res = ResilienceConfig { retry: RetryPolicy::immediate(3), ..Default::default() };
        let world = &corpus.world;
        let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
        let outcome = collect_resilient(
            &docs,
            &canonical_of,
            &CollectConfig::default(),
            2,
            &res,
            u32::MAX, // validation cannot see the phantom: panic path
        )
        .expect("resilient collection");
        assert_eq!(outcome.quarantined.len(), 1);
        let dead = &outcome.quarantined[0];
        assert_eq!(dead.doc_id, poison_id);
        assert!(matches!(dead.reason, QuarantineReason::Panic(_)), "{:?}", dead.reason);
        assert_eq!(dead.attempts, 3, "panic should be retried to exhaustion");
        assert_eq!(outcome.retries, 2);
        assert_eq!(outcome.survivors.len(), total - 1);
    }

    #[test]
    fn zero_budget_downgrades_reasoning_to_statistical() {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let statistical =
            harvest(&corpus, &HarvestConfig { method: Method::Statistical, ..Default::default() })
                .expect("statistical harvest");
        let mut cfg = HarvestConfig { method: Method::Reasoning, ..Default::default() };
        cfg.resilience.refine_budget_secs = 0.0;
        let degraded = harvest(&corpus, &cfg).expect("degraded harvest");
        assert!(degraded.stats.downgraded());
        let d = &degraded.stats.downgrades[0];
        assert_eq!(d.from, Method::Reasoning);
        assert_eq!(d.to, Method::Statistical);
        assert!(matches!(d.reason, DowngradeReason::BudgetExceeded { .. }));
        // Degraded output is exactly the statistical output.
        let a: Vec<_> = degraded.accepted.iter().map(CandidateFact::key).collect();
        let b: Vec<_> = statistical.accepted.iter().map(CandidateFact::key).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn injected_refinement_panic_takes_the_ladder() {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        for method in [Method::Reasoning, Method::FactorGraph] {
            let mut cfg = HarvestConfig { method, ..Default::default() };
            cfg.resilience.inject_refine_panic = true;
            let out = harvest(&corpus, &cfg).expect("harvest survives refinement panic");
            assert!(out.stats.downgraded(), "{method:?} should downgrade");
            let d = &out.stats.downgrades[0];
            assert_eq!(d.from, method);
            assert_eq!(d.to, Method::Statistical);
            assert!(matches!(d.reason, DowngradeReason::Panicked(_)), "{:?}", d.reason);
            assert!(!out.accepted.is_empty(), "degraded run still produces facts");
        }
    }

    #[test]
    fn statistical_and_patterns_only_never_downgrade() {
        for method in [Method::PatternsOnly, Method::Statistical] {
            let corpus = Corpus::generate(&CorpusConfig::tiny());
            let mut cfg = HarvestConfig { method, ..Default::default() };
            cfg.resilience.refine_budget_secs = 0.0;
            let out = harvest(&corpus, &cfg).expect("harvest");
            assert!(!out.stats.downgraded(), "{method:?} has no ladder to take");
        }
    }
}
