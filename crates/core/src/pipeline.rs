//! The end-to-end harvesting pipeline: documents in, populated
//! knowledge base out — with document-parallel occurrence collection
//! (the "scalable distributed algorithms" of the tutorial, realized as
//! a multi-threaded worker pool).

use std::collections::HashSet;
use std::time::Instant;

use kb_corpus::{gold, Corpus, Doc};
use kb_store::{Fact, KnowledgeBase, TimeSpan, Triple};

use crate::facts::distant::{self, FactKey, TrainConfig};
use crate::facts::extract::{self, CandidateFact, ExtractConfig};
use crate::facts::patterns::{self, CollectConfig, PatternOccurrence};
use crate::facts::scoring::{self, ScoreConfig};
use crate::factorgraph::{self, GibbsConfig};
use crate::reasoning::{self, SolverConfig};
use crate::taxonomy::induce::{self, MergedInstance};
use crate::taxonomy::{category, hearst};
use crate::temporal;

/// Which refinement stack to run after pattern extraction — the rows of
/// experiment T3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Raw pattern extraction only.
    PatternsOnly,
    /// + statistical type-aware scoring.
    Statistical,
    /// + weighted-MaxSat consistency reasoning.
    Reasoning,
    /// Statistical scoring + factor-graph joint inference.
    FactorGraph,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct HarvestConfig {
    /// Fraction of gold facts revealed as distant-supervision seeds.
    pub seed_fraction: f64,
    /// Final acceptance threshold on candidate confidence.
    pub min_confidence: f64,
    /// Worker threads for occurrence collection.
    pub workers: usize,
    /// Refinement method.
    pub method: Method,
    /// Whether to add PrefixSpan-generalized pattern matches (extra
    /// recall on unseen paraphrases, slightly discounted confidence).
    pub generalize: bool,
    /// Occurrence collection parameters.
    pub collect: CollectConfig,
    /// Distant-supervision training parameters.
    pub train: TrainConfig,
    /// Extraction parameters.
    pub extract: ExtractConfig,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        Self {
            seed_fraction: 0.25,
            min_confidence: 0.5,
            workers: 4,
            method: Method::Reasoning,
            generalize: false,
            collect: CollectConfig::default(),
            train: TrainConfig::default(),
            extract: ExtractConfig::default(),
        }
    }
}

/// Wall-clock timings and counters per stage.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Documents processed.
    pub docs: usize,
    /// Pattern occurrences collected.
    pub occurrences: usize,
    /// (pattern, orientation, relation) entries learned.
    pub patterns_learned: usize,
    /// Candidates extracted.
    pub candidates: usize,
    /// Candidates accepted into the KB.
    pub accepted: usize,
    /// Instance assertions merged.
    pub instances: usize,
    /// Seconds spent collecting occurrences.
    pub collect_secs: f64,
    /// Seconds spent in training + extraction + refinement.
    pub infer_secs: f64,
}

/// Everything the pipeline produces.
#[derive(Debug)]
pub struct HarvestOutput {
    /// The populated knowledge base.
    pub kb: KnowledgeBase,
    /// All scored candidates after the configured refinement.
    pub candidates: Vec<CandidateFact>,
    /// The accepted subset (confidence ≥ threshold, reasoner-approved).
    pub accepted: Vec<CandidateFact>,
    /// Merged taxonomy instances.
    pub instances: Vec<MergedInstance>,
    /// Applied subclass edges.
    pub subclass_edges: Vec<(String, String)>,
    /// The distant-supervision seeds used (for seed-excluded evaluation).
    pub seeds: HashSet<FactKey>,
    /// Stage statistics.
    pub stats: PipelineStats,
}

/// Collects occurrences over `docs` with `workers` threads. Output
/// order equals the serial doc order regardless of worker count.
pub fn collect_parallel<'a>(
    docs: &[&Doc],
    canonical_of: &(impl Fn(kb_corpus::EntityId) -> &'a str + Sync),
    cfg: &CollectConfig,
    workers: usize,
) -> Vec<PatternOccurrence> {
    let workers = workers.max(1);
    if workers == 1 || docs.len() < 2 {
        return docs
            .iter()
            .flat_map(|d| patterns::collect_occurrences(d, canonical_of, cfg))
            .collect();
    }
    let chunk_size = docs.len().div_ceil(workers);
    let chunks: Vec<&[&Doc]> = docs.chunks(chunk_size).collect();
    let mut results: Vec<(usize, Vec<PatternOccurrence>)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(idx, chunk)| {
                scope.spawn(move |_| {
                    let occs: Vec<PatternOccurrence> = chunk
                        .iter()
                        .flat_map(|d| patterns::collect_occurrences(d, canonical_of, cfg))
                        .collect();
                    (idx, occs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope failed");
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().flat_map(|(_, occs)| occs).collect()
}

/// The per-document analysis stage: pattern-occurrence collection plus
/// raw Open IE extraction — the pipeline's "map" work, parallelized
/// over document chunks for experiment F2. Output order is independent
/// of the worker count.
pub fn analyze_parallel<'a>(
    docs: &[&Doc],
    canonical_of: &(impl Fn(kb_corpus::EntityId) -> &'a str + Sync),
    collect_cfg: &CollectConfig,
    openie_cfg: &crate::openie::OpenIeConfig,
    workers: usize,
) -> (Vec<PatternOccurrence>, Vec<crate::openie::OpenFact>) {
    let workers = workers.max(1);
    let analyze_chunk = |chunk: &[&Doc]| {
        let mut occs = Vec::new();
        let mut open = Vec::new();
        for d in chunk {
            occs.extend(patterns::collect_occurrences(d, canonical_of, collect_cfg));
            open.extend(crate::openie::extract_raw(d, openie_cfg));
        }
        (occs, open)
    };
    if workers == 1 || docs.len() < 2 {
        return analyze_chunk(docs);
    }
    let chunk_size = docs.len().div_ceil(workers);
    let chunks: Vec<&[&Doc]> = docs.chunks(chunk_size).collect();
    let mut results: Vec<(usize, (Vec<PatternOccurrence>, Vec<crate::openie::OpenFact>))> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(idx, chunk)| scope.spawn(move |_| (idx, analyze_chunk(chunk))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scope failed");
    results.sort_by_key(|&(idx, _)| idx);
    let mut occs = Vec::new();
    let mut open = Vec::new();
    for (_, (o, f)) in results {
        occs.extend(o);
        open.extend(f);
    }
    (occs, open)
}

/// Runs the full pipeline over a corpus.
pub fn harvest(corpus: &Corpus, cfg: &HarvestConfig) -> HarvestOutput {
    let world = &corpus.world;
    let docs = corpus.all_docs();
    let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();

    // ---- Phase 1: entities & classes -------------------------------
    let cat = category::harvest_categories(&docs, canonical_of);
    let hearst_inst = hearst::harvest_hearst(&docs, canonical_of);
    let instances = induce::merge_instances(&[(&cat.instances, 0.9), (&hearst_inst, 0.7)]);
    let mut subclass_edges = cat.subclass_edges.clone();
    for edge in induce::induce_subclasses(&instances, 0.95, 3) {
        if !subclass_edges.contains(&edge) {
            subclass_edges.push(edge);
        }
    }
    let types = scoring::build_type_index(&instances, &subclass_edges);

    // ---- Phase 2: occurrence collection (parallel) ------------------
    let t0 = Instant::now();
    let occurrences = collect_parallel(&docs, &canonical_of, &cfg.collect, cfg.workers);
    let collect_secs = t0.elapsed().as_secs_f64();

    // ---- Phase 3: distant supervision + extraction ------------------
    let t1 = Instant::now();
    let gold_facts = gold::gold_fact_strings(world);
    let seeds = distant::stratified_seeds(&gold_facts, cfg.seed_fraction);
    let model = distant::train(&occurrences, &seeds, &cfg.train);
    let mut candidates = extract::extract_candidates(&occurrences, &model, &cfg.extract);
    if cfg.generalize {
        use crate::facts::generalize::{extract_generalized, generalize, GeneralizeConfig};
        let skeletons = generalize(&model, &GeneralizeConfig::default());
        let extra = extract_generalized(&occurrences, &model, &skeletons);
        // Merge: generalized candidates are new keys by construction
        // (they only cover occurrences the exact model missed), but a
        // fact can be seen both ways through different occurrences.
        let mut by_key: std::collections::HashMap<_, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (c.key(), i))
            .collect();
        for g in extra {
            match by_key.get(&g.key()) {
                Some(&i) => {
                    let c = &mut candidates[i];
                    c.confidence = 1.0 - (1.0 - c.confidence) * (1.0 - g.confidence);
                    c.support += g.support;
                    c.hints.extend(g.hints);
                }
                None => {
                    by_key.insert(g.key(), candidates.len());
                    candidates.push(g);
                }
            }
        }
    }

    // ---- Phase 4: refinement ----------------------------------------
    let accepted_idx: Vec<usize> = match cfg.method {
        Method::PatternsOnly => (0..candidates.len())
            .filter(|&i| candidates[i].confidence >= cfg.min_confidence)
            .collect(),
        Method::Statistical => {
            scoring::apply_type_scoring(&mut candidates, &types, &ScoreConfig::default());
            (0..candidates.len())
                .filter(|&i| candidates[i].confidence >= cfg.min_confidence)
                .collect()
        }
        Method::Reasoning => {
            scoring::apply_type_scoring(&mut candidates, &types, &ScoreConfig::default());
            let outcome = reasoning::reason_candidates(&candidates, &types, &SolverConfig::default());
            outcome
                .accepted
                .into_iter()
                .filter(|&i| candidates[i].confidence >= cfg.min_confidence)
                .collect()
        }
        Method::FactorGraph => {
            scoring::apply_type_scoring(&mut candidates, &types, &ScoreConfig::default());
            let marginals = factorgraph::infer_candidates(&candidates, &types, &GibbsConfig::default());
            for (c, &m) in candidates.iter_mut().zip(&marginals) {
                c.confidence = m;
            }
            (0..candidates.len())
                .filter(|&i| candidates[i].confidence >= cfg.min_confidence)
                .collect()
        }
    };
    let accepted: Vec<CandidateFact> = accepted_idx.iter().map(|&i| candidates[i].clone()).collect();
    let infer_secs = t1.elapsed().as_secs_f64();

    // ---- Phase 5: load KB -------------------------------------------
    let mut kb = KnowledgeBase::new();
    let src = kb.register_source("harvest");
    induce::load_into_kb(&mut kb, &instances, &subclass_edges, "taxonomy")
        .expect("taxonomy load cannot fail structurally");
    for c in &accepted {
        let triple = Triple::new(kb.intern(&c.subject), kb.intern(&c.relation), kb.intern(&c.object));
        let span: Option<TimeSpan> = temporal::infer_span(&c.hints);
        kb.add_fact(Fact { triple, confidence: c.confidence.min(1.0), source: src, span });
    }
    // Surface forms from mention annotations (the anchor-text signal).
    let en = kb.labels.lang("en");
    for doc in &docs {
        for m in &doc.mentions {
            let term = kb.intern(canonical_of(m.entity));
            kb.labels.add(term, en, &m.surface);
        }
    }

    let stats = PipelineStats {
        docs: docs.len(),
        occurrences: occurrences.len(),
        patterns_learned: model.len(),
        candidates: candidates.len(),
        accepted: accepted.len(),
        instances: instances.len(),
        collect_secs,
        infer_secs,
    };
    HarvestOutput {
        kb,
        candidates,
        accepted,
        instances,
        subclass_edges,
        seeds,
        stats,
    }
}

/// Evaluates accepted facts against gold, excluding the seeds from both
/// sides (we score what the system *discovered*, not what it was told).
pub fn evaluate_discovered(
    accepted: &[CandidateFact],
    gold_facts: &HashSet<FactKey>,
    seeds: &HashSet<FactKey>,
) -> gold::PrF1 {
    let predicted: HashSet<FactKey> = accepted
        .iter()
        .map(CandidateFact::key)
        .filter(|k| !seeds.contains(k))
        .collect();
    let target: HashSet<FactKey> = gold_facts.difference(seeds).cloned().collect();
    gold::pr_f1(&predicted, &target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::CorpusConfig;

    fn run(method: Method) -> (Corpus, HarvestOutput) {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let cfg = HarvestConfig { method, workers: 2, ..Default::default() };
        let out = harvest(&corpus, &cfg);
        (corpus, out)
    }

    #[test]
    fn pipeline_produces_a_populated_kb() {
        let (_, out) = run(Method::Reasoning);
        assert!(out.stats.occurrences > 0);
        assert!(out.stats.candidates > 0);
        assert!(out.stats.accepted > 0);
        assert!(!out.kb.is_empty());
        assert!(out.kb.labels.label_count() > 0);
        assert!(out.kb.taxonomy.class_count() > 0);
    }

    #[test]
    fn discovered_facts_beat_coin_flip_precision() {
        let (corpus, out) = run(Method::Reasoning);
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m = evaluate_discovered(&out.accepted, &gold_facts, &out.seeds);
        assert!(m.precision > 0.5, "precision {}", m.precision);
        // The tiny corpus shows each rare paraphrase only once or twice,
        // so min-support filtering caps recall; the standard corpus
        // (experiment T3) reaches far higher recall.
        assert!(m.recall > 0.1, "recall {}", m.recall);
    }

    #[test]
    fn reasoning_never_loses_precision_vs_patterns_only() {
        let (corpus, po) = run(Method::PatternsOnly);
        let (_, rs) = run(Method::Reasoning);
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m_po = evaluate_discovered(&po.accepted, &gold_facts, &po.seeds);
        let m_rs = evaluate_discovered(&rs.accepted, &gold_facts, &rs.seeds);
        assert!(
            m_rs.precision >= m_po.precision - 0.02,
            "reasoning {} vs patterns {}",
            m_rs.precision,
            m_po.precision
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let out1 = harvest(&corpus, &HarvestConfig { workers: 1, ..Default::default() });
        let out4 = harvest(&corpus, &HarvestConfig { workers: 4, ..Default::default() });
        assert_eq!(out1.stats.occurrences, out4.stats.occurrences);
        let keys1: Vec<_> = out1.accepted.iter().map(CandidateFact::key).collect();
        let keys4: Vec<_> = out4.accepted.iter().map(CandidateFact::key).collect();
        assert_eq!(keys1, keys4);
    }

    #[test]
    fn factor_graph_method_runs_end_to_end() {
        let (corpus, out) = run(Method::FactorGraph);
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m = evaluate_discovered(&out.accepted, &gold_facts, &out.seeds);
        assert!(m.precision > 0.4, "precision {}", m.precision);
    }

    #[test]
    fn accepted_facts_carry_temporal_spans_when_hinted() {
        let (_, out) = run(Method::Reasoning);
        let spanned = out
            .kb
            .iter()
            .filter(|f| f.span.is_some())
            .count();
        assert!(spanned > 0, "some harvested facts should carry time spans");
    }
}
