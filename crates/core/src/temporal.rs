//! Temporal knowledge harvesting (tutorial §3): tagging temporal
//! expressions and inferring the timespans during which facts hold
//! (YAGO2 lineage).
//!
//! The tagger recognizes year expressions (`in 1976`,
//! `from 1970 to 1985`); the inference step aggregates the hints
//! attached to a candidate fact's supporting sentences into a single
//! [`TimeSpan`] by majority vote over begin years (and end years when
//! present).

use std::collections::HashMap;

use kb_store::{TimePoint, TimeSpan};

use crate::facts::patterns::TimeHint;

/// A tagged temporal expression in text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalTag {
    /// Byte offset where the expression starts.
    pub start: usize,
    /// Byte offset one past its end.
    pub end: usize,
    /// The hint it denotes.
    pub hint: TimeHint,
}

/// Tags all temporal expressions in `text`: every `from Y1 to Y2` span
/// and every remaining `in Y`.
pub fn tag_temporal(text: &str) -> Vec<TemporalTag> {
    use kb_nlp::token::{tokenize, TokenKind};
    let toks = tokenize(text);
    let mut tags: Vec<TemporalTag> = Vec::new();
    let mut consumed = vec![false; toks.len()];
    // from Y1 to Y2
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].kind == TokenKind::Word
            && toks[i].lower() == "from"
            && toks[i + 1].kind == TokenKind::Number
            && toks[i + 2].lower() == "to"
            && toks[i + 3].kind == TokenKind::Number
        {
            let (Some(a), Some(b)) = (
                crate::facts::patterns::parse_year(&toks[i + 1].text),
                crate::facts::patterns::parse_year(&toks[i + 3].text),
            ) else {
                continue;
            };
            tags.push(TemporalTag {
                start: toks[i].start,
                end: toks[i + 3].end,
                hint: TimeHint { begin: Some(a), end: Some(b) },
            });
            for c in consumed.iter_mut().skip(i).take(4) {
                *c = true;
            }
        }
    }
    // in Y
    for i in 0..toks.len().saturating_sub(1) {
        if consumed[i] || consumed[i + 1] {
            continue;
        }
        if toks[i].kind == TokenKind::Word
            && toks[i].lower() == "in"
            && toks[i + 1].kind == TokenKind::Number
        {
            if let Some(y) = crate::facts::patterns::parse_year(&toks[i + 1].text) {
                tags.push(TemporalTag {
                    start: toks[i].start,
                    end: toks[i + 1].end,
                    hint: TimeHint { begin: Some(y), end: None },
                });
            }
        }
    }
    tags.sort_by_key(|t| t.start);
    tags
}

/// Infers a single timespan from a fact's collected hints.
///
/// Interval hints (`from A to B`) dominate: the modal (most frequent)
/// interval wins. Otherwise the modal begin year becomes the span's
/// begin with an open end. Returns `None` when no hints exist.
pub fn infer_span(hints: &[TimeHint]) -> Option<TimeSpan> {
    if hints.is_empty() {
        return None;
    }
    // Prefer full intervals.
    let mut interval_votes: HashMap<(i32, i32), usize> = HashMap::new();
    for h in hints {
        if let (Some(b), Some(e)) = (h.begin, h.end) {
            *interval_votes.entry((b, e)).or_insert(0) += 1;
        }
    }
    if let Some(((b, e), _)) =
        interval_votes.into_iter().max_by_key(|&(k, v)| (v, std::cmp::Reverse(k)))
    {
        return TimeSpan::between(TimePoint::year(b), TimePoint::year(e)).ok();
    }
    let mut begin_votes: HashMap<i32, usize> = HashMap::new();
    for h in hints {
        if let Some(b) = h.begin {
            *begin_votes.entry(b).or_insert(0) += 1;
        }
    }
    begin_votes
        .into_iter()
        .max_by_key(|&(year, votes)| (votes, std::cmp::Reverse(year)))
        .map(|(year, _)| TimeSpan::since(TimePoint::year(year)))
}

/// Accuracy of inferred spans against gold `(begin, end)` years:
/// a span is correct when its begin year matches the gold begin (and
/// its end matches when gold has one and the span claims one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalAccuracy {
    /// Facts with any inferred span.
    pub inferred: usize,
    /// Inferred spans whose begin matches gold.
    pub begin_correct: usize,
    /// Inferred interval spans whose end also matches gold.
    pub end_correct: usize,
    /// Facts evaluated (gold temporal facts seen).
    pub total: usize,
}

impl TemporalAccuracy {
    /// Begin-year accuracy over inferred spans.
    pub fn begin_accuracy(&self) -> f64 {
        if self.inferred == 0 {
            0.0
        } else {
            self.begin_correct as f64 / self.inferred as f64
        }
    }

    /// Coverage: inferred / total.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.inferred as f64 / self.total as f64
        }
    }
}

/// Scores inferred spans against gold years.
pub fn score_spans(inferred: &[(Option<TimeSpan>, Option<i32>, Option<i32>)]) -> TemporalAccuracy {
    let mut acc = TemporalAccuracy { inferred: 0, begin_correct: 0, end_correct: 0, total: 0 };
    for (span, gold_begin, gold_end) in inferred {
        acc.total += 1;
        let Some(span) = span else { continue };
        acc.inferred += 1;
        if let (Some(b), Some(gb)) = (span.begin, gold_begin) {
            if b.year == *gb {
                acc.begin_correct += 1;
                if let (Some(e), Some(ge)) = (span.end, gold_end) {
                    if e.year == *ge {
                        acc.end_correct += 1;
                    }
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint(b: Option<i32>, e: Option<i32>) -> TimeHint {
        TimeHint { begin: b, end: e }
    }

    #[test]
    fn tags_in_year() {
        let tags = tag_temporal("Jobs founded Apple in 1976.");
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].hint, hint(Some(1976), None));
        assert_eq!(&"Jobs founded Apple in 1976."[tags[0].start..tags[0].end], "in 1976");
    }

    #[test]
    fn tags_from_to_without_double_counting() {
        let tags = tag_temporal("She worked there from 1970 to 1985 happily.");
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].hint, hint(Some(1970), Some(1985)));
    }

    #[test]
    fn mixed_expressions() {
        let tags = tag_temporal("Born in 1955, he worked from 1970 to 1985.");
        assert_eq!(tags.len(), 2);
        assert_eq!(tags[0].hint, hint(Some(1955), None));
        assert_eq!(tags[1].hint, hint(Some(1970), Some(1985)));
    }

    #[test]
    fn non_years_are_ignored() {
        assert!(tag_temporal("in 12 days from 3 to 5").is_empty());
        assert!(tag_temporal("no numbers at all").is_empty());
    }

    #[test]
    fn infer_prefers_modal_interval() {
        let hints = vec![
            hint(Some(1970), Some(1985)),
            hint(Some(1970), Some(1985)),
            hint(Some(1971), Some(1985)),
            hint(Some(1999), None),
        ];
        let span = infer_span(&hints).unwrap();
        assert_eq!(span.begin.unwrap().year, 1970);
        assert_eq!(span.end.unwrap().year, 1985);
    }

    #[test]
    fn infer_falls_back_to_modal_begin() {
        let hints = vec![hint(Some(1976), None), hint(Some(1976), None), hint(Some(1980), None)];
        let span = infer_span(&hints).unwrap();
        assert_eq!(span.begin.unwrap().year, 1976);
        assert!(span.end.is_none());
    }

    #[test]
    fn infer_none_without_hints() {
        assert!(infer_span(&[]).is_none());
        assert!(infer_span(&[hint(None, None)]).is_none());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let hints = vec![hint(Some(1970), None), hint(Some(1980), None)];
        // Tie: the smaller year wins via Reverse ordering.
        assert_eq!(infer_span(&hints).unwrap().begin.unwrap().year, 1970);
    }

    #[test]
    fn scoring_counts_correctly() {
        let span7076 = TimeSpan::between(TimePoint::year(1970), TimePoint::year(1976)).ok();
        let span_since = Some(TimeSpan::since(TimePoint::year(1980)));
        let rows = vec![
            (span7076, Some(1970), Some(1976)), // begin+end correct
            (span_since, Some(1980), None),     // begin correct
            (span_since, Some(1999), None),     // begin wrong
            (None, Some(1970), None),           // not inferred
        ];
        let acc = score_spans(&rows);
        assert_eq!(acc.total, 4);
        assert_eq!(acc.inferred, 3);
        assert_eq!(acc.begin_correct, 2);
        assert_eq!(acc.end_correct, 1);
        assert!((acc.begin_accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.coverage() - 0.75).abs() < 1e-12);
    }
}
