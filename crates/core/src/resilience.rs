//! The pipeline's resilience layer: error types, panic capture, retry
//! with deterministic backoff, stage budgets, and the bookkeeping
//! structures for quarantine (dead letters) and graceful degradation.
//!
//! Web-scale harvesting input is adversarially messy — truncated pages,
//! broken encodings, corrupt annotations — and the tutorial's premise is
//! that KB construction survives that noise. This module supplies the
//! machinery [`pipeline`](crate::pipeline) uses to guarantee that a
//! poison document is *quarantined* instead of killing the harvest, and
//! that an over-budget or crashing refinement stage *degrades* to a
//! cheaper method instead of aborting.
//!
//! Everything here is deterministic: backoff jitter comes from a seeded
//! hash, never from wall-clock entropy, so two runs with the same seed
//! retry with identical delays.

use std::any::Any;
use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

use kb_store::StoreError;

use crate::pipeline::Method;

// ---------------------------------------------------------------------
// Error type: nothing panics across the public pipeline API.
// ---------------------------------------------------------------------

/// Errors surfaced by the harvesting pipeline. Worker panics are caught
/// and converted; store failures are wrapped — no panic crosses the
/// public pipeline API.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A worker thread died in a way the per-document quarantine could
    /// not absorb (e.g. the thread pool itself failed to join).
    WorkerPanic {
        /// Pipeline stage name.
        stage: &'static str,
        /// Captured panic payload.
        detail: String,
    },
    /// A single-threaded pipeline stage panicked; the panic was caught
    /// at the stage boundary.
    StagePanic {
        /// Pipeline stage name.
        stage: &'static str,
        /// Captured panic payload.
        detail: String,
    },
    /// A knowledge-base operation failed while loading results.
    Store(StoreError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::WorkerPanic { stage, detail } => {
                write!(f, "worker panicked in stage {stage:?}: {detail}")
            }
            PipelineError::StagePanic { stage, detail } => {
                write!(f, "stage {stage:?} panicked: {detail}")
            }
            PipelineError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for PipelineError {
    fn from(e: StoreError) -> Self {
        PipelineError::Store(e)
    }
}

// ---------------------------------------------------------------------
// Panic capture.
// ---------------------------------------------------------------------

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent while a
/// [`catch_panic`] guard is active on the panicking thread and delegates
/// to the previous hook otherwise. Keeps chaos runs with hundreds of
/// expected poison-document panics from flooding stderr.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Stringifies a panic payload (the common `&str`/`String` payloads are
/// preserved verbatim; anything else becomes a placeholder).
pub fn panic_payload_to_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f`, converting an unwinding panic into `Err(message)`. Panic
/// output is suppressed for the duration (the payload is *captured*, not
/// lost — it becomes the error string).
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result.map_err(panic_payload_to_string)
}

// ---------------------------------------------------------------------
// Retry with deterministic backoff.
// ---------------------------------------------------------------------

/// Splitmix64: a tiny, high-quality deterministic mixer used to derive
/// per-attempt jitter without touching any global RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bounded-retry policy with exponential backoff and seeded jitter.
///
/// Jitter is derived from `jitter_seed` and the attempt number only, so
/// a run's delay schedule is a pure function of its configuration — no
/// wall-clock randomness, fully reproducible in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (including the first); at least 1.
    pub max_attempts: u32,
    /// Backoff base in milliseconds; 0 disables sleeping entirely.
    pub base_delay_ms: u64,
    /// Upper bound on a single delay in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_delay_ms: 10, max_delay_ms: 1_000, jitter_seed: 0x5eed }
    }
}

/// What a [`RetryPolicy::run`] ended with, plus how many attempts it
/// took to get there.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome<T, E> {
    /// The final success or the last error.
    pub result: Result<T, E>,
    /// Attempts actually made (1..=max_attempts).
    pub attempts: u32,
}

impl RetryPolicy {
    /// A policy that retries `max_attempts` times with no sleeping —
    /// the right default for CPU-local work where backing off buys
    /// nothing (used by the pipeline's per-document guard).
    pub fn immediate(max_attempts: u32) -> Self {
        Self { max_attempts, base_delay_ms: 0, max_delay_ms: 0, ..Self::default() }
    }

    /// The delay scheduled *after* failed attempt `attempt` (1-based):
    /// exponential in the attempt number, scaled by a deterministic
    /// jitter factor in `[0.5, 1.5)`, capped at `max_delay_ms`.
    pub fn delay_after(&self, attempt: u32) -> Duration {
        if self.base_delay_ms == 0 {
            return Duration::ZERO;
        }
        let raw = self.base_delay_ms.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(20));
        let jitter_bits = splitmix64(self.jitter_seed ^ u64::from(attempt));
        let factor = 0.5 + (jitter_bits >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = (raw as f64 * factor) as u64;
        Duration::from_millis(jittered.min(self.max_delay_ms))
    }

    /// Runs `op` until it succeeds or attempts are exhausted, sleeping
    /// the scheduled backoff between attempts. `op` receives the 1-based
    /// attempt number.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> RetryOutcome<T, E> {
        let max = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(v) => return RetryOutcome { result: Ok(v), attempts: attempt },
                Err(e) if attempt >= max => {
                    return RetryOutcome { result: Err(e), attempts: attempt }
                }
                Err(_) => {
                    let delay = self.delay_after(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stage budgets.
// ---------------------------------------------------------------------

/// A cooperative wall-clock budget for a pipeline stage. The guard
/// cannot preempt a running computation; the pipeline checks it before
/// committing a stage's result (a non-positive budget is exceeded from
/// the start, which is how tests force a deterministic "timeout").
#[derive(Debug)]
pub struct BudgetGuard {
    budget_secs: f64,
    start: Instant,
}

impl BudgetGuard {
    /// Starts the clock on a budget of `budget_secs` seconds.
    pub fn start(budget_secs: f64) -> Self {
        Self { budget_secs, start: Instant::now() }
    }

    /// Seconds elapsed since the guard started.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whether the budget is spent. Budgets `<= 0` are always exceeded;
    /// an infinite budget never is.
    pub fn exceeded(&self) -> bool {
        if self.budget_secs <= 0.0 {
            return true;
        }
        self.budget_secs.is_finite() && self.elapsed_secs() > self.budget_secs
    }

    /// The configured budget in seconds.
    pub fn budget_secs(&self) -> f64 {
        self.budget_secs
    }
}

// ---------------------------------------------------------------------
// Quarantine (dead-letter queue) bookkeeping.
// ---------------------------------------------------------------------

/// Why a document landed in the dead-letter queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Pre-flight integrity validation rejected the document.
    Defect(String),
    /// The extractor panicked on the document (payload captured);
    /// retries, if configured, were exhausted.
    Panic(String),
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::Defect(d) => write!(f, "integrity defect: {d}"),
            QuarantineReason::Panic(p) => write!(f, "extractor panic: {p}"),
        }
    }
}

/// A dead-letter entry: one quarantined document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// The poisoned document's id.
    pub doc_id: u32,
    /// Its title, for human-readable triage.
    pub title: String,
    /// What went wrong.
    pub reason: QuarantineReason,
    /// Extraction attempts made before giving up (1 for validation
    /// rejections, which are permanent and not retried).
    pub attempts: u32,
}

// ---------------------------------------------------------------------
// Graceful degradation.
// ---------------------------------------------------------------------

/// Why a stage was downgraded.
#[derive(Debug, Clone, PartialEq)]
pub enum DowngradeReason {
    /// The stage exceeded its wall-clock budget.
    BudgetExceeded {
        /// The configured budget in seconds.
        budget_secs: f64,
        /// Time actually spent before the downgrade (0 when the budget
        /// was exhausted before the stage even started).
        elapsed_secs: f64,
    },
    /// The stage panicked; the payload was captured.
    Panicked(String),
}

impl fmt::Display for DowngradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DowngradeReason::BudgetExceeded { budget_secs, elapsed_secs } => {
                write!(f, "budget of {budget_secs}s exceeded after {elapsed_secs:.3}s")
            }
            DowngradeReason::Panicked(p) => write!(f, "stage panicked: {p}"),
        }
    }
}

/// A recorded rung of the degradation ladder: the pipeline fell back
/// from one refinement method to a cheaper one instead of failing.
#[derive(Debug, Clone, PartialEq)]
pub struct Downgrade {
    /// Stage name (currently always `"refinement"`).
    pub stage: &'static str,
    /// The method that failed.
    pub from: Method,
    /// The method actually used.
    pub to: Method,
    /// Why the ladder was taken.
    pub reason: DowngradeReason,
}

// ---------------------------------------------------------------------
// Knobs.
// ---------------------------------------------------------------------

/// Resilience configuration for a harvest run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Per-document retry policy for the collection stage. Defaults to
    /// two immediate attempts (deterministic extractor panics will fail
    /// again, but transient environmental failures get a second shot).
    pub retry: RetryPolicy,
    /// Wall-clock budget for the refinement stage in seconds. When the
    /// chosen method ([`Method::Reasoning`] / [`Method::FactorGraph`])
    /// exceeds it, the pipeline degrades to [`Method::Statistical`] and
    /// records the [`Downgrade`]. `INFINITY` disables the guard; `0.0`
    /// forces the ladder deterministically (used by tests).
    pub refine_budget_secs: f64,
    /// Chaos hook: panic inside the refinement stage to exercise the
    /// degradation ladder's panic rung. Never set outside tests.
    pub inject_refine_panic: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::immediate(2),
            refine_budget_secs: f64::INFINITY,
            inject_refine_panic: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_panic_captures_str_and_string_payloads() {
        assert_eq!(catch_panic(|| 7).unwrap(), 7);
        let e = catch_panic(|| -> () { panic!("boom") }).unwrap_err();
        assert_eq!(e, "boom");
        let e = catch_panic(|| -> () { panic!("{} {}", "formatted", 42) }).unwrap_err();
        assert_eq!(e, "formatted 42");
    }

    #[test]
    fn catch_panic_captures_slice_panics() {
        let v = [1, 2, 3];
        let i = std::hint::black_box(9);
        let e = catch_panic(|| v[i]).unwrap_err();
        assert!(e.contains("out of bounds"), "{e}");
    }

    #[test]
    fn backoff_is_deterministic_in_the_seed() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 10_000,
            jitter_seed: 9,
        };
        let a: Vec<_> = (1..=4).map(|i| p.delay_after(i)).collect();
        let b: Vec<_> = (1..=4).map(|i| p.delay_after(i)).collect();
        assert_eq!(a, b);
        let q = RetryPolicy { jitter_seed: 10, ..p };
        let c: Vec<_> = (1..=4).map(|i| q.delay_after(i)).collect();
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let p =
            RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 50, jitter_seed: 1 };
        for i in 1..=8 {
            assert!(p.delay_after(i) <= Duration::from_millis(50));
        }
        // With jitter in [0.5, 1.5), attempt 4's raw delay (80ms) beats
        // attempt 1's (10ms) regardless of the jitter draw.
        let uncapped = RetryPolicy { max_delay_ms: 100_000, ..p };
        assert!(uncapped.delay_after(4) > uncapped.delay_after(1));
    }

    #[test]
    fn zero_base_delay_never_sleeps() {
        let p = RetryPolicy::immediate(4);
        for i in 1..=4 {
            assert_eq!(p.delay_after(i), Duration::ZERO);
        }
    }

    #[test]
    fn retry_runs_until_success_and_counts_attempts() {
        let p = RetryPolicy::immediate(5);
        let out = p.run(|attempt| if attempt < 3 { Err("not yet") } else { Ok(attempt) });
        assert_eq!(out.result, Ok(3));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn retry_exhausts_and_returns_last_error() {
        let p = RetryPolicy::immediate(3);
        let out: RetryOutcome<(), String> = p.run(|a| Err(format!("fail {a}")));
        assert_eq!(out.result, Err("fail 3".to_string()));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn zero_budget_is_exceeded_immediately_and_infinite_never() {
        assert!(BudgetGuard::start(0.0).exceeded());
        assert!(BudgetGuard::start(-1.0).exceeded());
        assert!(!BudgetGuard::start(f64::INFINITY).exceeded());
        assert!(!BudgetGuard::start(3600.0).exceeded());
    }

    #[test]
    fn pipeline_error_displays_and_converts() {
        let e: PipelineError = StoreError::InvalidTimeSpan.into();
        assert!(e.to_string().contains("store error"));
        let w = PipelineError::WorkerPanic { stage: "collect", detail: "boom".into() };
        assert!(w.to_string().contains("collect") && w.to_string().contains("boom"));
    }
}
