//! Consistency reasoning via weighted MaxSat (SOFIE-style, tutorial §3
//! "logical consistency reasoning, e.g. weighted MaxSat or ILP
//! solvers").
//!
//! Two layers:
//!
//! * a generic weighted-MaxSat solver ([`MaxSatProblem`], [`solve`]) —
//!   stochastic local search (WalkSAT lineage) with incremental cost
//!   maintenance, hard clauses dominating lexicographically, restarts,
//!   and a deterministic seed;
//! * the fact-cleaning encoding ([`reason_candidates`]): one variable
//!   per candidate fact; soft unit clauses weighted by extraction
//!   confidence; hard mutual-exclusion clauses from functionality /
//!   inverse-functionality; hard rejection of type-violating candidates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::facts::extract::CandidateFact;
use crate::facts::relation_spec;
use crate::facts::scoring::{type_verdict, TypeIndex, TypeVerdict};

/// A propositional variable (index).
pub type Var = usize;

/// A literal: variable plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: Var) -> Self {
        Self { var, positive: true }
    }

    /// Negative literal.
    pub fn neg(var: Var) -> Self {
        Self { var, positive: false }
    }

    /// Whether the literal is satisfied under `assignment`.
    #[inline]
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A weighted clause. `weight == f64::INFINITY` marks a hard clause.
#[derive(Debug, Clone)]
pub struct Clause {
    /// Disjunction of literals.
    pub lits: Vec<Lit>,
    /// Violation cost; infinite for hard clauses.
    pub weight: f64,
}

/// A weighted MaxSat instance.
#[derive(Debug, Clone, Default)]
pub struct MaxSatProblem {
    /// Number of variables (vars are `0..num_vars`).
    pub num_vars: usize,
    /// All clauses.
    pub clauses: Vec<Clause>,
}

impl MaxSatProblem {
    /// Creates an instance over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Self { num_vars, clauses: Vec::new() }
    }

    /// Adds a soft clause.
    pub fn soft(&mut self, lits: Vec<Lit>, weight: f64) {
        debug_assert!(weight.is_finite() && weight >= 0.0);
        self.clauses.push(Clause { lits, weight });
    }

    /// Adds a hard clause.
    pub fn hard(&mut self, lits: Vec<Lit>) {
        self.clauses.push(Clause { lits, weight: f64::INFINITY });
    }

    /// Cost of an assignment: `(hard violations, soft violated weight)`.
    pub fn cost(&self, assignment: &[bool]) -> (usize, f64) {
        let mut hard = 0usize;
        let mut soft = 0.0;
        for c in &self.clauses {
            if !c.lits.iter().any(|l| l.satisfied(assignment)) {
                if c.weight.is_infinite() {
                    hard += 1;
                } else {
                    soft += c.weight;
                }
            }
        }
        (hard, soft)
    }
}

/// Solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// RNG seed (solver is deterministic given the seed).
    pub seed: u64,
    /// Flips per restart, as a multiple of the variable count.
    pub flips_per_var: usize,
    /// Probability of a random (non-greedy) flip inside a violated clause.
    pub noise: f64,
    /// Number of restarts.
    pub restarts: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self { seed: 7, flips_per_var: 30, noise: 0.1, restarts: 3 }
    }
}

/// The solver's result.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Best assignment found.
    pub assignment: Vec<bool>,
    /// Hard clauses still violated (0 for feasible instances in practice).
    pub hard_violations: usize,
    /// Violated soft weight.
    pub soft_cost: f64,
}

/// Solves a weighted MaxSat instance by stochastic local search with
/// greedy initialization (positive soft-unit bias) and restarts.
pub fn solve(problem: &MaxSatProblem, cfg: &SolverConfig) -> Solution {
    let n = problem.num_vars;
    if n == 0 {
        return Solution { assignment: vec![], hard_violations: 0, soft_cost: 0.0 };
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // var -> clause indices containing it (each clause once, even when
    // a variable occurs in several literals of the same clause).
    let mut occurs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in problem.clauses.iter().enumerate() {
        for l in &c.lits {
            occurs[l.var].push(ci);
        }
    }
    for list in &mut occurs {
        list.sort_unstable();
        list.dedup();
    }
    // Greedy init: a var starts true iff its positive soft-unit weight
    // exceeds its negative soft-unit weight.
    let mut bias = vec![0.0f64; n];
    for c in &problem.clauses {
        if c.lits.len() == 1 && c.weight.is_finite() {
            let l = c.lits[0];
            bias[l.var] += if l.positive { c.weight } else { -c.weight };
        }
    }
    let init: Vec<bool> = bias.iter().map(|&b| b > 0.0).collect();

    let mut best: Option<Solution> = None;
    for restart in 0..cfg.restarts.max(1) {
        let mut assignment =
            if restart == 0 { init.clone() } else { (0..n).map(|_| rng.gen_bool(0.5)).collect() };
        // sat_count[ci] = number of satisfied literals in clause ci.
        let mut sat_count: Vec<u32> = problem
            .clauses
            .iter()
            .map(|c| c.lits.iter().filter(|l| l.satisfied(&assignment)).count() as u32)
            .collect();
        // Violated-clause bookkeeping, maintained incrementally: two
        // indexed sets (hard / soft) supporting O(1) insert, remove and
        // uniform sampling.
        let mut viol_hard = IndexedSet::new(problem.clauses.len());
        let mut viol_soft = IndexedSet::new(problem.clauses.len());
        for (ci, &s) in sat_count.iter().enumerate() {
            if s == 0 {
                if problem.clauses[ci].weight.is_infinite() {
                    viol_hard.insert(ci);
                } else {
                    viol_soft.insert(ci);
                }
            }
        }
        let mut current_cost = problem.cost(&assignment);
        let mut local_best = Solution {
            assignment: assignment.clone(),
            hard_violations: current_cost.0,
            soft_cost: current_cost.1,
        };
        let max_flips = cfg.flips_per_var.max(1) * n;
        for _ in 0..max_flips {
            // Prefer violated hard clauses, but keep a 20% chance of
            // working a soft clause: when the hard clauses are jointly
            // unsatisfiable the walk must still optimize the soft layer.
            let ci = match (viol_hard.is_empty(), viol_soft.is_empty()) {
                (true, true) => break, // everything satisfied: optimal
                (false, true) => viol_hard.sample(&mut rng),
                (true, false) => viol_soft.sample(&mut rng),
                (false, false) => {
                    if rng.gen_bool(0.8) {
                        viol_hard.sample(&mut rng)
                    } else {
                        viol_soft.sample(&mut rng)
                    }
                }
            };
            let clause = &problem.clauses[ci];
            // Choose the variable to flip.
            let flip_var = if rng.gen_bool(cfg.noise) {
                clause.lits[rng.gen_range(0..clause.lits.len())].var
            } else {
                // Greedy: flip the var minimizing resulting cost delta.
                let mut best_var = clause.lits[0].var;
                let mut best_delta = (isize::MAX, f64::INFINITY);
                for l in &clause.lits {
                    let delta = flip_delta(problem, &occurs, &assignment, &sat_count, l.var);
                    if delta < best_delta {
                        best_delta = delta;
                        best_var = l.var;
                    }
                }
                best_var
            };
            // Maintain the current cost incrementally: a full
            // problem.cost() per flip would make the search O(n²).
            let (dh, ds) = flip_delta(problem, &occurs, &assignment, &sat_count, flip_var);
            apply_flip(
                problem,
                &occurs,
                &mut assignment,
                &mut sat_count,
                flip_var,
                &mut viol_hard,
                &mut viol_soft,
            );
            current_cost =
                (current_cost.0.saturating_add_signed(dh), (current_cost.1 + ds).max(0.0));
            if (current_cost.0, current_cost.1) < (local_best.hard_violations, local_best.soft_cost)
            {
                local_best = Solution {
                    assignment: assignment.clone(),
                    hard_violations: current_cost.0,
                    soft_cost: current_cost.1,
                };
            }
        }
        let better = match &best {
            None => true,
            Some(b) => {
                (local_best.hard_violations, local_best.soft_cost)
                    < (b.hard_violations, b.soft_cost)
            }
        };
        if better {
            best = Some(local_best);
        }
    }
    best.expect("at least one restart ran")
}

/// Cost delta (hard, soft) of flipping `var`, computed from the clauses
/// it occurs in.
fn flip_delta(
    problem: &MaxSatProblem,
    occurs: &[Vec<usize>],
    assignment: &[bool],
    sat_count: &[u32],
    var: Var,
) -> (isize, f64) {
    let mut hard_gain = 0isize;
    let mut soft_gain = 0.0f64;
    for &ci in &occurs[var] {
        let c = &problem.clauses[ci];
        // Net change in this clause's satisfied-literal count if `var`
        // flips (a variable may occur in several literals, e.g. x ∨ ¬x).
        let delta: i64 = c
            .lits
            .iter()
            .filter(|l| l.var == var)
            .map(|l| if l.satisfied(assignment) { -1i64 } else { 1 })
            .sum();
        let before = sat_count[ci] as i64;
        let after = before + delta;
        let newly_violated = before > 0 && after == 0;
        let newly_satisfied = before == 0 && after > 0;
        if newly_violated {
            if c.weight.is_infinite() {
                hard_gain += 1;
            } else {
                soft_gain += c.weight;
            }
        } else if newly_satisfied {
            if c.weight.is_infinite() {
                hard_gain -= 1;
            } else {
                soft_gain -= c.weight;
            }
        }
    }
    (hard_gain, soft_gain)
}

/// Applies a flip, updating sat counts and violated sets incrementally.
#[allow(clippy::too_many_arguments)]
fn apply_flip(
    problem: &MaxSatProblem,
    occurs: &[Vec<usize>],
    assignment: &mut [bool],
    sat_count: &mut [u32],
    var: Var,
    viol_hard: &mut IndexedSet,
    viol_soft: &mut IndexedSet,
) {
    assignment[var] = !assignment[var];
    for &ci in &occurs[var] {
        let c = &problem.clauses[ci];
        let was_violated = sat_count[ci] == 0;
        // Recompute the clause's net change (assignment already flipped:
        // literals now satisfied gained, literals now unsatisfied lost).
        let delta: i64 = c
            .lits
            .iter()
            .filter(|l| l.var == var)
            .map(|l| if l.satisfied(assignment) { 1i64 } else { -1 })
            .sum();
        sat_count[ci] = (sat_count[ci] as i64 + delta)
            .try_into()
            .expect("satisfied-literal count must stay non-negative");
        let is_violated = sat_count[ci] == 0;
        if was_violated != is_violated {
            let set = if c.weight.is_infinite() { &mut *viol_hard } else { &mut *viol_soft };
            if is_violated {
                set.insert(ci);
            } else {
                set.remove(ci);
            }
        }
    }
}

/// An indexed set over `0..capacity` with O(1) insert/remove/sample.
#[derive(Debug)]
struct IndexedSet {
    items: Vec<usize>,
    position: Vec<usize>,
}

impl IndexedSet {
    const ABSENT: usize = usize::MAX;

    fn new(capacity: usize) -> Self {
        Self { items: Vec::new(), position: vec![Self::ABSENT; capacity] }
    }

    fn insert(&mut self, x: usize) {
        if self.position[x] != Self::ABSENT {
            return;
        }
        self.position[x] = self.items.len();
        self.items.push(x);
    }

    fn remove(&mut self, x: usize) {
        let pos = self.position[x];
        if pos == Self::ABSENT {
            return;
        }
        let last = *self.items.last().expect("non-empty when removing");
        self.items.swap_remove(pos);
        if last != x {
            self.position[last] = pos;
        }
        self.position[x] = Self::ABSENT;
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        self.items[rng.gen_range(0..self.items.len())]
    }
}

/// Result of consistency reasoning over candidates.
#[derive(Debug, Clone)]
pub struct ReasoningOutcome {
    /// Indices (into the candidate slice) of accepted facts.
    pub accepted: Vec<usize>,
    /// Indices of rejected facts.
    pub rejected: Vec<usize>,
    /// Number of hard constraints generated.
    pub hard_clauses: usize,
}

/// Builds the SOFIE-style encoding over candidate facts and solves it.
///
/// * soft unit `x_i` with weight = confidence (evidence for the fact);
/// * hard `¬x_i ∨ ¬x_j` for pairs violating functionality or inverse
///   functionality of the declared schema;
/// * hard `¬x_i` for candidates whose harvested types contradict the
///   relation signature.
pub fn reason_candidates(
    candidates: &[CandidateFact],
    types: &TypeIndex,
    cfg: &SolverConfig,
) -> ReasoningOutcome {
    let n = candidates.len();
    let mut problem = MaxSatProblem::new(n);
    for (i, c) in candidates.iter().enumerate() {
        problem.soft(vec![Lit::pos(i)], c.confidence.max(1e-6));
        if type_verdict(c, types) == TypeVerdict::Violation {
            problem.hard(vec![Lit::neg(i)]);
        }
    }
    // Functionality conflicts: group by (subject, relation).
    let mut by_sr: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut by_ro: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        by_sr.entry((c.subject.as_str(), c.relation.as_str())).or_default().push(i);
        by_ro.entry((c.relation.as_str(), c.object.as_str())).or_default().push(i);
    }
    let mut hard_clauses =
        candidates.iter().filter(|c| type_verdict(c, types) == TypeVerdict::Violation).count();
    for ((_, rel), group) in &by_sr {
        let Some(spec) = relation_spec(rel) else { continue };
        if !spec.functional || group.len() < 2 {
            continue;
        }
        for (a_pos, &a) in group.iter().enumerate() {
            for &b in &group[a_pos + 1..] {
                if candidates[a].object != candidates[b].object {
                    problem.hard(vec![Lit::neg(a), Lit::neg(b)]);
                    hard_clauses += 1;
                }
            }
        }
    }
    for ((rel, _), group) in &by_ro {
        let Some(spec) = relation_spec(rel) else { continue };
        if !spec.inverse_functional || group.len() < 2 {
            continue;
        }
        for (a_pos, &a) in group.iter().enumerate() {
            for &b in &group[a_pos + 1..] {
                if candidates[a].subject != candidates[b].subject {
                    problem.hard(vec![Lit::neg(a), Lit::neg(b)]);
                    hard_clauses += 1;
                }
            }
        }
    }
    let solution = solve(&problem, cfg);
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for (i, &v) in solution.assignment.iter().enumerate() {
        if v {
            accepted.push(i);
        } else {
            rejected.push(i);
        }
    }
    ReasoningOutcome { accepted, rejected, hard_clauses }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfiable_instance_reaches_zero_cost() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x2) hard; soft prefers x1, x2 true.
        let mut p = MaxSatProblem::new(3);
        p.hard(vec![Lit::pos(0), Lit::pos(1)]);
        p.hard(vec![Lit::neg(0), Lit::pos(2)]);
        p.soft(vec![Lit::pos(1)], 1.0);
        p.soft(vec![Lit::pos(2)], 1.0);
        let s = solve(&p, &SolverConfig::default());
        assert_eq!(s.hard_violations, 0);
        assert_eq!(s.soft_cost, 0.0);
        assert!(s.assignment[1] && s.assignment[2]);
    }

    #[test]
    fn solver_keeps_the_heavier_of_two_conflicting_facts() {
        // x0 and x1 mutually exclusive; x0 has more evidence.
        let mut p = MaxSatProblem::new(2);
        p.hard(vec![Lit::neg(0), Lit::neg(1)]);
        p.soft(vec![Lit::pos(0)], 0.9);
        p.soft(vec![Lit::pos(1)], 0.3);
        let s = solve(&p, &SolverConfig::default());
        assert_eq!(s.hard_violations, 0);
        assert!(s.assignment[0]);
        assert!(!s.assignment[1]);
        assert!((s.soft_cost - 0.3).abs() < 1e-12);
    }

    #[test]
    fn hard_unit_clauses_force_values() {
        let mut p = MaxSatProblem::new(1);
        p.hard(vec![Lit::neg(0)]);
        p.soft(vec![Lit::pos(0)], 100.0);
        let s = solve(&p, &SolverConfig::default());
        assert_eq!(s.hard_violations, 0);
        assert!(!s.assignment[0], "hard ¬x must beat any soft weight");
    }

    #[test]
    fn solver_is_deterministic_per_seed() {
        let mut p = MaxSatProblem::new(6);
        for i in 0..5 {
            p.hard(vec![Lit::neg(i), Lit::neg(i + 1)]);
            p.soft(vec![Lit::pos(i)], 0.5 + i as f64 * 0.05);
        }
        let a = solve(&p, &SolverConfig::default());
        let b = solve(&p, &SolverConfig::default());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn empty_problem_is_trivial() {
        let p = MaxSatProblem::new(0);
        let s = solve(&p, &SolverConfig::default());
        assert!(s.assignment.is_empty());
        assert_eq!(s.hard_violations, 0);
    }

    fn cand(s: &str, r: &str, o: &str, conf: f64) -> CandidateFact {
        CandidateFact {
            subject: s.into(),
            relation: r.into(),
            object: o.into(),
            confidence: conf,
            support: 1,
            docs: 1,
            patterns: 1,
            hints: vec![],
        }
    }

    #[test]
    fn functionality_conflict_keeps_stronger_candidate() {
        // Two birthplaces for Alan: reasoning must keep the stronger.
        let cands = vec![
            cand("Alan", "bornIn", "Lund", 0.9),
            cand("Alan", "bornIn", "Torberg", 0.4),
            cand("Bea", "bornIn", "Lund", 0.8),
        ];
        let types = TypeIndex::new();
        let out = reason_candidates(&cands, &types, &SolverConfig::default());
        assert!(out.accepted.contains(&0));
        assert!(out.rejected.contains(&1));
        assert!(out.accepted.contains(&2), "unrelated facts stay");
        assert_eq!(out.hard_clauses, 1);
    }

    #[test]
    fn inverse_functionality_is_enforced() {
        // Two companies claiming the same product.
        let cands = vec![
            cand("AcmeCo", "created", "Strato 3", 0.9),
            cand("BetaCo", "created", "Strato 3", 0.5),
        ];
        let out = reason_candidates(&cands, &TypeIndex::new(), &SolverConfig::default());
        assert!(out.accepted.contains(&0));
        assert!(out.rejected.contains(&1));
    }

    #[test]
    fn type_violations_are_hard_rejected() {
        let mut types = TypeIndex::new();
        types.insert("AcmeCo".into(), ["company".to_string()].into_iter().collect());
        types.insert("Lund".into(), ["city".to_string()].into_iter().collect());
        let cands = vec![cand("AcmeCo", "bornIn", "Lund", 0.99)];
        let out = reason_candidates(&cands, &types, &SolverConfig::default());
        assert!(out.accepted.is_empty());
        assert_eq!(out.rejected, vec![0]);
    }

    #[test]
    fn non_functional_relations_allow_multiple_objects() {
        let cands =
            vec![cand("Alan", "founded", "AcmeCo", 0.9), cand("Alan", "founded", "BetaCo", 0.9)];
        let out = reason_candidates(&cands, &TypeIndex::new(), &SolverConfig::default());
        assert_eq!(out.accepted.len(), 2);
        assert_eq!(out.hard_clauses, 0);
    }

    #[test]
    fn same_object_duplicates_do_not_conflict() {
        let cands = vec![cand("Alan", "bornIn", "Lund", 0.9), cand("Alan", "bornIn", "Lund", 0.7)];
        let out = reason_candidates(&cands, &TypeIndex::new(), &SolverConfig::default());
        assert_eq!(out.accepted.len(), 2);
    }
}
