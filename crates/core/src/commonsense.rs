//! Commonsense knowledge acquisition (tutorial §3): properties of
//! concepts ("apples can be red, green, juicy — but not punctual") and
//! part-whole relations ("mouthpiece partOf clarinet"), mined from
//! generic sentences with frequency filtering.

use std::collections::HashMap;

use kb_corpus::Doc;
use kb_nlp::sentence::split_sentences;
use kb_nlp::token::{tokenize, TokenKind};

use crate::taxonomy::singularize_class;

/// A mined `concept hasProperty adjective` assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyFact {
    /// Concept (singular).
    pub concept: String,
    /// The property adjective.
    pub property: String,
    /// Occurrence count across the collection.
    pub freq: usize,
}

/// A mined `part partOf whole` assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartFact {
    /// The part.
    pub part: String,
    /// The whole.
    pub whole: String,
    /// Occurrence count.
    pub freq: usize,
}

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct CommonsenseConfig {
    /// Minimum occurrences for an assertion to be kept — the frequency
    /// filter that rejects one-off absurd statements.
    pub min_freq: usize,
}

impl Default for CommonsenseConfig {
    fn default() -> Self {
        Self { min_freq: 2 }
    }
}

/// Mines property and part-whole assertions from a document collection.
pub fn mine_commonsense(
    docs: &[&Doc],
    cfg: &CommonsenseConfig,
) -> (Vec<PropertyFact>, Vec<PartFact>) {
    let mut prop_counts: HashMap<(String, String), usize> = HashMap::new();
    let mut part_counts: HashMap<(String, String), usize> = HashMap::new();
    for doc in docs {
        for sent in split_sentences(&doc.text) {
            let text = &doc.text[sent.start..sent.end];
            mine_properties(text, &mut prop_counts);
            mine_parts(text, &mut part_counts);
        }
    }
    let mut props: Vec<PropertyFact> = prop_counts
        .into_iter()
        .filter(|&(_, c)| c >= cfg.min_freq)
        .map(|((concept, property), freq)| PropertyFact { concept, property, freq })
        .collect();
    props.sort_by(|a, b| {
        b.freq.cmp(&a.freq).then_with(|| (&a.concept, &a.property).cmp(&(&b.concept, &b.property)))
    });
    let mut parts: Vec<PartFact> = part_counts
        .into_iter()
        .filter(|&(_, c)| c >= cfg.min_freq)
        .map(|((part, whole), freq)| PartFact { part, whole, freq })
        .collect();
    parts.sort_by(|a, b| {
        b.freq.cmp(&a.freq).then_with(|| (&a.part, &a.whole).cmp(&(&b.part, &b.whole)))
    });
    (props, parts)
}

/// "«Plural» can be a, b or c." → properties of the singular concept.
fn mine_properties(sentence: &str, counts: &mut HashMap<(String, String), usize>) {
    let toks = tokenize(sentence);
    let words: Vec<String> = toks
        .iter()
        .map(|t| if t.kind == TokenKind::Word { t.lower() } else { t.text.clone() })
        .collect();
    for i in 0..words.len().saturating_sub(2) {
        if words[i + 1] == "can" && words[i + 2] == "be" {
            let concept = singularize_class(&words[i]);
            if concept.is_empty() {
                continue;
            }
            // Adjectives until sentence end, skipping connectives.
            for w in &toks[i + 3..] {
                match w.kind {
                    TokenKind::Word => {
                        let lw = w.lower();
                        if lw == "or" || lw == "and" {
                            continue;
                        }
                        *counts.entry((concept.clone(), lw)).or_insert(0) += 1;
                    }
                    TokenKind::Punct if w.text == "." => break,
                    _ => {}
                }
            }
        }
    }
}

/// "The P is part of a C." and "A C has a P." → `P partOf C`.
fn mine_parts(sentence: &str, counts: &mut HashMap<(String, String), usize>) {
    let toks = tokenize(sentence);
    let words: Vec<String> =
        toks.iter().filter(|t| t.kind == TokenKind::Word).map(|t| t.lower()).collect();
    // ... P is part of a C ...
    for i in 0..words.len() {
        if i >= 1
            && i + 4 < words.len()
            && words[i] == "is"
            && words[i + 1] == "part"
            && words[i + 2] == "of"
            && (words[i + 3] == "a" || words[i + 3] == "an" || words[i + 3] == "the")
        {
            let part = words[i - 1].clone();
            let whole = words[i + 4].clone();
            *counts.entry((part, whole)).or_insert(0) += 1;
        }
        // ... C has a P ...
        if i >= 1
            && i + 2 < words.len()
            && words[i] == "has"
            && (words[i + 1] == "a" || words[i + 1] == "an")
        {
            let whole = words[i - 1].clone();
            let part = words[i + 2].clone();
            *counts.entry((part, whole)).or_insert(0) += 1;
        }
    }
}

/// Precision@k of mined properties against the gold concept table.
pub fn property_precision_at_k(
    props: &[PropertyFact],
    k: usize,
    gold: impl Fn(&str, &str) -> bool,
) -> f64 {
    let top: Vec<_> = props.iter().take(k).collect();
    if top.is_empty() {
        return 0.0;
    }
    let correct = top.iter().filter(|p| gold(&p.concept, &p.property)).count();
    correct as f64 / top.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::doc::TextBuilder;
    use kb_corpus::DocKind;

    fn essay(text: &str) -> Doc {
        let mut b = TextBuilder::new();
        b.push(text);
        let (text, mentions) = b.finish();
        Doc {
            id: 0,
            kind: DocKind::Essay,
            title: "e".into(),
            subject: None,
            text,
            mentions,
            infobox: vec![],
            categories: vec![],
        }
    }

    #[test]
    fn properties_are_mined_and_singularized() {
        let d = essay("Apples can be red, green or sweet. Apples can be red.");
        let (props, _) = mine_commonsense(&[&d], &CommonsenseConfig { min_freq: 1 });
        let red = props.iter().find(|p| p.property == "red").unwrap();
        assert_eq!(red.concept, "apple");
        assert_eq!(red.freq, 2);
        assert!(props.iter().any(|p| p.property == "sweet"));
        assert!(!props.iter().any(|p| p.property == "or"));
    }

    #[test]
    fn frequency_filter_kills_one_off_absurdities() {
        let d = essay("Apples can be red. Apples can be red. Apples can be punctual.");
        let (props, _) = mine_commonsense(&[&d], &CommonsenseConfig { min_freq: 2 });
        assert!(props.iter().any(|p| p.property == "red"));
        assert!(!props.iter().any(|p| p.property == "punctual"));
    }

    #[test]
    fn parts_are_mined_from_both_shapes() {
        let d = essay("The mouthpiece is part of a clarinet. A clarinet has a reed.");
        let (_, parts) = mine_commonsense(&[&d], &CommonsenseConfig { min_freq: 1 });
        assert!(parts.iter().any(|p| p.part == "mouthpiece" && p.whole == "clarinet"));
        assert!(parts.iter().any(|p| p.part == "reed" && p.whole == "clarinet"));
    }

    #[test]
    fn precision_at_k_against_gold_table() {
        use kb_corpus::lexicon::CONCEPTS;
        let gold = |concept: &str, prop: &str| {
            CONCEPTS.iter().any(|c| c.name == concept && c.properties.contains(&prop))
        };
        let props = vec![
            PropertyFact { concept: "apple".into(), property: "red".into(), freq: 5 },
            PropertyFact { concept: "apple".into(), property: "punctual".into(), freq: 1 },
        ];
        assert_eq!(property_precision_at_k(&props, 1, gold), 1.0);
        assert_eq!(property_precision_at_k(&props, 2, gold), 0.5);
        assert_eq!(property_precision_at_k(&[], 5, gold), 0.0);
    }

    #[test]
    fn mining_generated_essays_beats_noise() {
        use kb_corpus::lexicon::CONCEPTS;
        use kb_corpus::{Corpus, CorpusConfig};
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let docs: Vec<&Doc> = corpus.essays.iter().collect();
        let (props, parts) = mine_commonsense(&docs, &CommonsenseConfig::default());
        assert!(!props.is_empty());
        assert!(!parts.is_empty());
        let gold = |concept: &str, prop: &str| {
            CONCEPTS.iter().any(|c| c.name == concept && c.properties.contains(&prop))
        };
        let p10 = property_precision_at_k(&props, 10, gold);
        assert!(p10 >= 0.8, "precision@10 = {p10}");
    }
}
