//! Property-based tests for the harvesting core: the MaxSat solver is
//! checked against brute force, Gibbs marginals against exact
//! enumeration, and the rule miner against a naive reference
//! implementation.

use proptest::prelude::*;
use std::collections::HashSet;

use kb_harvest::factorgraph::{gibbs_marginals, FactorGraph, GibbsConfig};
use kb_harvest::reasoning::{solve, Lit, MaxSatProblem, SolverConfig};

/// Random small MaxSat instances.
fn small_instance() -> impl Strategy<Value = MaxSatProblem> {
    let clause = (
        prop::collection::vec((0usize..6, any::<bool>()), 1..3),
        prop_oneof![Just(f64::INFINITY), 0.1f64..2.0],
    );
    prop::collection::vec(clause, 1..8).prop_map(|clauses| {
        let mut p = MaxSatProblem::new(6);
        for (lits, weight) in clauses {
            let lits: Vec<Lit> =
                lits.into_iter().map(|(var, positive)| Lit { var, positive }).collect();
            if weight.is_infinite() {
                p.hard(lits);
            } else {
                p.soft(lits, weight);
            }
        }
        p
    })
}

/// Brute-force optimum of a small instance.
fn brute_force(p: &MaxSatProblem) -> (usize, f64) {
    let n = p.num_vars;
    let mut best = (usize::MAX, f64::INFINITY);
    for mask in 0..(1u32 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let cost = p.cost(&assignment);
        if (cost.0, cost.1) < best {
            best = cost;
        }
    }
    best
}

/// Exact marginals of a small factor graph by enumeration.
fn exact_marginals(g: &FactorGraph) -> Vec<f64> {
    let n = g.num_vars;
    let mut weights = vec![0.0f64; 1 << n];
    for (mask, w) in weights.iter_mut().enumerate() {
        let state: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let mut log_p = 0.0;
        for f in &g.factors {
            match f {
                kb_harvest::factorgraph::Factor::Unary { var, log_odds } => {
                    if state[*var] {
                        log_p += log_odds;
                    }
                }
                kb_harvest::factorgraph::Factor::Pairwise { a, b, table } => {
                    log_p += table[2 * usize::from(state[*a]) + usize::from(state[*b])];
                }
            }
        }
        *w = log_p.exp();
    }
    let z: f64 = weights.iter().sum();
    (0..n)
        .map(|v| {
            weights
                .iter()
                .enumerate()
                .filter(|&(mask, _)| mask & (1 << v) != 0)
                .map(|(_, w)| w)
                .sum::<f64>()
                / z
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The stochastic solver matches the brute-force optimum on small
    /// instances (hard count always; soft cost within epsilon when hard
    /// counts agree).
    #[test]
    fn maxsat_matches_brute_force(p in small_instance()) {
        let cfg = SolverConfig { flips_per_var: 60, restarts: 6, ..Default::default() };
        let sol = solve(&p, &cfg);
        let (best_hard, best_soft) = brute_force(&p);
        prop_assert_eq!(sol.hard_violations, best_hard, "hard optimum missed");
        prop_assert!(
            sol.soft_cost <= best_soft + 1e-9,
            "soft cost {} worse than optimum {}",
            sol.soft_cost,
            best_soft
        );
    }

    /// Gibbs marginals approximate exact enumeration on small graphs.
    #[test]
    fn gibbs_approximates_exact(
        unaries in prop::collection::vec(-2.0f64..2.0, 3),
        couple in -2.0f64..2.0,
    ) {
        let mut g = FactorGraph::new(3);
        for (v, &lo) in unaries.iter().enumerate() {
            g.unary(v, lo);
        }
        g.pairwise(0, 1, [couple, -couple, -couple, couple]);
        let exact = exact_marginals(&g);
        let est = gibbs_marginals(&g, &GibbsConfig { burn_in: 300, samples: 3000, ..Default::default() });
        for (e, m) in exact.iter().zip(&est) {
            prop_assert!((e - m).abs() < 0.08, "exact {e} vs gibbs {m}");
        }
    }

    /// Mined n-ary rule statistics are internally consistent: support ≤
    /// min(body size, head size) and confidences in [0, 1].
    #[test]
    fn rule_stats_are_consistent(
        facts in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 1..60)
    ) {
        let mut kb = kb_store::KnowledgeBase::new();
        for (s, r, o) in &facts {
            kb.assert_str(&format!("e{s}"), &format!("r{r}"), &format!("e{o}"));
        }
        let cfg = kb_harvest::rules::RuleConfig {
            min_support: 1,
            min_pca_confidence: 0.0,
            min_std_confidence: 0.0,
            min_head_coverage: 0.0,
            ..Default::default()
        };
        let rules = kb_harvest::rules::mine_rules(&kb, &cfg);
        for r in &rules {
            prop_assert!((0.0..=1.0).contains(&r.std_confidence), "{r}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.pca_confidence), "{r}");
            prop_assert!((0.0..=1.0).contains(&r.head_coverage), "{r}");
            prop_assert!(r.std_confidence <= r.pca_confidence + 1e-9,
                "std must not exceed PCA: {r}");
        }
    }

    /// Rule application never predicts facts already in the KB.
    #[test]
    fn rule_application_predicts_only_novel_facts(
        facts in prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 1..40)
    ) {
        let mut kb = kb_store::KnowledgeBase::new();
        let mut present: HashSet<(String, String, String)> = HashSet::new();
        for (s, r, o) in &facts {
            let (s, r, o) = (format!("e{s}"), format!("r{r}"), format!("e{o}"));
            kb.assert_str(&s, &r, &o);
            present.insert((s, r, o));
        }
        let cfg = kb_harvest::rules::RuleConfig {
            min_support: 1,
            min_pca_confidence: 0.0,
            min_std_confidence: 0.0,
            min_head_coverage: 0.0,
            ..Default::default()
        };
        let rules = kb_harvest::rules::mine_rules(&kb, &cfg);
        for p in kb_harvest::rules::apply_rules(&kb, &rules, &cfg) {
            prop_assert!(
                !present.contains(&(p.subject.clone(), p.relation.clone(), p.object.clone())),
                "predicted an existing fact {p:?}"
            );
        }
    }

    /// Temporal inference returns a span consistent with its hints.
    #[test]
    fn inferred_span_is_supported_by_hints(
        hints in prop::collection::vec(
            (prop::option::of(1900i32..2000), any::<bool>()),
            0..10
        )
    ) {
        use kb_harvest::facts::patterns::TimeHint;
        let hints: Vec<TimeHint> = hints
            .into_iter()
            .map(|(b, interval)| TimeHint {
                begin: b,
                end: if interval { b.map(|y| y + 5) } else { None },
            })
            .collect();
        match kb_harvest::temporal::infer_span(&hints) {
            None => prop_assert!(hints.iter().all(|h| h.begin.is_none())),
            Some(span) => {
                let begin = span.begin.expect("inferred spans have a begin");
                prop_assert!(
                    hints.iter().any(|h| h.begin == Some(begin.year)),
                    "begin {begin} not among hints"
                );
            }
        }
    }
}
