//! Property-based tests for kb-nlp invariants.

use proptest::prelude::*;

use kb_nlp::similarity::*;
use kb_nlp::{split_sentences, stem, tokenize, PosTagger};

proptest! {
    /// Every token's span slices back to exactly its text, tokens are
    /// ordered and non-overlapping, and no token is empty.
    #[test]
    fn token_spans_are_exact_and_ordered(text in "\\PC{0,200}") {
        let toks = tokenize(&text);
        let mut last_end = 0usize;
        for t in &toks {
            prop_assert!(t.start >= last_end, "overlap at {}", t.start);
            prop_assert!(t.end > t.start);
            prop_assert_eq!(&text[t.start..t.end], t.text.as_str());
            last_end = t.end;
        }
    }

    /// Tokens never contain whitespace.
    #[test]
    fn tokens_contain_no_whitespace(text in "[ -~\\n\\t]{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(!t.text.chars().any(char::is_whitespace), "{:?}", t.text);
        }
    }

    /// Sentence spans are ordered, non-overlapping, in-bounds, and cover
    /// every non-whitespace character of the input.
    #[test]
    fn sentence_spans_partition_content(text in "[a-zA-Z0-9 .!?',]{0,300}") {
        let spans = split_sentences(&text);
        let mut last_end = 0usize;
        for s in &spans {
            prop_assert!(s.start >= last_end);
            prop_assert!(s.end <= text.len());
            prop_assert!(s.end > s.start);
            last_end = s.end;
        }
        let covered: usize = spans.iter()
            .map(|s| text[s.start..s.end].chars().filter(|c| !c.is_whitespace()).count())
            .sum();
        let total = text.chars().filter(|c| !c.is_whitespace()).count();
        prop_assert_eq!(covered, total, "sentences lost content chars");
    }

    /// Stemming never grows a word, stays lowercase-ASCII, and repeated
    /// application monotonically shrinks toward a fixpoint. (Porter is
    /// *not* idempotent in general — e.g. "aase" → "aas" → "aa" — so we
    /// assert convergence, not one-step idempotence.)
    #[test]
    fn stem_shrinks_and_converges(word in "[a-z]{1,20}") {
        let mut current = word.clone();
        for _ in 0..6 {
            let next = stem(&current);
            prop_assert!(next.len() <= current.len());
            prop_assert!(next.bytes().all(|b| b.is_ascii_lowercase() || !b.is_ascii()));
            if next == current {
                return Ok(()); // fixpoint reached
            }
            current = next;
        }
        prop_assert_eq!(stem(&current), current.clone(), "no fixpoint after 6 passes");
    }

    /// POS tagging yields exactly one tag per token for any input.
    #[test]
    fn tagging_is_total(text in "\\PC{0,200}") {
        let toks = tokenize(&text);
        let tags = PosTagger::new().tag(&toks);
        prop_assert_eq!(tags.len(), toks.len());
    }

    /// Chunks are ordered, non-overlapping, with heads inside them.
    #[test]
    fn chunks_well_formed(text in "[a-zA-Z ]{0,200}") {
        let toks = tokenize(&text);
        let tags = PosTagger::new().tag(&toks);
        let chunks = kb_nlp::chunk(&toks, &tags);
        let mut last_end = 0usize;
        for c in &chunks {
            prop_assert!(c.start >= last_end);
            prop_assert!(c.end <= toks.len());
            prop_assert!(c.head >= c.start && c.head < c.end);
            last_end = c.end;
        }
    }

    /// Similarity metric axioms: bounded, reflexive, symmetric (for the
    /// symmetric family).
    #[test]
    fn similarity_axioms(a in "[a-zA-Z ]{0,20}", b in "[a-zA-Z ]{0,20}") {
        let measures: [fn(&str, &str) -> f64; 5] =
            [levenshtein_sim, jaro, jaro_winkler, jaccard_tokens, dice_bigrams];
        for f in measures {
            let v = f(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{v}");
            prop_assert!((f(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-9, "asymmetric");
        }
    }

    /// Levenshtein triangle inequality.
    #[test]
    fn levenshtein_triangle(
        a in "[a-z]{0,10}", b in "[a-z]{0,10}", c in "[a-z]{0,10}"
    ) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// TF-IDF cosine is bounded and exact-match maximal.
    #[test]
    fn tfidf_cosine_bounds(
        docs in prop::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,6}", 1..8),
        probe in "[a-z]{1,8}( [a-z]{1,8}){0,6}",
    ) {
        let mut v = kb_nlp::tfidf::Vocabulary::new();
        for d in &docs {
            v.add_text(d);
        }
        let pv = v.vectorize_text(&probe);
        for d in &docs {
            let dv = v.vectorize_text(d);
            let cos = pv.cosine(&dv);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&cos));
        }
        if !pv.is_empty() {
            prop_assert!((pv.cosine(&pv) - 1.0).abs() < 1e-9);
        }
    }

    /// Mined n-grams actually occur with the claimed support.
    #[test]
    fn ngram_support_is_truthful(
        seqs in prop::collection::vec(
            prop::collection::vec(0u8..5, 0..8), 0..10
        ),
        min_support in 1usize..4,
    ) {
        let mined = kb_nlp::seqmine::frequent_ngrams(&seqs, min_support, 3);
        for p in &mined {
            let actual = seqs.iter()
                .filter(|s| s.windows(p.items.len()).any(|w| w == p.items.as_slice()))
                .count();
            prop_assert_eq!(actual, p.support);
            prop_assert!(p.support >= min_support);
        }
    }

    /// PrefixSpan patterns are genuine subsequences with truthful support.
    #[test]
    fn prefix_span_support_is_truthful(
        seqs in prop::collection::vec(
            prop::collection::vec(0u8..4, 0..6), 0..8
        ),
    ) {
        let mined = kb_nlp::seqmine::prefix_span(&seqs, 1, 3);
        fn is_subseq(needle: &[u8], hay: &[u8]) -> bool {
            let mut it = hay.iter();
            needle.iter().all(|n| it.any(|h| h == n))
        }
        for p in &mined {
            let actual = seqs.iter().filter(|s| is_subseq(&p.items, s)).count();
            prop_assert_eq!(actual, p.support, "pattern {:?}", p.items);
        }
    }
}
