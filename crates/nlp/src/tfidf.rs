//! Sparse TF-IDF vectors and cosine similarity.
//!
//! NED context scoring (tutorial §4) compares the words surrounding a
//! mention with the salient phrases of each candidate entity. We model
//! both as sparse TF-IDF vectors over a shared [`Vocabulary`].

use std::collections::HashMap;

use crate::stopwords::is_stopword;
use crate::token::word_texts;

/// A vocabulary with document frequencies, built once over a corpus of
/// "documents" (any bags of words) and then used to vectorize new text.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    index: HashMap<String, u32>,
    doc_freq: Vec<u32>,
    num_docs: usize,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document's words (stopwords excluded, counted once per
    /// document for DF purposes).
    pub fn add_document<'a, I: IntoIterator<Item = &'a str>>(&mut self, words: I) {
        self.num_docs += 1;
        let mut seen: Vec<u32> = Vec::new();
        for w in words {
            let lower = w.to_lowercase();
            if is_stopword(&lower) || lower.is_empty() {
                continue;
            }
            let next_id = self.index.len() as u32;
            let id = *self.index.entry(lower).or_insert(next_id);
            if id as usize == self.doc_freq.len() {
                self.doc_freq.push(0);
            }
            if !seen.contains(&id) {
                seen.push(id);
                self.doc_freq[id as usize] += 1;
            }
        }
    }

    /// Convenience: add raw text as one document.
    pub fn add_text(&mut self, text: &str) {
        let words = word_texts(text);
        self.add_document(words.iter().map(String::as_str));
    }

    /// Number of distinct indexed words.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of documents seen.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Smoothed inverse document frequency of word id `id`:
    /// `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, id: u32) -> f64 {
        let df = self.doc_freq.get(id as usize).copied().unwrap_or(0) as f64;
        ((1.0 + self.num_docs as f64) / (1.0 + df)).ln() + 1.0
    }

    /// Builds the TF-IDF vector of a bag of words. Unknown words are
    /// skipped (they carry no comparable signal).
    pub fn vectorize<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> SparseVector {
        let mut counts: HashMap<u32, f64> = HashMap::new();
        for w in words {
            let lower = w.to_lowercase();
            if let Some(&id) = self.index.get(&lower) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut entries: Vec<(u32, f64)> =
            counts.into_iter().map(|(id, tf)| (id, (1.0 + tf.ln()) * self.idf(id))).collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        SparseVector { entries }
    }

    /// Convenience: vectorize raw text.
    pub fn vectorize_text(&self, text: &str) -> SparseVector {
        let words = word_texts(text);
        self.vectorize(words.iter().map(String::as_str))
    }
}

/// A sparse vector sorted by dimension id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Number of non-zero dimensions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Dot product (merge join over sorted dimension ids).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (da, va) = self.entries[i];
            let (db, vb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += va * vb;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity in `[0, 1]` (both vectors non-negative).
    /// Zero if either vector is empty.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        self.dot(other) / denom
    }

    /// Adds `other` into `self` (vector sum), used to build entity
    /// profiles from multiple evidence snippets.
    pub fn add_assign(&mut self, other: &SparseVector) {
        let mut merged: Vec<(u32, f64)> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(da, va)), Some(&(db, vb))) => match da.cmp(&db) {
                    std::cmp::Ordering::Less => {
                        merged.push((da, va));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((db, vb));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((da, va + vb));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&e), None) => {
                    merged.push(e);
                    i += 1;
                }
                (None, Some(&e)) => {
                    merged.push(e);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.entries = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.add_text("apple designs computers and phones");
        v.add_text("samsung designs phones");
        v.add_text("oranges and apples are fruit");
        v
    }

    #[test]
    fn vocabulary_counts_docs_and_words() {
        let v = vocab();
        assert_eq!(v.num_docs(), 3);
        assert!(v.len() >= 7);
    }

    #[test]
    fn stopwords_are_excluded() {
        let v = vocab();
        let vec = v.vectorize_text("and are the");
        assert!(vec.is_empty());
    }

    #[test]
    fn idf_decreases_with_frequency() {
        let mut v = Vocabulary::new();
        v.add_text("common word alpha");
        v.add_text("common word beta");
        v.add_text("common gamma");
        let common_vec = v.vectorize_text("common");
        let rare_vec = v.vectorize_text("alpha");
        // Single-word vectors: weight = idf directly comparable.
        assert!(rare_vec.norm() > common_vec.norm());
    }

    #[test]
    fn cosine_identity_and_disjoint() {
        let v = vocab();
        let a = v.vectorize_text("apple computers");
        let b = v.vectorize_text("apple computers");
        let c = v.vectorize_text("samsung");
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(a.cosine(&SparseVector::default()), 0.0);
    }

    #[test]
    fn cosine_reflects_shared_terms() {
        let v = vocab();
        let phones1 = v.vectorize_text("apple phones");
        let phones2 = v.vectorize_text("samsung phones");
        let fruit = v.vectorize_text("oranges fruit");
        assert!(phones1.cosine(&phones2) > phones1.cosine(&fruit));
    }

    #[test]
    fn unknown_words_are_skipped() {
        let v = vocab();
        let vec = v.vectorize_text("zorkmid flibber");
        assert!(vec.is_empty());
    }

    #[test]
    fn add_assign_merges_sorted() {
        let v = vocab();
        let mut a = v.vectorize_text("apple");
        let b = v.vectorize_text("samsung apple");
        let before_dot = a.dot(&b);
        a.add_assign(&b);
        assert!(a.nnz() >= 2);
        assert!(a.dot(&b) > before_dot);
        // Entries remain sorted for the merge join.
        let dims: Vec<u32> = a.entries.iter().map(|&(d, _)| d).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted);
    }

    #[test]
    fn log_tf_dampens_repetition() {
        let v = vocab();
        let once = v.vectorize_text("apple");
        let thrice = v.vectorize_text("apple apple apple");
        assert!(thrice.norm() < 3.0 * once.norm());
        assert!(thrice.norm() > once.norm());
    }
}
