//! The Porter stemming algorithm (Porter, 1980), used to normalize
//! relation phrases in Open IE and context words in NED.
//!
//! This is a faithful implementation of the original five-step
//! algorithm over ASCII lowercase words; non-ASCII input is returned
//! unchanged (the synthetic corpus is ASCII-only, and stemming foreign
//! scripts with Porter would be wrong anyway).

/// Stems `word` with the Porter algorithm. Input is lowercased first.
///
/// ```
/// use kb_nlp::stem;
/// assert_eq!(stem("running"), "run");
/// assert_eq!(stem("relational"), "relat");
/// assert_eq!(stem("caresses"), "caress");
/// ```
pub fn stem(word: &str) -> String {
    let lower = word.to_lowercase();
    if lower.len() <= 2 || !lower.bytes().all(|b| b.is_ascii_lowercase()) {
        return lower;
    }
    let mut w: Vec<u8> = lower.into_bytes();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii stays ascii")
}

/// Is `w[i]` a consonant, per Porter's definition (y is a consonant when
/// preceded by a vowel-position character... precisely: a,e,i,o,u are
/// vowels; y is a vowel iff preceded by a consonant)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// The measure m of the stem `w[..len]`: number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants; that completes one VC.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

/// Does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end with a double consonant?
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant-vowel-consonant, where the final
/// consonant is not w, x or y?
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the remaining stem has measure
/// > `min_m`, replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
        true
    } else {
        // Suffix matched but condition failed: the rule still "fires"
        // in the sense that no later suffix in the same step applies.
        true
    }
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        // sses -> ss, ies -> i
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let fired = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if fired {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suf, rep) in RULES {
        if ends_with(w, suf) {
            replace_if_m(w, suf, rep, 0);
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suf, rep) in RULES {
        if ends_with(w, suf) {
            replace_if_m(w, suf, rep, 0);
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suf in SUFFIXES {
        if ends_with(w, suf) {
            let stem_len = w.len() - suf.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if ends_with(w, "ll") && measure(w, w.len()) > 1 {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_porter_examples() {
        // From Porter's original paper / reference vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn short_words_pass_through() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("Is"), "is");
    }

    #[test]
    fn non_ascii_passes_through_lowercased() {
        assert_eq!(stem("Zürich"), "zürich");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["run", "founder", "running", "companies", "acquisition"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stem not idempotent on {w}");
        }
    }
}
