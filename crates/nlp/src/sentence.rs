//! Sentence splitting.
//!
//! Rule-based splitter: a sentence ends at `.`, `!` or `?` followed by
//! whitespace and an uppercase letter (or end of text), unless the dot
//! terminates a known abbreviation or an initial (`J. Smith`).

/// A sentence as a byte range into the original text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentenceSpan {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Abbreviations whose trailing dot does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "inc", "ltd", "co", "corp", "vs", "etc",
    "e.g", "i.e", "fig", "no", "vol", "approx",
];

/// Splits `text` into sentence spans.
///
/// ```
/// use kb_nlp::split_sentences;
/// let s = split_sentences("Dr. Smith arrived. He sat down.");
/// assert_eq!(s.len(), 2);
/// ```
pub fn split_sentences(text: &str) -> Vec<SentenceSpan> {
    let mut spans = Vec::new();
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut sent_start: Option<usize> = None;
    let mut i = 0;
    while i < n {
        let (off, c) = chars[i];
        if sent_start.is_none() && !c.is_whitespace() {
            sent_start = Some(off);
        }
        if matches!(c, '.' | '!' | '?') && sent_start.is_some() {
            let is_boundary = match c {
                '!' | '?' => true,
                _ => dot_ends_sentence(text, &chars, i),
            };
            if is_boundary {
                let end = if i + 1 < n { chars[i + 1].0 } else { text.len() };
                spans.push(SentenceSpan { start: sent_start.unwrap(), end });
                sent_start = None;
            }
        }
        i += 1;
    }
    if let Some(start) = sent_start {
        let trimmed_end = text.trim_end().len();
        if trimmed_end > start {
            spans.push(SentenceSpan { start, end: trimmed_end });
        }
    }
    spans
}

/// Decides whether the dot at char index `i` terminates a sentence.
fn dot_ends_sentence(text: &str, chars: &[(usize, char)], i: usize) -> bool {
    // Find the word immediately before the dot.
    let mut j = i;
    while j > 0 && (chars[j - 1].1.is_alphanumeric() || chars[j - 1].1 == '.') {
        j -= 1;
    }
    let word_before: String = chars[j..i].iter().map(|&(_, c)| c).collect();
    let lower = word_before.to_lowercase();
    // Known abbreviation?
    if ABBREVIATIONS.contains(&lower.as_str()) {
        return false;
    }
    // Single-letter initial such as "J." in "J. Smith"?
    if word_before.len() == 1 && word_before.chars().next().unwrap().is_uppercase() {
        return false;
    }
    // Decimal number "3.14": digit on both sides (tokenizer handles most,
    // but be defensive when the dot splits digits).
    let next = chars.get(i + 1).map(|&(_, c)| c);
    if word_before.chars().last().is_some_and(|c| c.is_ascii_digit())
        && next.is_some_and(|c| c.is_ascii_digit())
    {
        return false;
    }
    // A boundary requires end-of-text or whitespace after the dot...
    match next {
        None => true,
        Some(c) if c.is_whitespace() => {
            // ...and the next non-space char (if any) should not be
            // lowercase (mid-sentence dots in odd text).
            let upcoming = text[chars[i].0 + 1..].chars().find(|c| !c.is_whitespace());
            match upcoming {
                None => true,
                Some(c) => !c.is_lowercase(),
            }
        }
        Some('"') | Some('\'') | Some(')') => true,
        Some(_) => false,
    }
}

/// Convenience: the sentence texts themselves.
pub fn sentence_texts(text: &str) -> Vec<&str> {
    split_sentences(text).into_iter().map(|s| text[s.start..s.end].trim()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_simple_sentences() {
        let s = sentence_texts("Jobs founded Apple. Wozniak joined him. They built computers.");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], "Jobs founded Apple.");
        assert_eq!(s[2], "They built computers.");
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = sentence_texts("Dr. Smith works at Apple Inc. in Cupertino. He likes it.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("Cupertino"));
    }

    #[test]
    fn initials_do_not_split() {
        let s = sentence_texts("J. R. Smith scored. The crowd cheered.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "J. R. Smith scored.");
    }

    #[test]
    fn question_and_exclamation_marks() {
        let s = sentence_texts("Really? Yes! Fine.");
        assert_eq!(s, vec!["Really?", "Yes!", "Fine."]);
    }

    #[test]
    fn unterminated_final_sentence_is_kept() {
        let s = sentence_texts("First one. And a trailing fragment");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], "And a trailing fragment");
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        let s = sentence_texts("Pi is 3.14159 roughly. Indeed.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.14159"));
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }

    #[test]
    fn spans_index_into_source() {
        let text = "One here. Two there.";
        for sp in split_sentences(text) {
            assert!(text.get(sp.start..sp.end).is_some());
        }
    }
}
