//! A small English stopword list used by TF-IDF contexts and Open IE
//! argument filtering.

/// Function words excluded from bag-of-words contexts.
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Whether `word` (case-insensitive) is an English stopword.
pub fn is_stopword(word: &str) -> bool {
    let lower = word.to_lowercase();
    STOPWORDS.binary_search(&lower.as_str()).is_ok()
}

/// The full stopword list (sorted).
pub fn stopwords() -> &'static [&'static str] {
    STOPWORDS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "stopword list must stay sorted");
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "The", "IS", "and", "of"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["apple", "founded", "computer", "city"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }
}
