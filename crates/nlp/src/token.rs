//! Offset-preserving tokenization.
//!
//! Tokens carry their byte span in the original text, so downstream
//! consumers (mention annotation, pattern extraction) can always map
//! back to the source. The tokenizer is rule-based and deterministic:
//!
//! * runs of alphabetic characters (plus internal apostrophes and
//!   hyphens, as in `don't` / `state-of-the-art`) become [`TokenKind::Word`];
//! * runs of digits (plus internal `.`/`,` as in `1,234.5`) become
//!   [`TokenKind::Number`];
//! * every other non-whitespace character is a single
//!   [`TokenKind::Punct`] token.

use std::fmt;

/// Classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (may contain internal `'` or `-`).
    Word,
    /// Numeric literal (may contain internal `.` or `,`).
    Number,
    /// Single punctuation character.
    Punct,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (owned copy of the source slice).
    pub text: String,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte in the source.
    pub end: usize,
    /// What kind of token this is.
    pub kind: TokenKind,
}

impl Token {
    /// Lower-cased text, used for lexicon lookups.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// Whether the token starts with an uppercase letter — the cheap
    /// named-entity signal used by mention detection.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Whether `c` may appear *inside* a word token (but not start/end one).
fn word_internal(c: char) -> bool {
    c == '\'' || c == '-'
}

/// Whether `c` may appear *inside* a number token.
fn number_internal(c: char) -> bool {
    c == '.' || c == ','
}

/// Tokenizes `text` into words, numbers and punctuation with byte spans.
///
/// ```
/// use kb_nlp::{tokenize, TokenKind};
/// let toks = tokenize("Apple was founded in 1976.");
/// assert_eq!(toks.len(), 6);
/// assert_eq!(toks[4].text, "1976");
/// assert_eq!(toks[4].kind, TokenKind::Number);
/// assert_eq!(&"Apple was founded in 1976."[toks[4].start..toks[4].end], "1976");
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut i = 0;
    while i < n {
        let (start, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() {
            let mut j = i + 1;
            while j < n {
                let cj = chars[j].1;
                if cj.is_alphabetic()
                    || (word_internal(cj) && j + 1 < n && chars[j + 1].1.is_alphabetic())
                {
                    j += 1;
                } else {
                    break;
                }
            }
            let end = if j < n { chars[j].0 } else { text.len() };
            tokens.push(Token {
                text: text[start..end].to_string(),
                start,
                end,
                kind: TokenKind::Word,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let cj = chars[j].1;
                if cj.is_ascii_digit()
                    || (number_internal(cj) && j + 1 < n && chars[j + 1].1.is_ascii_digit())
                {
                    j += 1;
                } else {
                    break;
                }
            }
            let end = if j < n { chars[j].0 } else { text.len() };
            tokens.push(Token {
                text: text[start..end].to_string(),
                start,
                end,
                kind: TokenKind::Number,
            });
            i = j;
        } else {
            let end = if i + 1 < n { chars[i + 1].0 } else { text.len() };
            tokens.push(Token {
                text: text[start..end].to_string(),
                start,
                end,
                kind: TokenKind::Punct,
            });
            i += 1;
        }
    }
    tokens
}

/// Lower-cased word texts only (numbers and punctuation dropped) — the
/// bag-of-words view used by TF-IDF.
pub fn word_texts(text: &str) -> Vec<String> {
    tokenize(text).into_iter().filter(|t| t.kind == TokenKind::Word).map(|t| t.lower()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sentence() {
        let toks = tokenize("Steve Jobs founded Apple.");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Steve", "Jobs", "founded", "Apple", "."]);
        assert_eq!(toks[4].kind, TokenKind::Punct);
    }

    #[test]
    fn spans_point_back_into_source() {
        let text = "He said: \"1,234.5 items\".";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn numbers_with_internal_separators() {
        let toks = tokenize("1,234.5 and 42");
        assert_eq!(toks[0].text, "1,234.5");
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[2].text, "42");
    }

    #[test]
    fn trailing_separator_is_not_swallowed() {
        let toks = tokenize("1976.");
        assert_eq!(toks[0].text, "1976");
        assert_eq!(toks[1].text, ".");
    }

    #[test]
    fn hyphens_and_apostrophes_inside_words() {
        let toks = tokenize("state-of-the-art don't stop-");
        assert_eq!(toks[0].text, "state-of-the-art");
        assert_eq!(toks[1].text, "don't");
        assert_eq!(toks[2].text, "stop");
        assert_eq!(toks[3].text, "-");
    }

    #[test]
    fn unicode_words() {
        let toks = tokenize("Zürich is beautiful");
        assert_eq!(toks[0].text, "Zürich");
        assert!(toks[0].is_capitalized());
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn capitalization_check() {
        let toks = tokenize("Apple apple");
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
    }

    #[test]
    fn word_texts_filters_and_lowercases() {
        assert_eq!(word_texts("The 3 Apples!"), vec!["the", "apples"]);
    }
}
