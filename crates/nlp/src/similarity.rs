//! String similarity measures for entity linkage (tutorial §4).
//!
//! All measures return values in `[0, 1]` where 1 means identical.
//! Character-level: [`levenshtein`], [`levenshtein_sim`], [`jaro`],
//! [`jaro_winkler`]. Set-level: [`jaccard_tokens`], [`dice_bigrams`],
//! [`overlap_tokens`]. Hybrid: [`monge_elkan`].

use std::collections::HashSet;

/// Levenshtein edit distance (insert/delete/substitute, unit costs),
/// computed over chars with a two-row DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 - dist / max_len`. Two empty strings are
/// identical (1.0).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    let mut matches_b_order: Vec<(usize, char)> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                matches_b_order.push((j, b[j]));
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    matches_b_order.sort_by_key(|&(j, _)| j);
    let transpositions =
        a_matches.iter().zip(matches_b_order.iter()).filter(|(ca, (_, cb))| *ca != cb).count();
    let m = m as f64;
    let t = transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 chars of common
/// prefix with scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of whitespace-delimited lowercase token sets.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = a.split_whitespace().map(str::to_lowercase).collect();
    let sb: HashSet<String> = b.split_whitespace().map(str::to_lowercase).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Overlap coefficient of token sets: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = a.split_whitespace().map(str::to_lowercase).collect();
    let sb: HashSet<String> = b.split_whitespace().map(str::to_lowercase).collect();
    if sa.is_empty() || sb.is_empty() {
        return f64::from(u8::from(sa.is_empty() && sb.is_empty()));
    }
    let inter = sa.intersection(&sb).count() as f64;
    inter / sa.len().min(sb.len()) as f64
}

/// Dice coefficient over character bigrams (Sørensen–Dice), robust for
/// short names.
pub fn dice_bigrams(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> Vec<(char, char)> {
        let cs: Vec<char> = s.to_lowercase().chars().collect();
        cs.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return f64::from(u8::from(a.to_lowercase() == b.to_lowercase()));
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut gb_used = vec![false; gb.len()];
    let mut matches = 0usize;
    for g in &ga {
        if let Some(j) = gb.iter().enumerate().position(|(j, h)| !gb_used[j] && h == g) {
            gb_used[j] = true;
            matches += 1;
        }
    }
    2.0 * matches as f64 / (ga.len() + gb.len()) as f64
}

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match
/// in `b`. Asymmetric by design; symmetrize by averaging both directions
/// if needed.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta: Vec<&str> = a.split_whitespace().collect();
    let tb: Vec<&str> = b.split_whitespace().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let sum: f64 = ta
        .iter()
        .map(|x| {
            tb.iter()
                .map(|y| jaro_winkler(&x.to_lowercase(), &y.to_lowercase()))
                .fold(0.0, f64::max)
        })
        .sum();
    sum / ta.len() as f64
}

/// Normalized shared-prefix length: `common_prefix / max_len`.
pub fn prefix_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    let common = a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count();
    common as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.9444444).abs() < 1e-6);
        assert!((jaro("dixon", "dicksonx") - 0.7666666).abs() < 1e-6);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
    }

    #[test]
    fn jaro_winkler_boosts_prefix_matches() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611111).abs() < 1e-6);
        assert!(jaro_winkler("apple", "applf") > jaro_winkler("apple", "fpple"));
    }

    #[test]
    fn jaccard_and_overlap() {
        assert_eq!(jaccard_tokens("steve jobs", "jobs steve"), 1.0);
        assert!((jaccard_tokens("steve jobs", "steve wozniak") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_tokens("steve", "steve jobs"), 1.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
    }

    #[test]
    fn dice_bigrams_known() {
        assert_eq!(dice_bigrams("night", "nacht"), 0.25);
        assert_eq!(dice_bigrams("abc", "abc"), 1.0);
        assert_eq!(dice_bigrams("a", "a"), 1.0, "single chars compare by equality");
        assert_eq!(dice_bigrams("a", "b"), 0.0);
    }

    #[test]
    fn monge_elkan_tolerates_token_reorder_and_typos() {
        let s = monge_elkan("steve jobs", "jobs steven");
        assert!(s > 0.9, "got {s}");
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("x", ""), 0.0);
    }

    #[test]
    fn all_measures_are_bounded_and_reflexive() {
        let pairs = [("apple inc", "aple inc."), ("x", "y"), ("", "z")];
        for (a, b) in pairs {
            for f in [levenshtein_sim, jaro, jaro_winkler, jaccard_tokens, dice_bigrams, prefix_sim]
                as [fn(&str, &str) -> f64; 6]
            {
                let v = f(a, b);
                assert!((0.0..=1.0).contains(&v), "{v} out of bounds");
                assert_eq!(f(a, a), 1.0, "not reflexive on {a:?}");
            }
        }
    }

    #[test]
    fn symmetric_measures_are_symmetric() {
        let (a, b) = ("cupertino", "cupertion");
        assert_eq!(levenshtein(a, b), levenshtein(b, a));
        assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
        assert!((dice_bigrams(a, b) - dice_bigrams(b, a)).abs() < 1e-12);
        assert!((jaccard_tokens(a, b) - jaccard_tokens(b, a)).abs() < 1e-12);
    }
}
