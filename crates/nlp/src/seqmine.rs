//! Frequent sequence mining.
//!
//! Open IE systems use "big-data techniques like frequent sequence
//! mining" (tutorial §3) to find prototypic relation phrases. Two miners
//! are provided:
//!
//! * [`frequent_ngrams`] — contiguous n-grams with minimum support, the
//!   workhorse for relation-phrase lexical constraints;
//! * [`prefix_span`] — full PrefixSpan (Pei et al.) mining *gapped*
//!   subsequences, used for pattern generalization.

use std::collections::HashMap;
use std::hash::Hash;

/// A mined pattern with its support (number of input sequences that
/// contain it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedPattern<T> {
    /// The item sequence.
    pub items: Vec<T>,
    /// Number of input sequences containing the pattern.
    pub support: usize,
}

/// Mines all contiguous n-grams of length `1..=max_len` occurring in at
/// least `min_support` distinct sequences. Results are sorted by
/// descending support, then length, then items.
pub fn frequent_ngrams<T: Eq + Hash + Clone + Ord>(
    sequences: &[Vec<T>],
    min_support: usize,
    max_len: usize,
) -> Vec<MinedPattern<T>> {
    let mut counts: HashMap<Vec<T>, usize> = HashMap::new();
    for seq in sequences {
        let mut seen: HashMap<&[T], ()> = HashMap::new();
        for len in 1..=max_len.min(seq.len()) {
            for window in seq.windows(len) {
                // Count each distinct n-gram once per sequence.
                if seen.insert(window, ()).is_none() {
                    *counts.entry(window.to_vec()).or_insert(0) += 1;
                }
            }
        }
    }
    let mut out: Vec<MinedPattern<T>> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .map(|(items, support)| MinedPattern { items, support })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(a.items.len().cmp(&b.items.len()))
            .then(a.items.cmp(&b.items))
    });
    out
}

/// PrefixSpan: mines all (possibly gapped) subsequences with support at
/// least `min_support` and length at most `max_len`.
///
/// Support counts distinct input sequences. The projected-database
/// representation is `(sequence index, start offset)` pairs.
pub fn prefix_span<T: Eq + Hash + Clone + Ord>(
    sequences: &[Vec<T>],
    min_support: usize,
    max_len: usize,
) -> Vec<MinedPattern<T>> {
    let mut results = Vec::new();
    // Initial projection: every sequence from offset 0.
    let projection: Vec<(usize, usize)> = (0..sequences.len()).map(|i| (i, 0)).collect();
    let mut prefix: Vec<T> = Vec::new();
    grow(sequences, &projection, &mut prefix, min_support, max_len, &mut results);
    results.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(a.items.len().cmp(&b.items.len()))
            .then(a.items.cmp(&b.items))
    });
    results
}

fn grow<T: Eq + Hash + Clone + Ord>(
    sequences: &[Vec<T>],
    projection: &[(usize, usize)],
    prefix: &mut Vec<T>,
    min_support: usize,
    max_len: usize,
    results: &mut Vec<MinedPattern<T>>,
) {
    if prefix.len() >= max_len {
        return;
    }
    // Count, per candidate next item, the distinct sequences supporting it.
    let mut support: HashMap<T, usize> = HashMap::new();
    for &(si, off) in projection {
        let mut seen_here: Vec<&T> = Vec::new();
        for item in &sequences[si][off..] {
            if !seen_here.contains(&item) {
                seen_here.push(item);
                *support.entry(item.clone()).or_insert(0) += 1;
            }
        }
    }
    let mut candidates: Vec<(T, usize)> =
        support.into_iter().filter(|&(_, c)| c >= min_support).collect();
    candidates.sort_by(|a, b| a.0.cmp(&b.0));
    for (item, sup) in candidates {
        // Project: for each sequence, the position after the *first*
        // occurrence of `item` at or past the current offset.
        let new_projection: Vec<(usize, usize)> = projection
            .iter()
            .filter_map(|&(si, off)| {
                sequences[si][off..].iter().position(|x| *x == item).map(|p| (si, off + p + 1))
            })
            .collect();
        prefix.push(item);
        results.push(MinedPattern { items: prefix.clone(), support: sup });
        grow(sequences, &new_projection, prefix, min_support, max_len, results);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(data: &[&str]) -> Vec<Vec<String>> {
        data.iter().map(|s| s.split_whitespace().map(str::to_string).collect()).collect()
    }

    #[test]
    fn ngrams_count_distinct_sequences() {
        let data = seqs(&["was born in", "was born in", "was raised in"]);
        let mined = frequent_ngrams(&data, 2, 3);
        let find = |items: &[&str]| {
            mined
                .iter()
                .find(|p| p.items.iter().map(String::as_str).collect::<Vec<_>>() == items)
                .map(|p| p.support)
        };
        assert_eq!(find(&["was"]), Some(3));
        assert_eq!(find(&["was", "born"]), Some(2));
        assert_eq!(find(&["was", "born", "in"]), Some(2));
        assert_eq!(find(&["raised"]), None, "support 1 < min 2");
    }

    #[test]
    fn repeated_ngram_in_one_sequence_counts_once() {
        let data = seqs(&["a b a b", "a b"]);
        let mined = frequent_ngrams(&data, 2, 2);
        let ab = mined.iter().find(|p| p.items == vec!["a".to_string(), "b".to_string()]).unwrap();
        assert_eq!(ab.support, 2);
    }

    #[test]
    fn ngrams_sorted_by_support_then_length() {
        let data = seqs(&["x y", "x y", "x"]);
        let mined = frequent_ngrams(&data, 2, 2);
        assert_eq!(mined[0].items, vec!["x".to_string()]);
        assert_eq!(mined[0].support, 3);
    }

    #[test]
    fn prefix_span_finds_gapped_patterns() {
        let data = seqs(&["was quickly born in", "was born in"]);
        let mined = prefix_span(&data, 2, 3);
        // "was born in" appears gapped in the first sequence.
        assert!(mined.iter().any(|p| {
            p.items == vec!["was".to_string(), "born".to_string(), "in".to_string()]
                && p.support == 2
        }));
    }

    #[test]
    fn prefix_span_respects_min_support_and_max_len() {
        let data = seqs(&["a b c d", "a b c d", "a x"]);
        let mined = prefix_span(&data, 2, 2);
        assert!(mined.iter().all(|p| p.items.len() <= 2));
        assert!(mined.iter().all(|p| p.support >= 2));
        assert!(mined.iter().any(|p| p.items == vec!["a".to_string(), "c".to_string()]));
    }

    #[test]
    fn prefix_span_counts_each_sequence_once() {
        let data = seqs(&["a a a", "a"]);
        let mined = prefix_span(&data, 1, 1);
        let a = mined.iter().find(|p| p.items == vec!["a".to_string()]).unwrap();
        assert_eq!(a.support, 2);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<Vec<u32>> = Vec::new();
        assert!(frequent_ngrams(&empty, 1, 3).is_empty());
        assert!(prefix_span(&empty, 1, 3).is_empty());
        let with_empty: Vec<Vec<u32>> = vec![vec![]];
        assert!(frequent_ngrams(&with_empty, 1, 3).is_empty());
        assert!(prefix_span(&with_empty, 1, 3).is_empty());
    }

    #[test]
    fn ngram_patterns_are_contiguous_subsequences() {
        let data = seqs(&["p q r", "p r"]);
        let mined = frequent_ngrams(&data, 2, 2);
        // "p r" is NOT contiguous in the first sequence -> support 1 -> excluded.
        assert!(!mined.iter().any(|p| p.items == vec!["p".to_string(), "r".to_string()]));
        // But prefix_span finds it.
        let gapped = prefix_span(&data, 2, 2);
        assert!(gapped.iter().any(|p| p.items == vec!["p".to_string(), "r".to_string()]));
    }
}
