//! NP/VP chunking.
//!
//! Open IE "aggressively taps into noun phrases as entity candidates and
//! verbal phrases as prototypic patterns for relations" (tutorial §3).
//! This module turns a POS-tagged token sequence into a flat sequence of
//! noun-phrase and verb-phrase chunks:
//!
//! * **NP** := `(Det)? (Adj|Noun|ProperNoun|Number)* (Noun|ProperNoun|Pronoun)`
//! * **VP** := `(Aux)* Verb (Adverb)*` — or a bare Aux run acting as
//!   copula ("is", "was").

use crate::pos::PosTag;
use crate::token::Token;

/// Kind of a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Noun phrase — an entity candidate.
    Np,
    /// Verb phrase — a relation candidate.
    Vp,
}

/// A contiguous token range forming a phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// NP or VP.
    pub kind: ChunkKind,
    /// Index of the first token (inclusive).
    pub start: usize,
    /// Index one past the last token.
    pub end: usize,
    /// Index of the head token (last nominal for NPs, main verb for VPs).
    pub head: usize,
}

impl Chunk {
    /// The chunk's surface text, reconstructed with single spaces.
    pub fn text(&self, tokens: &[Token]) -> String {
        tokens[self.start..self.end].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ")
    }

    /// The head token's text.
    pub fn head_text<'a>(&self, tokens: &'a [Token]) -> &'a str {
        &tokens[self.head].text
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk covers no tokens (never produced by [`chunk`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Chunks a tagged sentence into NPs and VPs. Tokens not fitting either
/// pattern (prepositions, conjunctions, punctuation) separate chunks.
pub fn chunk(tokens: &[Token], tags: &[PosTag]) -> Vec<Chunk> {
    assert_eq!(tokens.len(), tags.len(), "tokens and tags must align");
    let n = tokens.len();
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < n {
        match tags[i] {
            PosTag::Determiner
            | PosTag::Adjective
            | PosTag::Noun
            | PosTag::ProperNoun
            | PosTag::Number
            | PosTag::Pronoun => {
                if let Some(c) = scan_np(tags, i) {
                    i = c.end;
                    chunks.push(c);
                } else {
                    i += 1;
                }
            }
            PosTag::Aux | PosTag::Verb => {
                let c = scan_vp(tags, i);
                i = c.end;
                chunks.push(c);
            }
            _ => i += 1,
        }
    }
    chunks
}

/// Scans an NP starting at `i`; returns `None` if the candidate run
/// contains no nominal head (e.g. a bare determiner or dangling
/// adjective).
fn scan_np(tags: &[PosTag], start: usize) -> Option<Chunk> {
    let n = tags.len();
    let mut i = start;
    if tags[i] == PosTag::Determiner {
        i += 1;
    }
    let mut last_nominal: Option<usize> = None;
    while i < n {
        match tags[i] {
            PosTag::Noun | PosTag::ProperNoun => {
                last_nominal = Some(i);
                i += 1;
            }
            PosTag::Pronoun => {
                // Pronouns head single-token NPs; do not absorb more.
                if last_nominal.is_none() {
                    last_nominal = Some(i);
                    i += 1;
                }
                break;
            }
            PosTag::Adjective | PosTag::Number => {
                i += 1;
            }
            _ => break,
        }
    }
    let head = last_nominal?;
    Some(Chunk { kind: ChunkKind::Np, start, end: i.max(head + 1), head })
}

/// Scans a VP starting at `i`: aux run, optional main verb, trailing
/// adverbs. A bare aux run (copula) heads itself.
fn scan_vp(tags: &[PosTag], start: usize) -> Chunk {
    let n = tags.len();
    let mut i = start;
    let mut head = start;
    while i < n && tags[i] == PosTag::Aux {
        head = i;
        i += 1;
    }
    // Adverbs may intervene: "was originally founded".
    let mut j = i;
    while j < n && tags[j] == PosTag::Adverb {
        j += 1;
    }
    if j < n && tags[j] == PosTag::Verb {
        head = j;
        i = j + 1;
    }
    while i < n && tags[i] == PosTag::Adverb {
        i += 1;
    }
    Chunk { kind: ChunkKind::Vp, start, end: i, head }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::PosTagger;
    use crate::token::tokenize;

    fn chunks_of(s: &str) -> (Vec<Token>, Vec<Chunk>) {
        let toks = tokenize(s);
        let tags = PosTagger::new().tag(&toks);
        let cs = chunk(&toks, &tags);
        (toks, cs)
    }

    #[test]
    fn simple_svo_yields_np_vp_np() {
        let (toks, cs) = chunks_of("Jobs founded Apple");
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].kind, ChunkKind::Np);
        assert_eq!(cs[1].kind, ChunkKind::Vp);
        assert_eq!(cs[2].kind, ChunkKind::Np);
        assert_eq!(cs[0].text(&toks), "Jobs");
        assert_eq!(cs[1].text(&toks), "founded");
        assert_eq!(cs[2].text(&toks), "Apple");
    }

    #[test]
    fn np_absorbs_determiner_and_adjectives() {
        let (toks, cs) = chunks_of("He admired the famous young founder");
        let np = cs.iter().find(|c| c.text(&toks).contains("famous")).unwrap();
        assert_eq!(np.text(&toks), "the famous young founder");
        assert_eq!(np.head_text(&toks), "founder");
    }

    #[test]
    fn multiword_proper_noun_is_one_np() {
        let (toks, cs) = chunks_of("He met Steve Jobs there");
        let np = cs.iter().find(|c| c.text(&toks).contains("Steve")).unwrap();
        assert_eq!(np.text(&toks), "Steve Jobs");
        assert_eq!(np.head_text(&toks), "Jobs");
    }

    #[test]
    fn vp_with_aux_and_adverb() {
        let (toks, cs) = chunks_of("Apple was originally founded by Jobs");
        let vp = cs.iter().find(|c| c.kind == ChunkKind::Vp).unwrap();
        assert_eq!(vp.text(&toks), "was originally founded");
        assert_eq!(vp.head_text(&toks), "founded");
    }

    #[test]
    fn bare_copula_is_a_vp() {
        let (toks, cs) = chunks_of("Cupertino is a city");
        let vps: Vec<_> = cs.iter().filter(|c| c.kind == ChunkKind::Vp).collect();
        assert_eq!(vps.len(), 1);
        assert_eq!(vps[0].text(&toks), "is");
        assert_eq!(vps[0].head_text(&toks), "is");
    }

    #[test]
    fn prepositions_split_nps() {
        let (toks, cs) = chunks_of("the founder of Apple");
        let nps: Vec<String> =
            cs.iter().filter(|c| c.kind == ChunkKind::Np).map(|c| c.text(&toks)).collect();
        assert_eq!(nps, vec!["the founder", "Apple"]);
    }

    #[test]
    fn dangling_determiner_produces_no_np() {
        let (_, cs) = chunks_of("the of");
        assert!(cs.is_empty());
    }

    #[test]
    fn pronoun_is_single_token_np() {
        let (toks, cs) = chunks_of("She founded it");
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].text(&toks), "She");
        assert_eq!(cs[2].text(&toks), "it");
    }

    #[test]
    fn chunks_never_overlap_and_are_ordered() {
        let (_, cs) = chunks_of("The young Steve Jobs founded Apple Computer in Cupertino and later led the famous company");
        for w in cs.windows(2) {
            assert!(w[0].end <= w[1].start, "chunks overlap: {w:?}");
        }
        for c in &cs {
            assert!(!c.is_empty());
            assert!(c.head >= c.start && c.head < c.end);
        }
    }
}
