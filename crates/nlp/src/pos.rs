//! Part-of-speech tagging.
//!
//! A lexicon + suffix-rule tagger with two Brill-style contextual repair
//! rules. This is deliberately shallow: the harvesting methods need POS
//! only to drive NP/VP chunking (tutorial §3, Open IE "taps into noun
//! phrases as entity candidates and verbal phrases as prototypic
//! patterns"), not full syntax.

use std::collections::HashMap;

use crate::token::{Token, TokenKind};

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (capitalized, not sentence-initial-only).
    ProperNoun,
    /// Main verb (any inflection).
    Verb,
    /// Modal/auxiliary verb (can, was, has, ...).
    Aux,
    /// Adjective.
    Adjective,
    /// Adverb.
    Adverb,
    /// Determiner/article.
    Determiner,
    /// Preposition or subordinating conjunction.
    Preposition,
    /// Pronoun.
    Pronoun,
    /// Coordinating conjunction.
    Conjunction,
    /// Numeric literal.
    Number,
    /// Punctuation.
    Punct,
}

impl PosTag {
    /// Whether this tag can head a noun phrase.
    pub fn is_nominal(self) -> bool {
        matches!(self, PosTag::Noun | PosTag::ProperNoun | PosTag::Pronoun)
    }

    /// Whether this tag is verbal (main or auxiliary).
    pub fn is_verbal(self) -> bool {
        matches!(self, PosTag::Verb | PosTag::Aux)
    }
}

/// Lexicon-backed POS tagger. Construct once and reuse; tagging is
/// `&self` and thread-safe.
#[derive(Debug, Clone)]
pub struct PosTagger {
    lexicon: HashMap<&'static str, PosTag>,
}

impl Default for PosTagger {
    fn default() -> Self {
        Self::new()
    }
}

/// Closed-class words and common open-class words with fixed tags.
static LEXICON: &[(&str, PosTag)] = &[
    // determiners
    ("a", PosTag::Determiner),
    ("an", PosTag::Determiner),
    ("the", PosTag::Determiner),
    ("this", PosTag::Determiner),
    ("that", PosTag::Determiner),
    ("these", PosTag::Determiner),
    ("those", PosTag::Determiner),
    ("its", PosTag::Determiner),
    ("his", PosTag::Determiner),
    ("her", PosTag::Determiner),
    ("their", PosTag::Determiner),
    ("every", PosTag::Determiner),
    ("some", PosTag::Determiner),
    ("many", PosTag::Determiner),
    ("other", PosTag::Determiner),
    ("several", PosTag::Determiner),
    ("such", PosTag::Determiner),
    ("both", PosTag::Determiner),
    ("all", PosTag::Determiner),
    ("no", PosTag::Determiner),
    ("each", PosTag::Determiner),
    // pronouns
    ("he", PosTag::Pronoun),
    ("she", PosTag::Pronoun),
    ("it", PosTag::Pronoun),
    ("they", PosTag::Pronoun),
    ("we", PosTag::Pronoun),
    ("i", PosTag::Pronoun),
    ("you", PosTag::Pronoun),
    ("who", PosTag::Pronoun),
    ("him", PosTag::Pronoun),
    ("them", PosTag::Pronoun),
    ("which", PosTag::Pronoun),
    // prepositions
    ("in", PosTag::Preposition),
    ("on", PosTag::Preposition),
    ("at", PosTag::Preposition),
    ("of", PosTag::Preposition),
    ("by", PosTag::Preposition),
    ("for", PosTag::Preposition),
    ("with", PosTag::Preposition),
    ("from", PosTag::Preposition),
    ("to", PosTag::Preposition),
    ("into", PosTag::Preposition),
    ("as", PosTag::Preposition),
    ("near", PosTag::Preposition),
    ("after", PosTag::Preposition),
    ("before", PosTag::Preposition),
    ("until", PosTag::Preposition),
    ("since", PosTag::Preposition),
    ("during", PosTag::Preposition),
    ("between", PosTag::Preposition),
    ("through", PosTag::Preposition),
    ("under", PosTag::Preposition),
    ("over", PosTag::Preposition),
    // conjunctions
    ("and", PosTag::Conjunction),
    ("or", PosTag::Conjunction),
    ("but", PosTag::Conjunction),
    ("nor", PosTag::Conjunction),
    ("yet", PosTag::Conjunction),
    // auxiliaries / modals
    ("is", PosTag::Aux),
    ("are", PosTag::Aux),
    ("was", PosTag::Aux),
    ("were", PosTag::Aux),
    ("be", PosTag::Aux),
    ("been", PosTag::Aux),
    ("being", PosTag::Aux),
    ("has", PosTag::Aux),
    ("have", PosTag::Aux),
    ("had", PosTag::Aux),
    ("do", PosTag::Aux),
    ("does", PosTag::Aux),
    ("did", PosTag::Aux),
    ("can", PosTag::Aux),
    ("could", PosTag::Aux),
    ("will", PosTag::Aux),
    ("would", PosTag::Aux),
    ("may", PosTag::Aux),
    ("might", PosTag::Aux),
    ("shall", PosTag::Aux),
    ("should", PosTag::Aux),
    ("must", PosTag::Aux),
    // frequent verbs (base + inflections the corpus uses)
    ("founded", PosTag::Verb),
    ("found", PosTag::Verb),
    ("founds", PosTag::Verb),
    ("born", PosTag::Verb),
    ("married", PosTag::Verb),
    ("marries", PosTag::Verb),
    ("acquired", PosTag::Verb),
    ("acquires", PosTag::Verb),
    ("acquire", PosTag::Verb),
    ("located", PosTag::Verb),
    ("headquartered", PosTag::Verb),
    ("released", PosTag::Verb),
    ("releases", PosTag::Verb),
    ("release", PosTag::Verb),
    ("wrote", PosTag::Verb),
    ("written", PosTag::Verb),
    ("writes", PosTag::Verb),
    ("directed", PosTag::Verb),
    ("directs", PosTag::Verb),
    ("won", PosTag::Verb),
    ("wins", PosTag::Verb),
    ("win", PosTag::Verb),
    ("joined", PosTag::Verb),
    ("joins", PosTag::Verb),
    ("join", PosTag::Verb),
    ("studied", PosTag::Verb),
    ("studies", PosTag::Verb),
    ("works", PosTag::Verb),
    ("worked", PosTag::Verb),
    ("work", PosTag::Verb),
    ("led", PosTag::Verb),
    ("leads", PosTag::Verb),
    ("lead", PosTag::Verb),
    ("created", PosTag::Verb),
    ("creates", PosTag::Verb),
    ("create", PosTag::Verb),
    ("developed", PosTag::Verb),
    ("develops", PosTag::Verb),
    ("develop", PosTag::Verb),
    ("invented", PosTag::Verb),
    ("invents", PosTag::Verb),
    ("produced", PosTag::Verb),
    ("produces", PosTag::Verb),
    ("launched", PosTag::Verb),
    ("launches", PosTag::Verb),
    ("moved", PosTag::Verb),
    ("moves", PosTag::Verb),
    ("move", PosTag::Verb),
    ("became", PosTag::Verb),
    ("become", PosTag::Verb),
    ("becomes", PosTag::Verb),
    ("served", PosTag::Verb),
    ("serves", PosTag::Verb),
    ("serve", PosTag::Verb),
    ("died", PosTag::Verb),
    ("dies", PosTag::Verb),
    ("lives", PosTag::Verb),
    ("lived", PosTag::Verb),
    ("grew", PosTag::Verb),
    ("made", PosTag::Verb),
    ("makes", PosTag::Verb),
    ("make", PosTag::Verb),
    ("said", PosTag::Verb),
    ("says", PosTag::Verb),
    ("knew", PosTag::Verb),
    ("knows", PosTag::Verb),
    ("announced", PosTag::Verb),
    ("includes", PosTag::Verb),
    ("included", PosTag::Verb),
    ("plays", PosTag::Verb),
    ("played", PosTag::Verb),
    ("borders", PosTag::Verb),
    ("bordered", PosTag::Verb),
    ("designed", PosTag::Verb),
    ("designs", PosTag::Verb),
    ("employs", PosTag::Verb),
    ("employed", PosTag::Verb),
    ("sells", PosTag::Verb),
    ("sold", PosTag::Verb),
    // irregular pasts and other frequent verb forms
    ("met", PosTag::Verb),
    ("meets", PosTag::Verb),
    ("meet", PosTag::Verb),
    ("saw", PosTag::Verb),
    ("sees", PosTag::Verb),
    ("see", PosTag::Verb),
    ("took", PosTag::Verb),
    ("takes", PosTag::Verb),
    ("take", PosTag::Verb),
    ("gave", PosTag::Verb),
    ("gives", PosTag::Verb),
    ("give", PosTag::Verb),
    ("got", PosTag::Verb),
    ("gets", PosTag::Verb),
    ("get", PosTag::Verb),
    ("went", PosTag::Verb),
    ("goes", PosTag::Verb),
    ("go", PosTag::Verb),
    ("came", PosTag::Verb),
    ("comes", PosTag::Verb),
    ("come", PosTag::Verb),
    ("held", PosTag::Verb),
    ("holds", PosTag::Verb),
    ("hold", PosTag::Verb),
    ("kept", PosTag::Verb),
    ("keeps", PosTag::Verb),
    ("keep", PosTag::Verb),
    ("began", PosTag::Verb),
    ("begins", PosTag::Verb),
    ("begin", PosTag::Verb),
    ("bought", PosTag::Verb),
    ("buys", PosTag::Verb),
    ("buy", PosTag::Verb),
    ("built", PosTag::Verb),
    ("builds", PosTag::Verb),
    ("build", PosTag::Verb),
    ("spent", PosTag::Verb),
    ("spends", PosTag::Verb),
    ("brought", PosTag::Verb),
    ("brings", PosTag::Verb),
    ("taught", PosTag::Verb),
    ("teaches", PosTag::Verb),
    ("thought", PosTag::Verb),
    ("thinks", PosTag::Verb),
    ("ran", PosTag::Verb),
    ("runs", PosTag::Verb),
    ("run", PosTag::Verb),
    ("wore", PosTag::Verb),
    ("wears", PosTag::Verb),
    ("owns", PosTag::Verb),
    ("owned", PosTag::Verb),
    ("own", PosTag::Verb),
    // adverbs
    ("very", PosTag::Adverb),
    ("also", PosTag::Adverb),
    ("not", PosTag::Adverb),
    ("never", PosTag::Adverb),
    ("often", PosTag::Adverb),
    ("later", PosTag::Adverb),
    ("early", PosTag::Adverb),
    ("soon", PosTag::Adverb),
    ("again", PosTag::Adverb),
    ("now", PosTag::Adverb),
    ("then", PosTag::Adverb),
    ("there", PosTag::Adverb),
    ("here", PosTag::Adverb),
    ("still", PosTag::Adverb),
    ("already", PosTag::Adverb),
    // frequent adjectives
    ("new", PosTag::Adjective),
    ("first", PosTag::Adjective),
    ("last", PosTag::Adjective),
    ("great", PosTag::Adjective),
    ("small", PosTag::Adjective),
    ("large", PosTag::Adjective),
    ("famous", PosTag::Adjective),
    ("young", PosTag::Adjective),
    ("old", PosTag::Adjective),
    ("red", PosTag::Adjective),
    ("green", PosTag::Adjective),
    ("blue", PosTag::Adjective),
    ("sweet", PosTag::Adjective),
    ("sour", PosTag::Adjective),
    ("juicy", PosTag::Adjective),
    ("major", PosTag::Adjective),
    ("american", PosTag::Adjective),
    ("european", PosTag::Adjective),
];

impl PosTagger {
    /// Builds the tagger with its built-in lexicon.
    pub fn new() -> Self {
        Self { lexicon: LEXICON.iter().copied().collect() }
    }

    /// Tags a single token in isolation (no context rules).
    fn tag_lexical(&self, token: &Token, sentence_initial: bool) -> PosTag {
        match token.kind {
            TokenKind::Number => return PosTag::Number,
            TokenKind::Punct => return PosTag::Punct,
            TokenKind::Word => {}
        }
        let lower = token.lower();
        if let Some(&tag) = self.lexicon.get(lower.as_str()) {
            // Capitalized mid-sentence words beat lexicon entries that are
            // common nouns/adjectives ("Apple" vs "apple"), but closed-class
            // words keep their tag ("The", "In").
            if token.is_capitalized()
                && !sentence_initial
                && matches!(tag, PosTag::Noun | PosTag::Adjective | PosTag::Verb)
            {
                return PosTag::ProperNoun;
            }
            return tag;
        }
        if token.is_capitalized() && !sentence_initial {
            return PosTag::ProperNoun;
        }
        suffix_tag(&lower)
    }

    /// Tags a token sequence (one sentence) with lexicon, suffix rules
    /// and two contextual repairs.
    pub fn tag(&self, tokens: &[Token]) -> Vec<PosTag> {
        let mut tags: Vec<PosTag> =
            tokens.iter().enumerate().map(|(i, t)| self.tag_lexical(t, i == 0)).collect();
        // Contextual repair 1: Verb directly after a determiner is a noun
        // ("the founded company" never occurs; "the work" does).
        for i in 1..tags.len() {
            if tags[i] == PosTag::Verb && tags[i - 1] == PosTag::Determiner {
                tags[i] = PosTag::Noun;
            }
        }
        // Contextual repair 2: sentence-initial capitalized unknown word
        // followed by a verbal tag is a proper noun ("Jobs founded ...").
        if tags.len() >= 2
            && tokens[0].is_capitalized()
            && tags[0] == PosTag::Noun
            && tags[1].is_verbal()
        {
            tags[0] = PosTag::ProperNoun;
        }
        tags
    }
}

/// Suffix heuristics for unknown words.
fn suffix_tag(lower: &str) -> PosTag {
    if lower.ends_with("ly") {
        return PosTag::Adverb;
    }
    if lower.ends_with("ing") || lower.ends_with("ed") {
        return PosTag::Verb;
    }
    for suf in ["ous", "ful", "ive", "ical", "ish", "able", "ible"] {
        if lower.ends_with(suf) {
            return PosTag::Adjective;
        }
    }
    PosTag::Noun
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tag_sentence(s: &str) -> Vec<(String, PosTag)> {
        let toks = tokenize(s);
        let tagger = PosTagger::new();
        let tags = tagger.tag(&toks);
        toks.into_iter().zip(tags).map(|(t, tag)| (t.text, tag)).collect()
    }

    #[test]
    fn tags_a_simple_sentence() {
        let tagged = tag_sentence("Jobs founded Apple in 1976 .");
        assert_eq!(tagged[0].1, PosTag::ProperNoun, "sentence-initial subject repair");
        assert_eq!(tagged[1].1, PosTag::Verb);
        assert_eq!(tagged[2].1, PosTag::ProperNoun);
        assert_eq!(tagged[3].1, PosTag::Preposition);
        assert_eq!(tagged[4].1, PosTag::Number);
        assert_eq!(tagged[5].1, PosTag::Punct);
    }

    #[test]
    fn determiner_repair_turns_verb_into_noun() {
        let tagged = tag_sentence("She admired the work");
        let work = tagged.last().unwrap();
        assert_eq!(work.1, PosTag::Noun);
    }

    #[test]
    fn capitalized_mid_sentence_is_proper_noun() {
        let tagged = tag_sentence("He visited Apple yesterday");
        assert_eq!(tagged[2].1, PosTag::ProperNoun);
        // "He" is a pronoun even though capitalized sentence-initially.
        assert_eq!(tagged[0].1, PosTag::Pronoun);
    }

    #[test]
    fn closed_class_capitalized_words_keep_their_tag() {
        let tagged = tag_sentence("The city changed . In 1976 it grew");
        assert_eq!(tagged[0].1, PosTag::Determiner);
        let in_tok = tagged.iter().find(|(w, _)| w == "In").unwrap();
        assert_eq!(in_tok.1, PosTag::Preposition);
    }

    #[test]
    fn suffix_rules_cover_unknowns() {
        let tagged = tag_sentence("the flurbing glorped vexously with marvelous zorkness");
        let get = |w: &str| tagged.iter().find(|(t, _)| t == w).unwrap().1;
        assert_eq!(get("glorped"), PosTag::Verb);
        assert_eq!(get("vexously"), PosTag::Adverb);
        assert_eq!(get("marvelous"), PosTag::Adjective);
        assert_eq!(get("zorkness"), PosTag::Noun);
        // After a determiner, -ing word stays... actually repair only
        // applies to Verb; "flurbing" after "the" becomes Noun.
        assert_eq!(get("flurbing"), PosTag::Noun);
    }

    #[test]
    fn aux_verbs_are_distinguished() {
        let tagged = tag_sentence("Apple was founded by Jobs");
        assert_eq!(tagged[1].1, PosTag::Aux);
        assert_eq!(tagged[2].1, PosTag::Verb);
        assert!(tagged[1].1.is_verbal());
    }

    #[test]
    fn nominal_and_verbal_predicates() {
        assert!(PosTag::ProperNoun.is_nominal());
        assert!(PosTag::Pronoun.is_nominal());
        assert!(!PosTag::Verb.is_nominal());
        assert!(PosTag::Verb.is_verbal());
        assert!(!PosTag::Noun.is_verbal());
    }

    #[test]
    fn empty_input() {
        let tagger = PosTagger::new();
        assert!(tagger.tag(&[]).is_empty());
    }
}
