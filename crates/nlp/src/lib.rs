//! # kb-nlp
//!
//! The shallow natural-language-processing substrate the harvesting
//! methods of Suchanek & Weikum's VLDB 2014 tutorial rely on. Knowledge
//! harvesting at web scale deliberately avoids deep parsing; what it
//! needs — and what this crate provides — is:
//!
//! * [`tokenize`] — offset-preserving tokenization;
//! * [`split_sentences`] — sentence splitting;
//! * [`PosTagger`] — lexicon + suffix-rule part-of-speech
//!   tagging (noun/verb/adjective/preposition/...);
//! * [`chunk()`](chunk::chunk) — noun-phrase and verb-phrase chunking, the
//!   entity/relation candidates of Open IE;
//! * [`stem()`](stem::stem) — a full Porter stemmer;
//! * [`similarity`] — Levenshtein, Jaro, Jaro-Winkler, Jaccard, Dice and
//!   friends, for entity linkage features;
//! * [`tfidf`] — sparse TF-IDF vectors and cosine similarity, for NED
//!   context scoring;
//! * [`seqmine`] — PrefixSpan-style frequent sequence mining, used to
//!   find prototypic relation phrases in Open IE.
//!
//! Everything is pure, deterministic and allocation-conscious.

pub mod chunk;
pub mod pos;
pub mod sentence;
pub mod seqmine;
pub mod similarity;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod token;

pub use chunk::{chunk, Chunk, ChunkKind};
pub use pos::{PosTag, PosTagger};
pub use sentence::split_sentences;
pub use stem::stem;
pub use stopwords::is_stopword;
pub use token::{tokenize, Token, TokenKind};
