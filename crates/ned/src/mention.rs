//! Dictionary-based mention detection: longest-match lookup of KB
//! surface forms over capitalized token spans.

use kb_nlp::token::{tokenize, Token, TokenKind};
use kb_store::KbRead;

/// A detected mention span (byte offsets into the input text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedMention {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// The surface form as written.
    pub surface: String,
}

/// Maximum mention length in tokens.
const MAX_MENTION_TOKENS: usize = 5;

/// Detects entity mentions: the longest token spans (up to 5 tokens)
/// starting at a capitalized word or number whose surface form is a
/// known KB label. Greedy left-to-right, non-overlapping.
pub fn detect_mentions<K: KbRead + ?Sized>(kb: &K, text: &str) -> Vec<DetectedMention> {
    let tokens: Vec<Token> = tokenize(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let starts_candidate = t.kind == TokenKind::Word && t.is_capitalized();
        if !starts_candidate {
            i += 1;
            continue;
        }
        let mut matched: Option<usize> = None; // index of last token in match
        let max_j = (i + MAX_MENTION_TOKENS).min(tokens.len());
        for j in (i..max_j).rev() {
            // Span tokens i..=j must be words/numbers (no punctuation).
            if tokens[i..=j].iter().any(|t| t.kind == TokenKind::Punct) {
                continue;
            }
            let surface = &text[tokens[i].start..tokens[j].end];
            if !kb.labels().candidate_entities(surface).is_empty() {
                matched = Some(j);
                break;
            }
        }
        match matched {
            Some(j) => {
                out.push(DetectedMention {
                    start: tokens[i].start,
                    end: tokens[j].end,
                    surface: text[tokens[i].start..tokens[j].end].to_string(),
                });
                i = j + 1;
            }
            None => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KnowledgeBase;

    fn kb_with_labels(labels: &[(&str, &str)]) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let en = kb.labels.lang("en");
        for (entity, label) in labels {
            let t = kb.intern(entity);
            kb.labels.add(t, en, label);
        }
        kb
    }

    #[test]
    fn longest_match_wins() {
        let kb = kb_with_labels(&[
            ("Steve_Jobs", "Steve Jobs"),
            ("Steve_Jobs", "Jobs"),
            ("Steve_W", "Steve"),
        ]);
        let m = detect_mentions(&kb, "I met Steve Jobs yesterday.");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "Steve Jobs");
    }

    #[test]
    fn non_overlapping_greedy() {
        let kb = kb_with_labels(&[("A_B", "Alpha Beta"), ("B_C", "Beta Gamma")]);
        let m = detect_mentions(&kb, "Alpha Beta Gamma");
        // Greedy takes "Alpha Beta"; "Gamma" alone is unknown.
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "Alpha Beta");
    }

    #[test]
    fn lowercase_words_do_not_start_mentions() {
        let kb = kb_with_labels(&[("Jobs_", "jobs")]);
        let m = detect_mentions(&kb, "many jobs were created");
        assert!(m.is_empty(), "lowercase token must not trigger");
    }

    #[test]
    fn unknown_names_are_skipped() {
        let kb = kb_with_labels(&[("Known", "Known")]);
        let m = detect_mentions(&kb, "Unknown person met Known there.");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "Known");
    }

    #[test]
    fn offsets_slice_correctly() {
        let kb = kb_with_labels(&[("Lundholm", "Lundholm")]);
        let text = "He lives in Lundholm now.";
        let m = detect_mentions(&kb, text);
        assert_eq!(&text[m[0].start..m[0].end], "Lundholm");
    }

    #[test]
    fn punctuation_breaks_spans() {
        let kb = kb_with_labels(&[("X", "Alpha . Beta")]);
        let m = detect_mentions(&kb, "Alpha . Beta");
        assert!(m.is_empty(), "spans across punctuation are not mentions");
    }

    #[test]
    fn versioned_product_names_match() {
        let kb = kb_with_labels(&[("Strato_3", "Strato 3")]);
        let m = detect_mentions(&kb, "I bought the Strato 3 today.");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "Strato 3");
    }
}
