//! Entity-entity semantic relatedness over the KB graph: the
//! Milne-Witten (Wikipedia-link-based) measure, computed from shared
//! neighbors.

use std::collections::{HashMap, HashSet};

use kb_store::{KbRead, TermId};

/// Precomputed neighbor sets for fast pairwise relatedness.
#[derive(Debug, Default, Clone)]
pub struct CoherenceIndex {
    neighbors: HashMap<TermId, HashSet<TermId>>,
    /// Total entities with any neighbors (the "N" of Milne-Witten).
    universe: usize,
}

impl CoherenceIndex {
    /// Builds the index for the given entities from the KB graph (any
    /// [`KbRead`] view).
    pub fn build<K: KbRead + ?Sized>(kb: &K, entities: impl IntoIterator<Item = TermId>) -> Self {
        let mut neighbors = HashMap::new();
        let mut nodes: HashSet<TermId> = HashSet::new();
        for e in entities {
            let n: HashSet<TermId> = kb.neighbors(e).into_iter().collect();
            nodes.insert(e);
            nodes.extend(n.iter().copied());
            neighbors.insert(e, n);
        }
        // The "N" of Milne-Witten: all distinct graph nodes seen, so the
        // measure does not degenerate on small indexes.
        let universe = nodes.len().max(2);
        Self { neighbors, universe }
    }

    /// Milne-Witten relatedness in `[0, 1]`:
    /// `1 − (log max(|A|,|B|) − log |A∩B|) / (log N − log min(|A|,|B|))`,
    /// clamped. Zero when either entity is unknown or they share no
    /// neighbors; 1 for identical entities.
    pub fn relatedness(&self, a: TermId, b: TermId) -> f64 {
        if a == b {
            return 1.0;
        }
        let (Some(na), Some(nb)) = (self.neighbors.get(&a), self.neighbors.get(&b)) else {
            return 0.0;
        };
        if na.is_empty() || nb.is_empty() {
            return 0.0;
        }
        let inter = na.intersection(nb).count();
        if inter == 0 {
            return 0.0;
        }
        let big = na.len().max(nb.len()) as f64;
        let small = na.len().min(nb.len()) as f64;
        let n = self.universe as f64;
        let denom = n.ln() - small.ln();
        if denom <= 0.0 {
            return 1.0;
        }
        let mw = 1.0 - (big.ln() - (inter as f64).ln()) / denom;
        mw.clamp(0.0, 1.0)
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KnowledgeBase;

    /// Builds a KB where e1 and e2 share two neighbors, e3 is isolated.
    fn setup() -> (KnowledgeBase, TermId, TermId, TermId) {
        let mut kb = KnowledgeBase::new();
        let e1 = kb.intern("E1");
        let e2 = kb.intern("E2");
        let e3 = kb.intern("E3");
        let x = kb.intern("X");
        let y = kb.intern("Y");
        let z = kb.intern("Z");
        let r = kb.intern("rel");
        kb.add_triple(e1, r, x);
        kb.add_triple(e1, r, y);
        kb.add_triple(e2, r, x);
        kb.add_triple(e2, r, y);
        kb.add_triple(e2, r, z);
        kb.add_triple(e3, r, z);
        (kb, e1, e2, e3)
    }

    #[test]
    fn shared_neighbors_mean_relatedness() {
        let (kb, e1, e2, e3) = setup();
        let idx = CoherenceIndex::build(&kb, [e1, e2, e3]);
        let r12 = idx.relatedness(e1, e2);
        let r13 = idx.relatedness(e1, e3);
        assert!(r12 > 0.0);
        assert_eq!(r13, 0.0, "no shared neighbors");
        assert!(r12 > r13);
    }

    #[test]
    fn relatedness_is_symmetric_and_reflexive() {
        let (kb, e1, e2, _) = setup();
        let idx = CoherenceIndex::build(&kb, [e1, e2]);
        assert!((idx.relatedness(e1, e2) - idx.relatedness(e2, e1)).abs() < 1e-12);
        assert_eq!(idx.relatedness(e1, e1), 1.0);
    }

    #[test]
    fn unknown_entities_score_zero() {
        let (kb, e1, _, _) = setup();
        let idx = CoherenceIndex::build(&kb, [e1]);
        assert_eq!(idx.relatedness(e1, TermId(999)), 0.0);
    }

    #[test]
    fn bounds_hold() {
        let (kb, e1, e2, e3) = setup();
        let idx = CoherenceIndex::build(&kb, [e1, e2, e3]);
        for a in [e1, e2, e3] {
            for b in [e1, e2, e3] {
                let r = idx.relatedness(a, b);
                assert!((0.0..=1.0).contains(&r), "r({a},{b}) = {r}");
            }
        }
    }
}
