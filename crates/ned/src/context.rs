//! Context similarity: TF-IDF profiles of candidate entities vs the
//! words surrounding a mention.
//!
//! An entity's profile gathers the salient words the KB associates with
//! it: its own labels, the labels of its graph neighbors, its classes
//! and the names of its relations — the "salient phrases associated
//! with an entity" of the tutorial.

use std::collections::HashMap;

use kb_nlp::tfidf::{SparseVector, Vocabulary};
use kb_nlp::token::{tokenize, word_texts, TokenKind};
use kb_store::{KbRead, TermId, TriplePattern};

/// Profile words for one entity, drawn from any [`KbRead`] view.
pub fn profile_words<K: KbRead + ?Sized>(kb: &K, entity: TermId) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    let add_term_words = |t: TermId, words: &mut Vec<String>| {
        if let Some(name) = kb.resolve(t) {
            for w in name.replace('_', " ").split_whitespace() {
                words.push(w.to_lowercase());
            }
        }
    };
    add_term_words(entity, &mut words);
    for f in kb.matching_iter(&TriplePattern::with_s(entity)) {
        add_term_words(f.triple.p, &mut words);
        add_term_words(f.triple.o, &mut words);
    }
    for f in kb.matching_iter(&TriplePattern::with_o(entity)) {
        add_term_words(f.triple.p, &mut words);
        add_term_words(f.triple.s, &mut words);
    }
    words
}

/// Precomputed entity profiles over a shared vocabulary.
#[derive(Debug, Default)]
pub struct ContextIndex {
    vocab: Vocabulary,
    profiles: HashMap<TermId, SparseVector>,
}

impl ContextIndex {
    /// Builds profiles for the given entities.
    pub fn build<K: KbRead + ?Sized>(
        kb: &K,
        entities: impl IntoIterator<Item = TermId> + Clone,
    ) -> Self {
        let mut vocab = Vocabulary::new();
        let mut raw: HashMap<TermId, Vec<String>> = HashMap::new();
        for e in entities {
            let words = profile_words(kb, e);
            vocab.add_document(words.iter().map(String::as_str));
            raw.insert(e, words);
        }
        let profiles = raw
            .into_iter()
            .map(|(e, words)| (e, vocab.vectorize(words.iter().map(String::as_str))))
            .collect();
        Self { vocab, profiles }
    }

    /// Vectorizes a mention context (word window around the mention).
    pub fn context_vector(
        &self,
        text: &str,
        mention_start: usize,
        mention_end: usize,
        window: usize,
    ) -> SparseVector {
        let tokens = tokenize(text);
        // Index of the first token at/after the mention.
        let mention_first = tokens.iter().position(|t| t.end > mention_start).unwrap_or(0);
        let mention_last =
            tokens.iter().rposition(|t| t.start < mention_end).unwrap_or(mention_first);
        let lo = mention_first.saturating_sub(window);
        let hi = (mention_last + 1 + window).min(tokens.len());
        let words: Vec<String> = tokens[lo..hi]
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                let abs = lo + i;
                t.kind == TokenKind::Word && (abs < mention_first || abs > mention_last)
            })
            .map(|(_, t)| t.lower())
            .collect();
        self.vocab.vectorize(words.iter().map(String::as_str))
    }

    /// Cosine similarity between a context vector and an entity profile
    /// (0 when the entity has no profile).
    pub fn similarity(&self, context: &SparseVector, entity: TermId) -> f64 {
        self.profiles.get(&entity).map_or(0.0, |p| context.cosine(p))
    }

    /// Vectorizes arbitrary text against the profile vocabulary.
    pub fn vectorize_text(&self, text: &str) -> SparseVector {
        let words = word_texts(text);
        self.vocab.vectorize(words.iter().map(String::as_str))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KnowledgeBase;

    /// Two "Jobs" candidates: the founder (linked to Apple/Cupertino)
    /// and a musician (linked to guitars).
    fn setup() -> (KnowledgeBase, TermId, TermId) {
        let mut kb = KnowledgeBase::new();
        let founder = kb.intern("Steve_Jobs");
        let musician = kb.intern("Jobs_Miller");
        let apple = kb.intern("Apple_Inc");
        let cupertino = kb.intern("Cupertino");
        let guitar = kb.intern("Guitar_Prize");
        let founded = kb.intern("founded");
        let lived = kb.intern("livedIn");
        kb.add_triple(founder, founded, apple);
        kb.add_triple(founder, lived, cupertino);
        let won = kb.intern("won");
        kb.add_triple(musician, won, guitar);
        (kb, founder, musician)
    }

    #[test]
    fn profiles_contain_neighborhood_words() {
        let (kb, founder, _) = setup();
        let words = profile_words(&kb, founder);
        assert!(words.contains(&"apple".to_string()));
        assert!(words.contains(&"founded".to_string()));
        assert!(words.contains(&"cupertino".to_string()));
    }

    #[test]
    fn context_prefers_the_matching_candidate() {
        let (kb, founder, musician) = setup();
        let idx = ContextIndex::build(&kb, [founder, musician]);
        let text = "Jobs started the company Apple in Cupertino garage.";
        let ctx = idx.context_vector(text, 0, 4, 12);
        let s_founder = idx.similarity(&ctx, founder);
        let s_musician = idx.similarity(&ctx, musician);
        assert!(s_founder > s_musician, "founder {s_founder} vs musician {s_musician}");
    }

    #[test]
    fn mention_tokens_are_excluded_from_context() {
        let (kb, founder, musician) = setup();
        let idx = ContextIndex::build(&kb, [founder, musician]);
        // Context consists ONLY of the mention itself -> empty vector.
        let ctx = idx.context_vector("Jobs", 0, 4, 10);
        assert!(idx.similarity(&ctx, founder).abs() < 1e-12);
        assert!(ctx.is_empty());
    }

    #[test]
    fn unknown_entity_similarity_is_zero() {
        let (kb, founder, _) = setup();
        let idx = ContextIndex::build(&kb, [founder]);
        let ctx = idx.vectorize_text("apple cupertino");
        assert_eq!(idx.similarity(&ctx, TermId(999)), 0.0);
    }

    #[test]
    fn window_limits_the_context() {
        let (kb, founder, musician) = setup();
        let idx = ContextIndex::build(&kb, [founder, musician]);
        let text = "Jobs spoke. Far far away away away away away away away Apple Cupertino.";
        let narrow = idx.context_vector(text, 0, 4, 2);
        let wide = idx.context_vector(text, 0, 4, 50);
        assert!(idx.similarity(&wide, founder) > idx.similarity(&narrow, founder));
    }
}
