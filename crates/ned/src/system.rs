//! The NED system: candidate generation with anchor priors, plus the
//! three disambiguation strategies of experiment T5.

use std::collections::HashMap;

use kb_store::{KbRead, KnowledgeBase, TermId};

use crate::coherence::CoherenceIndex;
use crate::context::ContextIndex;

/// Disambiguation strategy (ablation levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Most popular candidate per surface form (anchor prior, falling
    /// back to KB degree).
    Prior,
    /// Prior + context similarity.
    Context,
    /// Prior + context + joint coherence (greedy iterative).
    Coherence,
}

/// Scoring weights.
#[derive(Debug, Clone, Copy)]
pub struct NedWeights {
    /// Weight of the normalized prior.
    pub prior: f64,
    /// Weight of context cosine similarity.
    pub context: f64,
    /// Weight of mean pairwise coherence.
    pub coherence: f64,
    /// Context window (tokens either side of the mention).
    pub window: usize,
    /// Maximum candidates considered per mention.
    pub max_candidates: usize,
    /// Iterations of greedy joint refinement.
    pub iterations: usize,
    /// NIL threshold: a mention whose best combined score falls below
    /// this maps to `None` ("the entity is not in the KB"). 0 disables
    /// NIL detection (every candidate list yields its argmax).
    pub nil_threshold: f64,
}

impl Default for NedWeights {
    fn default() -> Self {
        Self {
            prior: 0.3,
            context: 0.4,
            coherence: 0.6,
            window: 20,
            max_candidates: 16,
            iterations: 3,
            nil_threshold: 0.0,
        }
    }
}

/// The NED engine. Build with [`Ned::new`], feed anchor statistics with
/// [`Ned::add_anchor`], then [`Ned::finalize`] before disambiguating.
///
/// Generic over the KB view: works against the live [`KnowledgeBase`]
/// façade or a frozen snapshot — anything implementing [`KbRead`].
pub struct Ned<'kb, K: ?Sized = KnowledgeBase> {
    kb: &'kb K,
    /// (lowercased surface, entity) → anchor count.
    anchor_counts: HashMap<(String, TermId), usize>,
    /// lowercased surface → total anchor count.
    surface_totals: HashMap<String, usize>,
    context: Option<ContextIndex>,
    coherence: Option<CoherenceIndex>,
    /// Weights used by scoring.
    pub weights: NedWeights,
}

impl<'kb, K: KbRead + ?Sized> Ned<'kb, K> {
    /// Creates an engine over a KB view (call
    /// [`finalize`](Self::finalize) before use).
    pub fn new(kb: &'kb K) -> Self {
        Self {
            kb,
            anchor_counts: HashMap::new(),
            surface_totals: HashMap::new(),
            context: None,
            coherence: None,
            weights: NedWeights::default(),
        }
    }

    /// Records one anchor-text observation: `surface` was used to refer
    /// to `entity`. These counts become the popularity prior.
    pub fn add_anchor(&mut self, surface: &str, entity: TermId) {
        let key = surface.to_lowercase();
        *self.anchor_counts.entry((key.clone(), entity)).or_insert(0) += 1;
        *self.surface_totals.entry(key).or_insert(0) += 1;
    }

    /// Builds the context and coherence indexes over every entity that
    /// has a label or anchor.
    pub fn finalize(&mut self) {
        let mut entities: Vec<TermId> = self
            .kb
            .labels()
            .iter()
            .map(|(t, _, _)| t)
            .chain(self.anchor_counts.keys().map(|&(_, e)| e))
            .collect();
        entities.sort_unstable();
        entities.dedup();
        self.context = Some(ContextIndex::build(self.kb, entities.iter().copied()));
        self.coherence = Some(CoherenceIndex::build(self.kb, entities));
    }

    /// Candidate entities for a surface form with normalized priors,
    /// sorted by descending prior. Combines anchor statistics with the
    /// KB label store; entities never anchored get a degree-based prior.
    pub fn candidates(&self, surface: &str) -> Vec<(TermId, f64)> {
        let key = surface.to_lowercase();
        let mut cands: Vec<TermId> = self.kb.labels().candidate_entities(surface);
        // Anchored entities not in the label store still qualify.
        for (s, e) in self.anchor_counts.keys() {
            if *s == key && !cands.contains(e) {
                cands.push(*e);
            }
        }
        if cands.is_empty() {
            return vec![];
        }
        let total = self.surface_totals.get(&key).copied().unwrap_or(0);
        let mut scored: Vec<(TermId, f64)> = cands
            .into_iter()
            .map(|e| {
                let anchors = self.anchor_counts.get(&(key.clone(), e)).copied().unwrap_or(0);
                let prior = if total > 0 { anchors as f64 / total as f64 } else { 0.0 };
                // Degree smoothing keeps unanchored entities viable.
                let degree_prior = (self.kb.degree(e) as f64 + 1.0).ln();
                (e, prior + 0.01 * degree_prior)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(self.weights.max_candidates);
        // Normalize.
        let sum: f64 = scored.iter().map(|(_, p)| p).sum();
        if sum > 0.0 {
            for (_, p) in &mut scored {
                *p /= sum;
            }
        }
        scored
    }

    /// Disambiguates the given mention spans in `text`. Returns one
    /// `Option<TermId>` per mention (None when no candidates exist).
    pub fn disambiguate(
        &self,
        text: &str,
        mentions: &[(usize, usize)],
        strategy: Strategy,
    ) -> Vec<Option<TermId>> {
        let ctx_index = self.context.as_ref().expect("call finalize() first");
        let coh_index = self.coherence.as_ref().expect("call finalize() first");
        // Per-mention candidate lists with local scores.
        let mut local: Vec<Vec<(TermId, f64)>> = Vec::with_capacity(mentions.len());
        for &(start, end) in mentions {
            let surface = &text[start..end];
            let cands = self.candidates(surface);
            let scored = match strategy {
                Strategy::Prior => {
                    cands.into_iter().map(|(e, p)| (e, self.weights.prior * p)).collect()
                }
                Strategy::Context | Strategy::Coherence => {
                    let ctx = ctx_index.context_vector(text, start, end, self.weights.window);
                    cands
                        .into_iter()
                        .map(|(e, p)| {
                            let sim = ctx_index.similarity(&ctx, e);
                            (e, self.weights.prior * p + self.weights.context * sim)
                        })
                        .collect()
                }
            };
            local.push(scored);
        }
        // Initial assignment: local argmax, NIL when below threshold.
        let mut assignment: Vec<Option<TermId>> = local
            .iter()
            .map(|c| {
                best_of(c).filter(|&(_, score)| score >= self.weights.nil_threshold).map(|(e, _)| e)
            })
            .collect();
        if strategy != Strategy::Coherence || mentions.len() < 2 {
            return assignment;
        }
        // Greedy joint refinement: re-pick each mention's entity to
        // maximize local score + coherence with the other assignments.
        for _ in 0..self.weights.iterations {
            let mut changed = false;
            for i in 0..local.len() {
                let others: Vec<TermId> = assignment
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .filter_map(|(_, a)| *a)
                    .collect();
                let best = local[i]
                    .iter()
                    .map(|&(e, s)| {
                        let coh = if others.is_empty() {
                            0.0
                        } else {
                            others.iter().map(|&o| coh_index.relatedness(e, o)).sum::<f64>()
                                / others.len() as f64
                        };
                        (e, s + self.weights.coherence * coh)
                    })
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                let new =
                    best.filter(|&(_, score)| score >= self.weights.nil_threshold).map(|(e, _)| e);
                if new != assignment[i] {
                    assignment[i] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        assignment
    }

    /// Ambiguity of a surface form (candidate count).
    pub fn ambiguity(&self, surface: &str) -> usize {
        self.candidates(surface).len()
    }
}

fn best_of(cands: &[(TermId, f64)]) -> Option<(TermId, f64)> {
    cands.iter().copied().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// KB with two people named "Varen": Alan (tied to AcmeCo, Lundholm)
    /// and Bea (tied to ZetaCo, Torberg).
    fn setup() -> (KnowledgeBase, TermId, TermId) {
        let mut kb = KnowledgeBase::new();
        let alan = kb.intern("Alan_Varen");
        let bea = kb.intern("Bea_Varen");
        let acme = kb.intern("AcmeCo");
        let zeta = kb.intern("ZetaCo");
        let lund = kb.intern("Lundholm");
        let tor = kb.intern("Torberg");
        let works = kb.intern("worksAt");
        let born = kb.intern("bornIn");
        kb.add_triple(alan, works, acme);
        kb.add_triple(alan, born, lund);
        kb.add_triple(bea, works, zeta);
        kb.add_triple(bea, born, tor);
        let en = kb.labels.lang("en");
        kb.labels.add(alan, en, "Varen");
        kb.labels.add(alan, en, "Alan Varen");
        kb.labels.add(bea, en, "Varen");
        kb.labels.add(bea, en, "Bea Varen");
        kb.labels.add(acme, en, "AcmeCo");
        kb.labels.add(lund, en, "Lundholm");
        (kb, alan, bea)
    }

    #[test]
    fn prior_follows_anchor_counts() {
        let (kb, alan, bea) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Varen", alan);
        ned.add_anchor("Varen", alan);
        ned.add_anchor("Varen", bea);
        ned.finalize();
        let cands = ned.candidates("Varen");
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].0, alan, "Alan has 2/3 of anchors");
        assert!(cands[0].1 > cands[1].1);
        let text = "Varen gave a speech.";
        let out = ned.disambiguate(text, &[(0, 5)], Strategy::Prior);
        assert_eq!(out[0], Some(alan));
    }

    #[test]
    fn context_overrides_prior_when_evidence_is_strong() {
        let (kb, alan, bea) = setup();
        let mut ned = Ned::new(&kb);
        // Prior favors Bea...
        ned.add_anchor("Varen", bea);
        ned.add_anchor("Varen", bea);
        ned.add_anchor("Varen", alan);
        ned.finalize();
        // ...but the context screams Alan (AcmeCo, Lundholm).
        let text = "Varen works at AcmeCo in Lundholm.";
        let prior_out = ned.disambiguate(text, &[(0, 5)], Strategy::Prior);
        let ctx_out = ned.disambiguate(text, &[(0, 5)], Strategy::Context);
        assert_eq!(prior_out[0], Some(bea));
        assert_eq!(ctx_out[0], Some(alan));
    }

    #[test]
    fn coherence_uses_co_occurring_mentions() {
        let (kb, alan, bea) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Varen", bea); // prior favors Bea
        ned.add_anchor("Varen", bea);
        ned.add_anchor("Varen", alan);
        ned.add_anchor("AcmeCo", kb.term("AcmeCo").unwrap());
        ned.add_anchor("Lundholm", kb.term("Lundholm").unwrap());
        ned.finalize();
        // Mention text gives no useful context words, but the other
        // mentions (AcmeCo, Lundholm) cohere with Alan.
        let text = "Varen, AcmeCo, Lundholm.";
        let mentions = [(0usize, 5usize), (7, 13), (15, 23)];
        let coh_out = ned.disambiguate(text, &mentions, Strategy::Coherence);
        assert_eq!(coh_out[0], Some(alan));
    }

    #[test]
    fn unknown_surfaces_yield_none() {
        let (kb, _, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.finalize();
        let out = ned.disambiguate("Zorblax spoke.", &[(0, 7)], Strategy::Prior);
        assert_eq!(out[0], None);
    }

    #[test]
    fn ambiguity_counts_candidates() {
        let (kb, _, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.finalize();
        assert_eq!(ned.ambiguity("Varen"), 2);
        assert_eq!(ned.ambiguity("Alan Varen"), 1);
        assert_eq!(ned.ambiguity("Nobody"), 0);
    }

    #[test]
    fn nil_threshold_rejects_weak_matches() {
        let (kb, alan, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Varen", alan);
        ned.finalize();
        // With NIL detection off, even a context-free mention resolves.
        let text = "Varen.";
        let resolved = ned.disambiguate(text, &[(0, 5)], Strategy::Context);
        assert!(resolved[0].is_some());
        // A harsh threshold turns low-evidence mentions into NIL...
        ned.weights.nil_threshold = 0.9;
        let nil = ned.disambiguate(text, &[(0, 5)], Strategy::Context);
        assert_eq!(nil[0], None);
        // ...while strong contextual matches still resolve.
        ned.weights.nil_threshold = 0.2;
        let strong = "Varen works at AcmeCo in Lundholm.";
        let ok = ned.disambiguate(strong, &[(0, 5)], Strategy::Context);
        assert_eq!(ok[0], Some(alan));
    }

    #[test]
    fn nil_threshold_applies_to_coherence_too() {
        let (kb, alan, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Varen", alan);
        ned.weights.nil_threshold = 10.0; // impossible bar
        ned.finalize();
        let out = ned.disambiguate(
            "Varen, AcmeCo, Lundholm.",
            &[(0, 5), (7, 13), (15, 23)],
            Strategy::Coherence,
        );
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn max_candidates_truncates() {
        let mut kb = KnowledgeBase::new();
        let en = kb.labels.lang("en");
        for i in 0..30 {
            let t = kb.intern(&format!("Smith_{i}"));
            kb.labels.add(t, en, "Smith");
        }
        let mut ned = Ned::new(&kb);
        ned.weights.max_candidates = 5;
        ned.finalize();
        assert_eq!(ned.candidates("Smith").len(), 5);
    }
}
