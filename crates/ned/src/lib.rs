//! # kb-ned
//!
//! Named entity disambiguation (NED) — tutorial §4: mapping ambiguous
//! entity mentions ("Jobs", "the Apple founder") to canonical KB
//! entities. State-of-the-art NED combines
//!
//! * a **popularity prior** per surface form (anchor-text statistics),
//! * **context similarity** between the mention's surroundings and each
//!   candidate's KB-derived keyphrase profile, and
//! * **coherence** among the entities chosen for co-occurring mentions
//!   (Milne-Witten relatedness over the KB graph),
//!
//! exactly the three signal families of AIDA and successors. The
//! [`Strategy`] enum exposes each ablation level —
//! prior-only, +context, +coherence — which experiment T5 compares.
//!
//! ```
//! use kb_store::KnowledgeBase;
//! use kb_ned::{Ned, Strategy};
//!
//! let mut kb = KnowledgeBase::new();
//! let jobs = kb.intern("Steve_Jobs");
//! let apple = kb.intern("Apple_Inc");
//! let founded = kb.intern("founded");
//! kb.add_triple(jobs, founded, apple);
//! let en = kb.labels.lang("en");
//! kb.labels.add(jobs, en, "Jobs");
//!
//! let mut ned = Ned::new(&kb);
//! ned.add_anchor("Jobs", jobs);
//! ned.finalize();
//! let out = ned.disambiguate("Jobs founded a company.", &[(0, 4)], Strategy::Prior);
//! assert_eq!(out[0], Some(jobs));
//! ```

pub mod coherence;
pub mod context;
pub mod eval;
pub mod mention;
pub mod system;

pub use eval::{evaluate, NedAccuracy};
pub use mention::detect_mentions;
pub use system::{Ned, Strategy};
