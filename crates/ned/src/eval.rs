//! NED evaluation against gold-annotated documents: overall and
//! per-ambiguity-bin accuracy (experiments T5 and F3).

use kb_store::{KbRead, TermId};

use crate::system::{Ned, Strategy};

/// Accuracy breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NedAccuracy {
    /// Mentions evaluated (gold entity known to the KB).
    pub total: usize,
    /// Correctly disambiguated mentions.
    pub correct: usize,
    /// Mentions with ≥ 2 candidates.
    pub ambiguous: usize,
    /// Correct among the ambiguous.
    pub ambiguous_correct: usize,
    /// Per-ambiguity histogram: (candidate count, total, correct),
    /// candidate counts ≥ 5 pooled into the last bucket.
    pub by_ambiguity: Vec<(usize, usize, usize)>,
}

impl NedAccuracy {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Accuracy restricted to ambiguous mentions.
    pub fn ambiguous_accuracy(&self) -> f64 {
        if self.ambiguous == 0 {
            0.0
        } else {
            self.ambiguous_correct as f64 / self.ambiguous as f64
        }
    }
}

/// One gold-annotated document for evaluation.
#[derive(Debug, Clone)]
pub struct GoldDoc<'a> {
    /// Document text.
    pub text: &'a str,
    /// Gold mentions: `(start, end, gold entity)`.
    pub mentions: Vec<(usize, usize, TermId)>,
}

/// Evaluates a strategy over gold documents. Mentions whose gold entity
/// has no candidates at all still count (as errors) — coverage matters.
pub fn evaluate<K: KbRead + ?Sized>(
    ned: &Ned<'_, K>,
    docs: &[GoldDoc<'_>],
    strategy: Strategy,
) -> NedAccuracy {
    let mut acc = NedAccuracy::default();
    let mut bins: std::collections::HashMap<usize, (usize, usize)> =
        std::collections::HashMap::new();
    for doc in docs {
        let spans: Vec<(usize, usize)> = doc.mentions.iter().map(|&(s, e, _)| (s, e)).collect();
        let out = ned.disambiguate(doc.text, &spans, strategy);
        for ((start, end, gold), predicted) in doc.mentions.iter().zip(out) {
            let surface = &doc.text[*start..*end];
            let ambiguity = ned.ambiguity(surface);
            acc.total += 1;
            let bucket = ambiguity.min(5);
            let bin = bins.entry(bucket).or_insert((0, 0));
            bin.0 += 1;
            let correct = predicted == Some(*gold);
            if correct {
                acc.correct += 1;
                bin.1 += 1;
            }
            if ambiguity >= 2 {
                acc.ambiguous += 1;
                if correct {
                    acc.ambiguous_correct += 1;
                }
            }
        }
    }
    let mut by_ambiguity: Vec<(usize, usize, usize)> =
        bins.into_iter().map(|(k, (total, correct))| (k, total, correct)).collect();
    by_ambiguity.sort_unstable();
    acc.by_ambiguity = by_ambiguity;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KnowledgeBase;

    fn setup() -> (KnowledgeBase, TermId, TermId) {
        let mut kb = KnowledgeBase::new();
        let alan = kb.intern("Alan_Varen");
        let bea = kb.intern("Bea_Varen");
        let acme = kb.intern("AcmeCo");
        let works = kb.intern("worksAt");
        kb.add_triple(alan, works, acme);
        let en = kb.labels.lang("en");
        kb.labels.add(alan, en, "Varen");
        kb.labels.add(bea, en, "Varen");
        kb.labels.add(acme, en, "AcmeCo");
        (kb, alan, bea)
    }

    #[test]
    fn evaluation_counts_correct_and_ambiguous() {
        let (kb, alan, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Varen", alan);
        ned.finalize();
        let text = "Varen works at AcmeCo.";
        let docs = vec![GoldDoc {
            text,
            mentions: vec![(0, 5, alan), (15, 21, kb.term("AcmeCo").unwrap())],
        }];
        let acc = evaluate(&ned, &docs, Strategy::Prior);
        assert_eq!(acc.total, 2);
        assert_eq!(acc.correct, 2);
        assert_eq!(acc.ambiguous, 1, "only Varen is ambiguous");
        assert_eq!(acc.accuracy(), 1.0);
        assert_eq!(acc.ambiguous_accuracy(), 1.0);
    }

    #[test]
    fn wrong_predictions_are_counted() {
        let (kb, alan, bea) = setup();
        let mut ned = Ned::new(&kb);
        // All anchors point at Alan; gold says Bea.
        ned.add_anchor("Varen", alan);
        ned.finalize();
        let docs = vec![GoldDoc { text: "Varen sang.", mentions: vec![(0, 5, bea)] }];
        let acc = evaluate(&ned, &docs, Strategy::Prior);
        assert_eq!(acc.total, 1);
        assert_eq!(acc.correct, 0);
        assert_eq!(acc.ambiguous_accuracy(), 0.0);
    }

    #[test]
    fn ambiguity_bins_accumulate() {
        let (kb, alan, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.add_anchor("Varen", alan);
        ned.finalize();
        let docs = vec![
            GoldDoc { text: "Varen spoke.", mentions: vec![(0, 5, alan)] },
            GoldDoc { text: "Varen sat.", mentions: vec![(0, 5, alan)] },
        ];
        let acc = evaluate(&ned, &docs, Strategy::Prior);
        let bin2 = acc.by_ambiguity.iter().find(|&&(k, _, _)| k == 2).unwrap();
        assert_eq!(bin2.1, 2);
        assert_eq!(bin2.2, 2);
    }

    #[test]
    fn empty_docs_give_zero_accuracy() {
        let (kb, _, _) = setup();
        let mut ned = Ned::new(&kb);
        ned.finalize();
        let acc = evaluate(&ned, &[], Strategy::Prior);
        assert_eq!(acc.accuracy(), 0.0);
        assert_eq!(acc.total, 0);
    }
}
