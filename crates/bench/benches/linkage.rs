//! Criterion benches for entity linkage: blocking strategies, pair
//! features, matchers, clustering (experiment T6's timing counterpart).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kb_bench::exp_link::fixture;
use kb_bench::setup::small_corpus;
use kb_link::blocking::{candidate_pairs, Blocking};
use kb_link::cluster::cluster_with_constraints;
use kb_link::features::pair_features;
use kb_link::logreg::{LogRegMatcher, TrainConfig};
use kb_link::rules::{rule_match, RuleConfig};

fn bench_linkage(c: &mut Criterion) {
    let corpus = small_corpus(42);
    let fix = fixture(&corpus, 99);
    let records = &fix.records;

    let mut group = c.benchmark_group("linkage");
    for (name, strategy) in [
        ("full", Blocking::Full),
        ("token", Blocking::Token),
        ("snw8", Blocking::SortedNeighborhood(8)),
    ] {
        group.bench_function(format!("blocking_{name}"), |b| {
            b.iter(|| black_box(candidate_pairs(records, strategy).len()))
        });
    }

    let pairs = candidate_pairs(records, Blocking::Token);
    let by_id: std::collections::HashMap<u32, &kb_link::Record> =
        records.iter().map(|r| (r.id, r)).collect();
    group.bench_function("pair_features", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(x, y) in &pairs {
                acc += pair_features(by_id[&x], by_id[&y])[1];
            }
            black_box(acc)
        })
    });

    let labeled: Vec<(&kb_link::Record, &kb_link::Record, bool)> =
        pairs.iter().map(|&(x, y)| (by_id[&x], by_id[&y], fix.gold.contains(&(x, y)))).collect();
    group.bench_function("logreg_train", |b| {
        b.iter(|| black_box(LogRegMatcher::train(&labeled, &TrainConfig::default()).threshold))
    });

    let model = LogRegMatcher::train(&labeled, &TrainConfig::default());
    let rule_cfg = RuleConfig::default();
    group.bench_function("match_all_pairs_rule", |b| {
        b.iter(|| {
            black_box(
                pairs.iter().filter(|&&(x, y)| rule_match(by_id[&x], by_id[&y], &rule_cfg)).count(),
            )
        })
    });
    group.bench_function("match_all_pairs_logreg", |b| {
        b.iter(|| {
            black_box(pairs.iter().filter(|&&(x, y)| model.matches(by_id[&x], by_id[&y])).count())
        })
    });

    let matched: Vec<(u32, u32)> = pairs
        .iter()
        .copied()
        .filter(|&(x, y)| rule_match(by_id[&x], by_id[&y], &rule_cfg))
        .collect();
    group.bench_function("constrained_clustering", |b| {
        b.iter(|| black_box(cluster_with_constraints(records, &matched, true).refused_merges))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_linkage
}
criterion_main!(benches);
