//! Criterion benches for the harvesting stack: taxonomy harvest,
//! occurrence collection (serial vs parallel — experiment F2's timing
//! counterpart), distant-supervision training, candidate extraction,
//! MaxSat reasoning, factor-graph inference, Open IE.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kb_bench::setup::small_corpus;
use kb_corpus::{gold, Doc};
use kb_harvest::factorgraph::{infer_candidates, GibbsConfig};
use kb_harvest::facts::distant::{stratified_seeds, train, TrainConfig};
use kb_harvest::facts::extract::{extract_candidates, ExtractConfig};
use kb_harvest::facts::patterns::CollectConfig;
use kb_harvest::facts::scoring::TypeIndex;
use kb_harvest::openie::{extract_open, OpenIeConfig};
use kb_harvest::pipeline::{analyze_parallel, collect_parallel};
use kb_harvest::reasoning::{reason_candidates, SolverConfig};
use kb_harvest::taxonomy::{category, hearst};

fn bench_harvest(c: &mut Criterion) {
    let corpus = small_corpus(42);
    let world = &corpus.world;
    let docs: Vec<&Doc> = corpus.all_docs();
    let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();

    let mut group = c.benchmark_group("harvest");

    group.bench_function("taxonomy_categories", |b| {
        b.iter(|| black_box(category::harvest_categories(&docs, canonical_of).instances.len()))
    });
    group.bench_function("taxonomy_hearst", |b| {
        b.iter(|| black_box(hearst::harvest_hearst(&docs, canonical_of).len()))
    });

    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("collect_occurrences", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    black_box(
                        collect_parallel(&docs, &canonical_of, &CollectConfig::default(), w)
                            .expect("collection failed")
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("analyze_docs", workers), &workers, |b, &w| {
            b.iter(|| {
                let (occs, open) = analyze_parallel(
                    &docs,
                    &canonical_of,
                    &CollectConfig::default(),
                    &OpenIeConfig::default(),
                    w,
                )
                .expect("analysis failed");
                black_box(occs.len() + open.len())
            })
        });
    }

    let occurrences = collect_parallel(&docs, &canonical_of, &CollectConfig::default(), 1)
        .expect("collection failed");
    let gold_facts = gold::gold_fact_strings(world);
    let seeds = stratified_seeds(&gold_facts, 0.25);
    group.bench_function("distant_train", |b| {
        b.iter(|| black_box(train(&occurrences, &seeds, &TrainConfig::default()).len()))
    });

    let model = train(&occurrences, &seeds, &TrainConfig::default());
    group.bench_function("extract_candidates", |b| {
        b.iter(|| {
            black_box(extract_candidates(&occurrences, &model, &ExtractConfig::default()).len())
        })
    });

    let candidates = extract_candidates(&occurrences, &model, &ExtractConfig::default());
    let types = TypeIndex::new();
    group.bench_function("maxsat_reasoning", |b| {
        b.iter(|| {
            black_box(
                reason_candidates(&candidates, &types, &SolverConfig::default()).accepted.len(),
            )
        })
    });
    group.bench_function("factor_graph_gibbs", |b| {
        b.iter(|| black_box(infer_candidates(&candidates, &types, &GibbsConfig::default()).len()))
    });

    group.bench_function("open_ie_full", |b| {
        b.iter(|| black_box(extract_open(&docs, &OpenIeConfig::default()).len()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_harvest
}
criterion_main!(benches);
