//! Criterion benches for stream analytics: mention resolution and
//! serial vs parallel aggregation (experiment T10's timing counterpart).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kb_analytics::exec::aggregate_parallel;
use kb_analytics::stream::from_corpus;
use kb_analytics::{StreamPost, Tracker};
use kb_bench::setup::{build_ned, harvest_with, small_corpus};
use kb_harvest::pipeline::Method;
use kb_store::KbRead;

fn bench_analytics(c: &mut Criterion) {
    let corpus = small_corpus(42);
    let out = harvest_with(&corpus, Method::Reasoning, 1);
    let kb = &out.kb;
    let ned = build_ned(&corpus, kb);
    let world = &corpus.world;
    let (pa, pb) = world.rival_products;
    let tracked: Vec<_> =
        [pa, pb].iter().filter_map(|p| kb.term(&world.entity(*p).canonical)).collect();
    let tracker = Tracker::new(&ned, tracked);
    let posts: Vec<StreamPost> = corpus.posts.iter().map(from_corpus).collect();

    let mut group = c.benchmark_group("analytics");
    group.bench_function("sentiment_polarity", |b| {
        b.iter(|| {
            black_box(
                posts
                    .iter()
                    .map(|p| kb_analytics::sentiment::polarity(&p.text) as i64)
                    .sum::<i64>(),
            )
        })
    });
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("aggregate_stream", workers), &workers, |b, &w| {
            b.iter(|| {
                let series = aggregate_parallel(&tracker, kb, &posts, w);
                black_box(series.values().map(|s| s.total_mentions()).sum::<usize>())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analytics
}
criterion_main!(benches);
