//! Criterion benches for the `kb-query` engine (experiment F8/T13's
//! precise timing counterpart): cost-based planned execution vs the
//! legacy greedy engine on skewed multi-joins, plan-cache hit vs cold
//! parse+plan, and batch serving throughput vs worker count.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kb_bench::exp_query::{f8_queries, serving_workload, synthetic_kb_skewed};
use kb_query::{execute, parse, plan, QueryService, StatsCatalog};

/// Planned vs legacy join order at two sizes. Parsing and planning
/// happen outside the timed loop for both engines, so the comparison
/// is pure execution (join order + operator choice).
fn bench_join_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    for &n in &[10_000usize, 100_000] {
        let kb = synthetic_kb_skewed(n, 7);
        let snap = kb.snapshot();
        let stats = StatsCatalog::build(&snap);
        for (label, text) in f8_queries() {
            let legacy_q = kb_store::query::Query::parse(&snap, text).expect("legacy parse");
            let compiled = plan(&parse(text).expect("parse"), &snap, &stats).expect("plan");
            let id = label.replace(' ', "_");
            group.bench_with_input(
                BenchmarkId::new(format!("{id}/legacy").as_str(), n),
                &n,
                |b, _| b.iter(|| black_box(kb_store::query::execute(&snap, &legacy_q).len())),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{id}/planned").as_str(), n),
                &n,
                |b, _| b.iter(|| black_box(execute(&compiled, &snap).rows.len())),
            );
        }
    }
    group.finish();
}

/// Plan-cache hit vs cold parse+plan for the same query text.
fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache");
    let kb = synthetic_kb_skewed(40_000, 7);
    let snap = kb.into_snapshot().into_shared();
    let stats = Arc::new(StatsCatalog::build(snap.as_ref()));
    let text = "SELECT ?x ?y WHERE { ?y rel_rare ?z . ?x rel_big ?y } LIMIT 10";
    group.bench_function("cold_parse_plan", |b| {
        b.iter(|| {
            let q = parse(text).expect("parse");
            black_box(plan(&q, snap.as_ref(), &stats).expect("plan").columns().len())
        })
    });
    let service = QueryService::new(snap);
    service.query(text).expect("warm");
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(service.plan_for(text).expect("hit").columns().len()))
    });
    group.finish();
}

/// Batch serving throughput vs worker count: 256 distinct queries
/// against a cache sized well below that, so execution dominates.
fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    let kb = synthetic_kb_skewed(40_000, 7);
    let snap = kb.into_snapshot().into_shared();
    let queries = serving_workload(256);
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("batch_256", workers), &workers, |b, &w| {
            b.iter(|| {
                let svc = QueryService::with_capacity(snap.clone(), 32);
                black_box(svc.serve_batch(&refs, w).len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join_order, bench_plan_cache, bench_serving
}
criterion_main!(benches);
