//! Criterion benches for the triple store (experiment F4's precise
//! timing counterpart): insertion, point lookup, pattern scan, path
//! join, and serialization at two KB sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kb_bench::exp_kb::synthetic_kb;
use kb_store::TriplePattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for &n in &[10_000usize, 80_000] {
        let kb = synthetic_kb(n, 7);
        let triples = kb.matching_triples(&TriplePattern::any());
        let mut rng = StdRng::seed_from_u64(3);

        group.bench_with_input(BenchmarkId::new("point_lookup", n), &n, |b, _| {
            b.iter(|| {
                let t = triples[rng.gen_range(0..triples.len())];
                black_box(kb.contains(&t))
            })
        });
        group.bench_with_input(BenchmarkId::new("subject_scan", n), &n, |b, _| {
            b.iter(|| {
                let t = triples[rng.gen_range(0..triples.len())];
                black_box(kb.matching_triples(&TriplePattern::with_s(t.s)).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("path_join", n), &n, |b, _| {
            let r0 = kb.term("rel_0").unwrap();
            let r1 = kb.term("rel_1").unwrap();
            b.iter(|| black_box(kb.path_join(r0, r1).len()))
        });
        group.bench_with_input(BenchmarkId::new("serialize", n), &n, |b, _| {
            b.iter(|| black_box(kb_store::ntriples::to_string(&kb).unwrap().len()))
        });
    }
    group.bench_function("insert_10k", |b| {
        b.iter(|| black_box(synthetic_kb(10_000, 7).len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_store
}
criterion_main!(benches);
