//! Criterion benches for the triple store (experiment F4's precise
//! timing counterpart): insertion, point lookup, pattern scan, path
//! join, and serialization at two KB sizes — plus head-to-head
//! comparisons of the frozen snapshot engine against the legacy
//! BTreeSet engine, and of sharded-builder ingest against the
//! mutable façade.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kb_bench::exp_kb::synthetic_kb;
use kb_store::{KbBuilder, KbRead, KbShard, KnowledgeBase, LegacyKb, TriplePattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rebuilds a synthetic KB inside the legacy BTreeSet engine (same
/// triples, same insertion order).
fn legacy_of(kb: &KnowledgeBase) -> LegacyKb {
    let mut legacy = LegacyKb::new();
    for fact in kb.facts() {
        let s = legacy.intern(kb.resolve(fact.triple.s).unwrap());
        let p = legacy.intern(kb.resolve(fact.triple.p).unwrap());
        let o = legacy.intern(kb.resolve(fact.triple.o).unwrap());
        legacy.add_triple(s, p, o);
    }
    legacy
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for &n in &[10_000usize, 80_000] {
        let kb = synthetic_kb(n, 7);
        let triples = kb.matching_triples(&TriplePattern::any());
        let mut rng = StdRng::seed_from_u64(3);

        group.bench_with_input(BenchmarkId::new("point_lookup", n), &n, |b, _| {
            b.iter(|| {
                let t = triples[rng.gen_range(0..triples.len())];
                black_box(kb.contains(&t))
            })
        });
        group.bench_with_input(BenchmarkId::new("subject_scan", n), &n, |b, _| {
            b.iter(|| {
                let t = triples[rng.gen_range(0..triples.len())];
                black_box(kb.matching_triples(&TriplePattern::with_s(t.s)).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("path_join", n), &n, |b, _| {
            let r0 = kb.term("rel_0").unwrap();
            let r1 = kb.term("rel_1").unwrap();
            b.iter(|| black_box(kb.path_join(r0, r1).len()))
        });
        group.bench_with_input(BenchmarkId::new("serialize", n), &n, |b, _| {
            b.iter(|| black_box(kb_store::ntriples::to_string(&kb).unwrap().len()))
        });
    }
    group.bench_function("insert_10k", |b| b.iter(|| black_box(synthetic_kb(10_000, 7).len())));
    group.finish();
}

/// Snapshot engine vs the legacy BTreeSet engine, same data, same
/// queries: range scans, counts, degree, neighbors, path joins.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &n in &[10_000usize, 100_000] {
        let kb = synthetic_kb(n, 7);
        let legacy = legacy_of(&kb);
        let snapshot = kb.snapshot();
        let triples = kb.matching_triples(&TriplePattern::any());
        let subjects: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..512).map(|_| triples[rng.gen_range(0..triples.len())].s).collect()
        };

        // Range scan: all facts of one subject (s??).
        group.bench_with_input(BenchmarkId::new("range_scan/legacy", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(legacy.matching(&TriplePattern::with_s(subjects[i])).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("range_scan/snapshot", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(snapshot.matching_iter(&TriplePattern::with_s(subjects[i])).count())
            })
        });

        // Count: exact cardinality of a range (O(1) on the snapshot).
        group.bench_with_input(BenchmarkId::new("count/legacy", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(legacy.count_matching(&TriplePattern::with_s(subjects[i])))
            })
        });
        group.bench_with_input(BenchmarkId::new("count/snapshot", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(snapshot.count_matching(&TriplePattern::with_s(subjects[i])))
            })
        });

        // Degree and neighborhood of a node.
        group.bench_with_input(BenchmarkId::new("degree/legacy", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(legacy.degree(subjects[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("degree/snapshot", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(snapshot.degree(subjects[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("neighbors/legacy", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(legacy.neighbors(subjects[i]).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("neighbors/snapshot", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % subjects.len();
                black_box(snapshot.neighbors(subjects[i]).len())
            })
        });

        // Two-hop path join.
        let r0 = kb.term("rel_0").unwrap();
        let r1 = kb.term("rel_1").unwrap();
        let lr0 = legacy.term("rel_0").unwrap();
        let lr1 = legacy.term("rel_1").unwrap();
        group.bench_with_input(BenchmarkId::new("path_join/legacy", n), &n, |b, _| {
            b.iter(|| black_box(legacy.path_join(lr0, lr1).len()))
        });
        group.bench_with_input(BenchmarkId::new("path_join/snapshot", n), &n, |b, _| {
            b.iter(|| black_box(snapshot.path_join_iter(r0, r1).count()))
        });
    }
    group.finish();
}

/// Ingest cost: mutable façade vs builder-freeze vs sharded builders
/// merged at a barrier.
fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    let n = 10_000usize;
    let rows: Vec<(String, String, String)> = {
        let mut rng = StdRng::seed_from_u64(7);
        let n_entities = (n / 4).max(16);
        (0..n)
            .map(|_| {
                (
                    format!("entity_{}", rng.gen_range(0..n_entities)),
                    format!("rel_{}", rng.gen_range(0..32)),
                    format!("entity_{}", rng.gen_range(0..n_entities)),
                )
            })
            .collect()
    };
    group.bench_function("facade_10k", |b| {
        b.iter(|| {
            let mut kb = KnowledgeBase::new();
            for (s, p, o) in &rows {
                kb.assert_str(s, p, o);
            }
            black_box(kb.len())
        })
    });
    group.bench_function("builder_freeze_10k", |b| {
        b.iter(|| {
            let mut builder = KbBuilder::new();
            for (s, p, o) in &rows {
                builder.assert_str(s, p, o);
            }
            black_box(builder.freeze().len())
        })
    });
    group.bench_function("shard_merge_10k", |b| {
        b.iter(|| {
            let src = kb_store::SourceId(0);
            let shards: Vec<KbShard> = rows
                .chunks(rows.len().div_ceil(4))
                .map(|chunk| {
                    let mut shard = KbShard::new();
                    for (s, p, o) in chunk {
                        shard.add(s, p, o, 1.0, src, None);
                    }
                    shard
                })
                .collect();
            let mut builder = KbBuilder::new();
            builder.register_source("bench");
            builder.merge_shards(shards);
            black_box(builder.len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_store, bench_engines, bench_ingest
}
criterion_main!(benches);
