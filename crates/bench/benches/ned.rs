//! Criterion benches for NED: candidate generation and the three
//! disambiguation strategies (experiment T5's timing counterpart).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kb_bench::setup::{build_ned, harvest_with, ned_gold_docs, small_corpus};
use kb_harvest::pipeline::Method;
use kb_ned::Strategy;

fn bench_ned(c: &mut Criterion) {
    let corpus = small_corpus(42);
    let out = harvest_with(&corpus, Method::Reasoning, 1);
    let ned = build_ned(&corpus, &out.kb);
    let gold = ned_gold_docs(&corpus.articles, &corpus, &out.kb);
    // A representative ambiguous surface form.
    let ambiguous_surface = corpus
        .world
        .of_kind(kb_corpus::EntityKind::Person)
        .map(|e| e.short.clone())
        .find(|s| ned.ambiguity(s) >= 2)
        .unwrap_or_else(|| "Varen".to_string());

    let mut group = c.benchmark_group("ned");
    group.bench_function("candidate_generation", |b| {
        b.iter(|| black_box(ned.candidates(&ambiguous_surface).len()))
    });
    for (name, strategy) in [
        ("prior", Strategy::Prior),
        ("context", Strategy::Context),
        ("coherence", Strategy::Coherence),
    ] {
        group.bench_function(format!("disambiguate_{name}"), |b| {
            b.iter(|| {
                let mut correct = 0usize;
                for doc in &gold {
                    let spans: Vec<(usize, usize)> =
                        doc.mentions.iter().map(|&(s, e, _)| (s, e)).collect();
                    let res = ned.disambiguate(doc.text, &spans, strategy);
                    correct += res.iter().flatten().count();
                }
                black_box(correct)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ned
}
criterion_main!(benches);
