//! Criterion benches for the segmented read path (experiment T15's
//! precise timing counterpart): delta freeze + install vs full
//! rebuild, merged-view scans vs monolithic scans at varying stack
//! depths, and compaction cost.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kb_bench::exp_query::synthetic_kb_skewed;
use kb_query::{QueryService, StatsCatalog};
use kb_store::{KbBuilder, KbRead, SegmentedSnapshot, TriplePattern};

/// A segmented view of the skewed KB with `depth` stacked deltas of
/// `delta_facts` fresh triples each.
fn stacked_view(n: usize, depth: usize, delta_facts: usize) -> SegmentedSnapshot {
    let base = synthetic_kb_skewed(n, 7);
    let mut view = SegmentedSnapshot::from_base(base.snapshot().into_shared());
    for d in 0..depth {
        let mut b = KbBuilder::new();
        for j in 0..delta_facts {
            b.assert_str(&format!("dx_{d}_{j}"), "rel_rare", &format!("dy_{d}_{j}"));
        }
        view = view.with_delta(Arc::new(b.freeze_delta(&view)));
    }
    view
}

/// Delta install vs full rebuild: the T15 comparison under Criterion's
/// measurement discipline.
fn bench_install(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment/install");
    let n = 50_000usize;
    let delta_facts = 500usize;

    group.bench_function("full_rebuild", |b| {
        let kb = synthetic_kb_skewed(n, 7);
        let svc = QueryService::new(kb.snapshot().into_shared());
        b.iter(|| {
            let snap = kb.snapshot();
            black_box(StatsCatalog::build(&snap).estimate(None, false, false));
            svc.install(snap.into_shared());
        })
    });
    group.bench_function("delta_install", |b| {
        let base = synthetic_kb_skewed(n, 7);
        let svc = QueryService::new(base.snapshot().into_shared());
        let mut round = 0usize;
        b.iter(|| {
            let view = svc.snapshot();
            let mut builder = KbBuilder::new();
            for j in 0..delta_facts {
                builder.assert_str(
                    &format!("dx_{round}_{j}"),
                    "rel_rare",
                    &format!("dy_{round}_{j}"),
                );
            }
            svc.apply_delta(Arc::new(builder.freeze_delta(&view)));
            round += 1;
        })
    });
    group.finish();
}

/// Read amplification of the merged view: pattern scans and counts at
/// stack depths 0 (pure base), 2, and 8.
fn bench_merged_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment/scan");
    let n = 50_000usize;
    for &depth in &[0usize, 2, 8] {
        let view = stacked_view(n, depth, 200);
        let mid = view.term("rel_mid").unwrap();
        group.bench_with_input(BenchmarkId::new("predicate_scan", depth), &depth, |b, _| {
            b.iter(|| black_box(view.matching_iter(&TriplePattern::with_p(mid)).count()))
        });
        group.bench_with_input(BenchmarkId::new("count_matching", depth), &depth, |b, _| {
            b.iter(|| black_box(view.count_matching(&TriplePattern::with_p(mid))))
        });
        let (r1, r2) = (view.term("rel_mid").unwrap(), view.term("rel_mid2").unwrap());
        group.bench_with_input(BenchmarkId::new("path_join", depth), &depth, |b, _| {
            b.iter(|| black_box(view.path_join_iter(r1, r2).count()))
        });
    }
    group.finish();
}

/// Folding an 8-deep stack back into one monolithic snapshot.
fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment/compact");
    let view = stacked_view(50_000, 8, 200);
    group.bench_function("compact_8_deltas", |b| b.iter(|| black_box(view.compact().len())));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_install, bench_merged_scans, bench_compaction
}
criterion_main!(benches);
