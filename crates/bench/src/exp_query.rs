//! F8 (cost-based planner vs legacy greedy join order), T13 (query
//! serving layer: plan-cache behaviour and batch throughput vs worker
//! count), and T14 (single-flight dedup of cold-query bursts).

use std::sync::Barrier;
use std::time::Instant;

use kb_query::{execute, parse, plan, QueryService, StatsCatalog};
use kb_store::KnowledgeBase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// Builds a synthetic KB with *skewed* predicate cardinalities — the
/// regime where join order matters. Roughly 80% of facts use
/// `rel_big`, ~12% `rel_mid`, ~8% `rel_mid2`, plus a tiny `rel_rare`
/// (about `n / 2000` facts, at least 8).
pub fn synthetic_kb_skewed(n: usize, seed: u64) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_entities = (n / 4).max(32);
    let entities: Vec<_> = (0..n_entities).map(|i| kb.intern(&format!("entity_{i}"))).collect();
    let big = kb.intern("rel_big");
    let mid = kb.intern("rel_mid");
    let mid2 = kb.intern("rel_mid2");
    let rare = kb.intern("rel_rare");
    let n_rare = (n / 2000).max(8);
    for _ in 0..(n * 8 / 10) {
        let s = entities[rng.gen_range(0..entities.len())];
        let o = entities[rng.gen_range(0..entities.len())];
        kb.add_triple(s, big, o);
    }
    for _ in 0..(n * 12 / 100) {
        let s = entities[rng.gen_range(0..entities.len())];
        let o = entities[rng.gen_range(0..entities.len())];
        kb.add_triple(s, mid, o);
    }
    for _ in 0..(n * 8 / 100) {
        let s = entities[rng.gen_range(0..entities.len())];
        let o = entities[rng.gen_range(0..entities.len())];
        kb.add_triple(s, mid2, o);
    }
    for _ in 0..n_rare {
        let s = entities[rng.gen_range(0..entities.len())];
        let o = entities[rng.gen_range(0..entities.len())];
        kb.add_triple(s, rare, o);
    }
    kb
}

/// The F8 benchmark queries. Pattern text order is *adversarial* for
/// the legacy engine: its greedy picks the remaining pattern with the
/// most bound components, breaking ties towards the last pattern — so
/// listing `rel_big` last makes it open the join with a full scan of
/// the dominant relation. The cost-based planner ignores text order.
pub fn f8_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("chain rare→big", "?y rel_rare ?z . ?x rel_big ?y"),
        ("chain mid→big", "?y rel_mid ?z . ?x rel_big ?y"),
        ("star on ?x", "?x rel_big ?a . ?x rel_mid ?b . ?x rel_rare ?c"),
        ("shared object (merge-range)", "?a rel_mid ?c . ?b rel_mid2 ?c"),
    ]
}

/// A mixed serving workload of `k` distinct queries over the skewed
/// KB: cheap constant-bound probes, mid-sized merge-range joins, and
/// aggregate queries. Distinct `LIMIT`s keep the normalized texts (and
/// so the cache keys) distinct.
pub fn serving_workload(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| match i % 3 {
            0 => format!("SELECT ?x ?y WHERE {{ ?x rel_big entity_{i} . ?x rel_mid ?y }}"),
            1 => {
                format!("SELECT ?a ?b WHERE {{ ?a rel_mid ?c . ?b rel_mid2 ?c }} LIMIT {}", i + 1)
            }
            _ => format!(
                "SELECT ?c COUNT(?a) AS ?n WHERE {{ ?a rel_mid ?c }} \
                 GROUP BY ?c ORDER BY DESC(?n) ?c LIMIT {}",
                i + 1
            ),
        })
        .collect()
}

fn time_ms(mut f: impl FnMut() -> usize, min_iters: usize) -> (f64, usize) {
    // One warmup, then measure.
    let rows = f();
    let t0 = Instant::now();
    let mut iters = 0usize;
    while iters < min_iters || t0.elapsed().as_millis() < 200 {
        let r = f();
        assert_eq!(r, rows, "non-deterministic result while timing");
        iters += 1;
    }
    (t0.elapsed().as_secs_f64() * 1e3 / iters as f64, rows)
}

/// F8: planned vs legacy execution time on skewed multi-joins. Both
/// engines run over the same frozen snapshot with parsing/planning
/// done outside the timed region, so the comparison is join order and
/// operator choice alone.
pub fn f8() -> String {
    let mut t = Table::new(&["facts", "query", "legacy ms", "planned ms", "speedup", "rows"]);
    for &n in &[10_000usize, 100_000] {
        let kb = synthetic_kb_skewed(n, 7);
        let snap = kb.snapshot();
        let stats = StatsCatalog::build(&snap);
        for (label, text) in f8_queries() {
            let legacy_q = kb_store::query::Query::parse(&snap, text).expect("legacy parse");
            let parsed = parse(text).expect("parse");
            let compiled = plan(&parsed, &snap, &stats).expect("plan");
            let (legacy_ms, legacy_rows) =
                time_ms(|| kb_store::query::execute(&snap, &legacy_q).len(), 3);
            let (planned_ms, planned_rows) = time_ms(|| execute(&compiled, &snap).rows.len(), 3);
            // The engines must agree on the result cardinality (the
            // differential proptests check full binding equality).
            assert_eq!(legacy_rows, planned_rows, "{label}: engines disagree");
            t.row(vec![
                n.to_string(),
                label.to_string(),
                format!("{legacy_ms:.3}"),
                format!("{planned_ms:.3}"),
                format!("{:.1}x", legacy_ms / planned_ms),
                planned_rows.to_string(),
            ]);
        }
    }
    format!(
        "F8 — cost-based planner vs legacy greedy join order (adversarial pattern order)\n{}",
        t.render()
    )
}

/// T13: the serving layer. Reports (a) cold parse+plan vs plan-cache
/// hit vs result-cache hit per-query latency, and (b) batch throughput
/// vs worker count with a cache sized below the distinct-query count,
/// so workers keep doing real execution work.
pub fn t13() -> String {
    let kb = synthetic_kb_skewed(40_000, 7);
    let snap = kb.into_snapshot().into_shared();

    // (a) cache-path latencies for one multi-join query.
    let text = "?y rel_rare ?z . ?x rel_big ?y";
    let stats = StatsCatalog::build(snap.as_ref());
    let (cold_ms, _) = time_ms(
        || {
            let parsed = parse(text).expect("parse");
            let compiled = plan(&parsed, snap.as_ref(), &stats).expect("plan");
            compiled.columns().len()
        },
        50,
    );
    let service = QueryService::new(snap.clone());
    service.query(text).expect("warm the caches");
    let (hit_plan_ms, _) = time_ms(|| service.plan_for(text).expect("hit").columns().len(), 50);
    let (hit_result_ms, _) = time_ms(|| service.query(text).expect("hit").rows.len(), 50);
    let mut paths = Table::new(&["path", "ms/query"]);
    paths.row(vec!["cold: parse + plan".into(), format!("{cold_ms:.4}")]);
    paths.row(vec!["plan-cache hit (skips parse+plan)".into(), format!("{hit_plan_ms:.4}")]);
    paths.row(vec!["result-cache hit (skips execute too)".into(), format!("{hit_result_ms:.4}")]);

    // (b) throughput vs workers over 256 distinct queries with a
    // 32-entry cache: execution dominates, caches stay honest.
    let queries = serving_workload(256);
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let mut tput = Table::new(&["workers", "batch ms", "queries/s"]);
    let mut baseline = 0.0f64;
    for &workers in &[1usize, 2, 4, 8] {
        let svc = QueryService::with_capacity(snap.clone(), 32);
        let t0 = Instant::now();
        let out = svc.serve_batch(&refs, workers);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(out.iter().all(Result::is_ok));
        if workers == 1 {
            baseline = ms;
        }
        tput.row(vec![
            workers.to_string(),
            format!("{ms:.1}"),
            format!("{:.0} ({:.2}x)", refs.len() as f64 / (ms / 1e3), baseline / ms),
        ]);
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "T13 — query serving layer: cache paths and batch throughput\n{}\nbatch of {} distinct queries, cache capacity 32, host parallelism {}\n{}",
        paths.render(),
        refs.len(),
        cores,
        tput.render()
    )
}

/// One cold-query burst: `threads` workers hit the same never-seen
/// query through one barrier. Returns the service's cache stats and
/// the burst wall time in milliseconds.
fn cold_burst(
    snap: &std::sync::Arc<kb_store::KbSnapshot>,
    text: &str,
    threads: usize,
    single_flight: bool,
) -> (kb_query::CacheStats, f64) {
    let svc = QueryService::with_instrumentation(snap.clone(), 32, &kb_obs::Registry::new());
    svc.set_single_flight(single_flight);
    let barrier = Barrier::new(threads);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                svc.query(text).expect("burst query");
            });
        }
    });
    (svc.cache_stats(), t0.elapsed().as_secs_f64() * 1e3)
}

/// T14: the thundering-herd fix. A burst of workers all miss on the
/// same cold query; without single-flight each racer may execute the
/// full plan redundantly, with it exactly one leader executes while
/// the rest wait and are counted as `result_dedup`. Averaged over
/// several bursts because the unprotected race is nondeterministic.
pub fn t14() -> String {
    const BURSTS: usize = 16;
    // The merge-range join over the two mid-sized relations is the
    // most expensive cold path in the workload (several ms at this
    // scale) — long enough for every burst thread to probe-miss before
    // the first finisher populates the cache.
    let kb = synthetic_kb_skewed(150_000, 7);
    let snap = kb.into_snapshot().into_shared();
    let text = "?a rel_mid ?c . ?b rel_mid2 ?c";
    let mut t = Table::new(&[
        "threads",
        "single-flight",
        "cold executions/burst",
        "deduped/burst",
        "burst ms",
    ]);
    for &threads in &[2usize, 4, 8] {
        for single_flight in [false, true] {
            let (mut misses, mut dedup, mut ms) = (0u64, 0u64, 0.0f64);
            for _ in 0..BURSTS {
                let (stats, burst_ms) = cold_burst(&snap, text, threads, single_flight);
                assert_eq!(
                    stats.result_hits + stats.result_misses + stats.result_dedup,
                    threads as u64,
                    "counter conservation"
                );
                if single_flight {
                    assert_eq!(stats.result_misses, 1, "single-flight must execute exactly once");
                }
                misses += stats.result_misses;
                dedup += stats.result_dedup;
                ms += burst_ms;
            }
            let per = |v: u64| format!("{:.2}", v as f64 / BURSTS as f64);
            t.row(vec![
                threads.to_string(),
                if single_flight { "on" } else { "off" }.to_string(),
                per(misses),
                per(dedup),
                format!("{:.2}", ms / BURSTS as f64),
            ]);
        }
    }
    format!(
        "T14 — single-flight dedup of cold-query bursts ({BURSTS} bursts/row, fresh cache per burst)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KbRead;

    #[test]
    fn skewed_kb_has_the_advertised_shape() {
        let kb = synthetic_kb_skewed(10_000, 7);
        let big = kb.count_matching(&kb_store::TriplePattern::with_p(kb.term("rel_big").unwrap()));
        let rare =
            kb.count_matching(&kb_store::TriplePattern::with_p(kb.term("rel_rare").unwrap()));
        assert!(big > 6_000, "rel_big should dominate: {big}");
        assert!(rare <= 8, "rel_rare should be tiny: {rare}");
    }

    #[test]
    fn f8_queries_agree_across_engines_on_small_kb() {
        let kb = synthetic_kb_skewed(4_000, 7);
        let snap = kb.snapshot();
        for (label, text) in f8_queries() {
            let legacy = kb_store::query::query(&snap, text).expect("legacy");
            let new = kb_query::query(&snap, text).expect("new");
            assert_eq!(legacy.len(), new.rows.len(), "cardinality mismatch on {label}");
        }
    }

    #[test]
    fn t14_single_flight_burst_is_deduped() {
        // Smoke-scale: one 4-thread burst per mode on a small KB.
        let kb = synthetic_kb_skewed(2_000, 3);
        let snap = kb.into_snapshot().into_shared();
        let text = "?a rel_mid ?c . ?b rel_mid2 ?c";
        let (off, _) = cold_burst(&snap, text, 4, false);
        assert_eq!(off.result_hits + off.result_misses + off.result_dedup, 4);
        assert_eq!(off.result_dedup, 0, "dedup counter must stay 0 with single-flight off");
        let (on, _) = cold_burst(&snap, text, 4, true);
        assert_eq!(on.result_misses, 1);
        assert_eq!(on.result_hits + on.result_dedup, 3);
    }

    #[test]
    fn t13_renders() {
        // Smoke-scale version of the serving table.
        let kb = synthetic_kb_skewed(2_000, 3);
        let snap = kb.into_snapshot().into_shared();
        let svc = QueryService::new(snap);
        let queries: Vec<String> = (0..8).map(|i| format!("?x rel_big entity_{i}")).collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let out = svc.serve_batch(&refs, 4);
        assert!(out.iter().all(Result::is_ok));
    }
}
