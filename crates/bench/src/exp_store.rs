//! T16 (durable segment store): what a cold start costs with and
//! without on-disk segments.
//!
//! Without the segment store, a crashed or restarted deployment has to
//! *re-produce* its KB: re-run the harvest pipeline over the corpus
//! (the facts exist nowhere else), re-freeze, re-index. With it, the
//! same deployment re-opens checksummed segment files — an `O(n)`
//! validated read with no extraction, no merging and no sorting — and
//! a `QueryService` is serving again in milliseconds.
//!
//! Both sides of the comparison end at the same place — a serving
//! `QueryService` — and both are taken as the *minimum* over repeated
//! runs, which damps scheduler noise on loaded machines without
//! flattering either side.
//!
//! Three rows, with the comparison spelled out honestly:
//!
//! 1. **Corpus scale, fully measured** — harvest the experiment corpus,
//!    freeze it and boot a service (the rebuild), then cold-open the
//!    durable store it produced. Both sides measured directly. At this
//!    scale (a few thousand facts) fixed per-open costs dominate, so
//!    the guard here is a looser ≥10×; the headline 50× bar belongs to
//!    the 100k row below.
//! 2. **100k facts** — cold-open measured directly on a 100k-fact KB;
//!    the rebuild side is the row-1 pipeline throughput (facts/s)
//!    linearly extrapolated to 100k facts. The pipeline is linear in
//!    documents while freezing is `O(n log n)`, so the extrapolation
//!    *understates* the true rebuild cost — the conservative direction.
//!    Asserted ≥50× (the acceptance bar).
//! 3. **TSV reload at 100k (informational)** — the repo's other
//!    persistence path (parse the N-Triples dump, re-merge, re-sort).
//!    Much cheaper than re-harvesting but still several times slower
//!    than `open`; reported without an assertion.

use std::sync::Arc;
use std::time::Instant;

use kb_corpus::Corpus;
use kb_harvest::pipeline::{harvest, HarvestConfig};
use kb_query::QueryService;
use kb_store::{
    ntriples, segment_io, KbRead, KbSnapshot, SegmentRegion, SegmentStore, StoreOptions,
    TriplePattern,
};

use crate::exp_query::synthetic_kb_skewed;
use crate::table::Table;

const OPEN_ITERS: usize = 5;
const REBUILD_ITERS: usize = 2;

/// Milliseconds to cold-start a serving `QueryService` from the store
/// directory: open (checksum validation + WAL replay) plus the service
/// bootstrap (stats catalog, caches). Minimum over [`OPEN_ITERS`] runs.
fn cold_start_ms(dir: &std::path::Path) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..OPEN_ITERS {
        let t0 = Instant::now();
        let store = SegmentStore::open(dir).expect("open store");
        let view = store.view();
        let service = QueryService::from_view(&view);
        std::hint::black_box(service.generation());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Writes `snap` as a fresh store directory under the temp dir.
fn store_dir(name: &str, snap: Arc<KbSnapshot>) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kbkit-t16-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    SegmentStore::create(&dir, snap, StoreOptions::default()).expect("create store");
    dir
}

/// T16 core measurements, shared by the harness table and the smoke
/// test: `(facts, rebuild_ms, cold_start_ms)` for the corpus-scale
/// comparison.
pub fn t16_measure(corpus: &Corpus) -> (usize, f64, f64) {
    let mut rebuild_ms = f64::INFINITY;
    let mut snap = None;
    for _ in 0..REBUILD_ITERS {
        let t0 = Instant::now();
        let out = harvest(corpus, &HarvestConfig::default()).expect("harvest");
        let rebuilt = out.kb.snapshot().into_shared();
        let service = QueryService::new(Arc::clone(&rebuilt));
        std::hint::black_box(service.generation());
        rebuild_ms = rebuild_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        snap = Some(rebuilt);
    }
    let snap = snap.expect("at least one rebuild");
    let facts = snap.len();
    let dir = store_dir("corpus", snap);
    let open_ms = cold_start_ms(&dir);
    std::fs::remove_dir_all(&dir).ok();
    (facts, rebuild_ms, open_ms)
}

/// T16: cold-start open vs full rebuild.
pub fn t16(corpus: &Corpus) -> String {
    let mut t = Table::new(&["facts", "rebuild", "rebuild ms", "cold start ms", "speedup"]);

    // Row 1: both sides measured end to end at corpus scale. Fixed
    // per-open costs (file opens, stats bootstrap) dominate at a few
    // thousand facts, so this row guards a looser 10×; the 50×
    // acceptance bar is asserted on the 100k row, where the linear
    // costs dominate. Skipped entirely on the tiny smoke corpus.
    let (facts, rebuild_ms, open_ms) = t16_measure(corpus);
    if facts >= 1_000 {
        assert!(
            rebuild_ms >= 10.0 * open_ms,
            "cold start must be ≥10× faster than re-harvesting \
             (rebuild {rebuild_ms:.1}ms vs open {open_ms:.3}ms at {facts} facts)"
        );
    }
    let throughput = facts as f64 / (rebuild_ms / 1e3); // facts per second
    t.row(vec![
        facts.to_string(),
        "re-harvest (measured)".into(),
        format!("{rebuild_ms:.1}"),
        format!("{open_ms:.2}"),
        format!("{:.0}x", rebuild_ms / open_ms),
    ]);

    // Row 2: 100k facts — open measured, rebuild extrapolated from the
    // measured pipeline throughput (the pipeline is linear in docs).
    let kb100 = synthetic_kb_skewed(100_000, 7);
    let snap100 = kb100.snapshot().into_shared();
    let facts100 = snap100.len();
    let dump100 = ntriples::to_string(snap100.as_ref()).expect("dump");
    let dir = store_dir("100k", snap100);
    let open100_ms = cold_start_ms(&dir);
    std::fs::remove_dir_all(&dir).ok();
    let rebuild100_ms = facts100 as f64 / throughput * 1e3;
    // The acceptance bar. Only asserted when the throughput base came
    // from a real corpus — on the --small smoke corpus the per-document
    // fixed costs deflate the extrapolated rebuild well below what a
    // real 100k harvest would cost, which would fail the ratio for the
    // wrong reason. CI runs the harness at full scale.
    if facts >= 1_000 {
        assert!(
            rebuild100_ms >= 50.0 * open100_ms,
            "cold start at 100k facts must be ≥50× faster than a pipeline rebuild \
             (extrapolated rebuild {rebuild100_ms:.0}ms vs open {open100_ms:.2}ms)"
        );
    }
    t.row(vec![
        facts100.to_string(),
        "re-harvest (extrapolated)".into(),
        format!("{rebuild100_ms:.0}"),
        format!("{open100_ms:.2}"),
        format!("{:.0}x", rebuild100_ms / open100_ms),
    ]);

    // Row 3 (informational): reloading the N-Triples dump — parse,
    // re-merge, re-sort all three permutations. No assertion: this path
    // only exists when a dump was written, and is still slower.
    let t0 = Instant::now();
    let reloaded = ntriples::from_str(&dump100).expect("parse dump");
    let resnap = reloaded.into_snapshot();
    let tsv_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(resnap.len(), facts100);
    t.row(vec![
        facts100.to_string(),
        "TSV reload (measured)".into(),
        format!("{tsv_ms:.1}"),
        format!("{open100_ms:.2}"),
        format!("{:.1}x", tsv_ms / open100_ms),
    ]);

    format!(
        "T16 — durable segment store: cold start vs rebuild (open = checksummed \
         segment read + WAL replay + QueryService bootstrap, min of {OPEN_ITERS})\n\
         pipeline throughput measured in row 1: {throughput:.0} facts/s\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// T19 — beyond-RAM paging
// ---------------------------------------------------------------------

/// Frames-region byte length of the store's base segment.
fn t19_frames_bytes(dir: &std::path::Path) -> usize {
    let bytes = std::fs::read(dir.join("base-0.seg")).expect("read base segment");
    segment_io::region_map(&bytes)
        .expect("region map")
        .into_iter()
        .find(|(r, _)| *r == SegmentRegion::Frames)
        .map(|(_, range)| range.len())
        .expect("v2 base segment has a frames region")
}

/// Milliseconds for a *lazy* `SegmentStore::open_with` alone — no
/// service bootstrap, no prefault — minimum over [`OPEN_ITERS`] runs.
fn t19_open_ms(dir: &std::path::Path) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..OPEN_ITERS {
        let t0 = Instant::now();
        let store = SegmentStore::open_with(dir, StoreOptions::default()).expect("open store");
        std::hint::black_box(store.generation());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// A mixed scan/probe workload derived from the KB itself: the full
/// scan plus subject-, predicate- and object-bound probes taken from
/// the first facts of the store, touching all three permutations.
fn t19_workload(view: &kb_store::SegmentedSnapshot) -> Vec<TriplePattern> {
    let mut patterns = vec![TriplePattern::any()];
    for m in view.matching_iter(&TriplePattern::any()).take(3) {
        patterns.push(TriplePattern::with_s(m.triple.s));
        patterns.push(TriplePattern::with_p(m.triple.p));
        patterns.push(TriplePattern::with_o(m.triple.o));
    }
    patterns
}

/// `(facts, lazy_open_ms)` for one store size in [`t19_measure`].
pub type OpenPoint = (usize, f64);

/// `(budget, peak_resident, faults, spills)` from the budgeted serve
/// in [`t19_measure`].
pub type BudgetEvidence = (usize, usize, usize, usize);

/// T19 core: the open-latency point at each scale plus the
/// budgeted-serve evidence at the large one — shared by the harness
/// table and the smoke test. Asserts the acceptance bars:
/// open latency flat in KB size (≤ `flat_factor`×), budgeted answers
/// byte-identical, resident never above the budget.
pub fn t19_measure(
    small: usize,
    large: usize,
    flat_factor: f64,
) -> (OpenPoint, OpenPoint, BudgetEvidence) {
    let small_snap = synthetic_kb_skewed(small, 7).snapshot().into_shared();
    let small_facts = small_snap.len();
    let small_dir = store_dir(&format!("t19-{small}"), small_snap);
    let open_small = t19_open_ms(&small_dir);
    std::fs::remove_dir_all(&small_dir).ok();

    let large_snap = synthetic_kb_skewed(large, 7).snapshot().into_shared();
    let large_facts = large_snap.len();
    let large_dir = store_dir(&format!("t19-{large}"), large_snap);
    let open_large = t19_open_ms(&large_dir);

    // The flatness bar: open cost is O(header), so a KB 100× bigger
    // must open within `flat_factor`× of the small one. A 50µs floor
    // on the denominator damps scheduler jitter at these sub-ms
    // latencies without loosening the bar meaningfully.
    assert!(
        open_large <= flat_factor * open_small.max(0.05),
        "lazy open is not flat in KB size: {large_facts} facts took {open_large:.3}ms \
         vs {open_small:.3}ms for {small_facts}"
    );

    // Budgeted serving: half the frames region, differential against
    // the unbudgeted open of the same directory.
    let budget = t19_frames_bytes(&large_dir) / 2;
    let oracle_store =
        SegmentStore::open_with(&large_dir, StoreOptions::default()).expect("oracle open");
    let oracle_view = oracle_store.view();
    let workload = t19_workload(&oracle_view);
    let want: Vec<usize> = workload.iter().map(|p| oracle_view.count_matching(p)).collect();
    drop((oracle_view, oracle_store));

    let options = StoreOptions { memory_budget: Some(budget), ..StoreOptions::default() };
    let store = SegmentStore::open_with(&large_dir, options).expect("budgeted open");
    let view = store.view();
    let meter = store.memory_budget();
    let mut peak = 0usize;
    for _ in 0..2 {
        // Two passes so re-faults after spills are exercised too.
        for (p, want_n) in workload.iter().zip(&want) {
            let got = view.count_matching(p);
            assert_eq!(got, *want_n, "budgeted count diverged for {p:?}");
            peak = peak.max(meter.resident_bytes());
        }
    }
    assert!(peak <= budget, "resident columns peaked at {peak} B over the {budget} B budget");
    let faults = meter.page_faults();
    let spills = meter.spills();
    assert!(faults > 0, "budgeted serving must fault columns in");
    assert!(spills > 0, "a half-frames budget must spill under the full workload");
    std::fs::remove_dir_all(&large_dir).ok();
    ((small_facts, open_small), (large_facts, open_large), (budget, peak, faults, spills))
}

/// T19: beyond-RAM paging — lazy open latency is flat in KB size, and
/// a store budgeted at half its frames region serves the same answers
/// while resident bytes stay under the cap.
pub fn t19() -> String {
    let ((small_facts, open_small), (large_facts, open_large), (budget, peak, faults, spills)) =
        t19_measure(10_000, 1_000_000, 3.0);
    let mut t = Table::new(&["facts", "lazy open ms", "vs 10k"]);
    t.row(vec![small_facts.to_string(), format!("{open_small:.3}"), "1.0x".into()]);
    t.row(vec![
        large_facts.to_string(),
        format!("{open_large:.3}"),
        format!("{:.1}x", open_large / open_small.max(0.05)),
    ]);
    format!(
        "T19 — beyond-RAM paging: lazy open is O(header), budgeted serving spills \
         instead of growing (min of {OPEN_ITERS} opens)\n{}\
         budgeted serve at {large_facts} facts: budget {budget} B (half the frames region), \
         peak resident {peak} B, {faults} faults, {spills} spills — answers byte-identical\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_corpus::CorpusConfig;

    #[test]
    fn cold_start_beats_reharvest_at_smoke_scale() {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let (facts, rebuild_ms, open_ms) = t16_measure(&corpus);
        assert!(facts > 0);
        assert!(
            rebuild_ms > open_ms,
            "opening segments must beat re-harvesting even at tiny scale \
             (rebuild {rebuild_ms:.1}ms vs open {open_ms:.3}ms)"
        );
    }

    #[test]
    fn cold_start_replays_into_an_identical_service() {
        let corpus = Corpus::generate(&CorpusConfig::tiny());
        let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
        let snap = out.kb.snapshot().into_shared();
        let oracle = ntriples::to_string(snap.as_ref()).expect("dump");
        let dir = store_dir("identity", Arc::clone(&snap));
        let store = SegmentStore::open(&dir).expect("open");
        let service = QueryService::from_view(&store.view());
        let recovered = ntriples::to_string(service.snapshot().as_ref()).expect("dump");
        assert_eq!(recovered, oracle, "cold-started service serves the same KB");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paging_bars_hold_at_smoke_scale() {
        // 5k vs 50k keeps the smoke run fast; the full 10k-vs-1M curve
        // (and the 3x flatness bar at that scale) runs in the harness.
        let ((small, _), (large, _), (budget, peak, faults, spills)) =
            t19_measure(5_000, 50_000, 3.0);
        assert!(small > 0 && large > small);
        assert!(peak <= budget);
        assert!(faults > 0 && spills > 0);
    }
}
