//! T10: the iPhone-vs-Galaxy-style tracking case study — weekly volume
//! and sentiment for the two rival product *lines*, resolved through
//! the harvested KB.
//!
//! Tracking operates at line granularity (all versions of "Lyra", all
//! versions of "Aero"): posts often use the version-ambiguous line stem,
//! and aggregating the family is exactly what the tutorial's
//! "iPhone vs Galaxy *families*" example calls for.

use kb_analytics::aggregate::TimeSeries;
use kb_analytics::exec::aggregate_parallel;
use kb_analytics::stream::from_corpus;
use kb_analytics::{ComparisonReport, StreamPost, Tracker};
use kb_corpus::{Corpus, EntityId, Rel};
use kb_harvest::pipeline::Method;
use kb_store::{KbRead, TermId};

use crate::setup::{build_ned, harvest_with};

/// Runs the tracking pipeline and returns the comparison report plus
/// simple fidelity metrics against the stream's gold mentions.
pub struct AnalyticsRun {
    /// The rendered report.
    pub report: ComparisonReport,
    /// Resolved tracked mentions (either line).
    pub resolved: usize,
    /// Gold tracked mentions in the stream (either line).
    pub gold_mentions: usize,
    /// Whether line B's measured trend slope exceeds line A's
    /// (the planted shape).
    pub b_ramps_faster: bool,
}

/// All product entities of the line that `flagship` belongs to
/// (products created by the same company).
fn line_members(corpus: &Corpus, flagship: EntityId) -> Vec<EntityId> {
    let world = &corpus.world;
    let creator = world
        .facts
        .iter()
        .find(|f| f.rel == Rel::Created && f.o == flagship)
        .map(|f| f.s)
        .expect("flagship has a creator");
    world.facts.iter().filter(|f| f.rel == Rel::Created && f.s == creator).map(|f| f.o).collect()
}

/// Executes T10.
pub fn run_t10(corpus: &Corpus, workers: usize) -> AnalyticsRun {
    let out = harvest_with(corpus, Method::Reasoning, workers);
    let kb = &out.kb;
    let ned = build_ned(corpus, kb);
    let world = &corpus.world;
    let (pa, pb) = world.rival_products;
    let line_a = line_members(corpus, pa);
    let line_b = line_members(corpus, pb);
    let term_of = |e: EntityId| kb.term(&world.entity(e).canonical);
    let terms_a: Vec<TermId> = line_a.iter().copied().filter_map(term_of).collect();
    let terms_b: Vec<TermId> = line_b.iter().copied().filter_map(term_of).collect();
    let mut tracked = terms_a.clone();
    tracked.extend(&terms_b);
    let tracker = Tracker::new(&ned, tracked);
    let posts: Vec<StreamPost> = corpus.posts.iter().map(from_corpus).collect();
    let series = aggregate_parallel(&tracker, kb, &posts, workers);

    let merge_line = |terms: &[TermId]| -> TimeSeries {
        let mut merged = TimeSeries::new();
        for t in terms {
            if let Some(s) = series.get(t) {
                merged.merge(s);
            }
        }
        merged
    };
    let sa = merge_line(&terms_a);
    let sb = merge_line(&terms_b);
    let resolved = sa.total_mentions() + sb.total_mentions();
    let gold_mentions = corpus
        .posts
        .iter()
        .flat_map(|p| &p.mentions)
        .filter(|m| line_a.contains(&m.entity) || line_b.contains(&m.entity))
        .count();
    let b_ramps_faster = sb.trend_slope() > sa.trend_slope();
    let line_name = |flagship: EntityId| world.entity(flagship).short.clone();
    let report = ComparisonReport::new(&line_name(pa), sa, &line_name(pb), sb);
    AnalyticsRun { report, resolved, gold_mentions, b_ramps_faster }
}

/// Renders T10, including burst detection over line B (the ramping
/// line produces late-stream bursts).
pub fn t10(corpus: &Corpus) -> String {
    use kb_analytics::burst::{detect_bursts, BurstConfig};
    let run = run_t10(corpus, 4);
    let bursts = detect_bursts(&run.report.series_b, &BurstConfig::default());
    let burst_line = if bursts.is_empty() {
        "no bursts detected on line B".to_string()
    } else {
        bursts
            .iter()
            .map(|b| format!("week {} ({} mentions, z={:.1})", b.bucket, b.mentions, b.z_score))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "T10 — rival product-line tracking (resolved {} of {} gold mentions; B ramps faster: {})\n{}\nbursts on line B: {}\n",
        run.resolved, run.gold_mentions, run.b_ramps_faster, run.report, burst_line
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn tracking_recovers_the_planted_shape() {
        let corpus = small_corpus(42);
        let run = run_t10(&corpus, 2);
        assert!(run.gold_mentions > 0);
        assert!(
            run.resolved as f64 >= run.gold_mentions as f64 * 0.7,
            "resolved {} of {}",
            run.resolved,
            run.gold_mentions
        );
        assert!(run.b_ramps_faster, "the planted B ramp must be recovered");
    }

    #[test]
    fn report_renders_weeks() {
        let corpus = small_corpus(42);
        let text = t10(&corpus);
        assert!(text.contains("week"));
        assert!(text.contains("totals"));
    }
}
