//! Minimal fixed-width table rendering for harness output.

/// A simple text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.876), "87.6%");
    }
}
