//! T3 (fact-extraction quality per method), F1 (precision/recall
//! trade-off curve) and T7 (temporal inference quality).

use std::collections::{HashMap, HashSet};

use kb_corpus::{gold, Corpus};
use kb_harvest::facts::extract::predicted_set;
use kb_harvest::pipeline::{evaluate_discovered, Method};
use kb_harvest::temporal;

use crate::setup::harvest_with;
use crate::table::{f3, Table};

/// One T3 row.
#[derive(Debug, Clone)]
pub struct FactsResult {
    /// Method label.
    pub method: String,
    /// Accepted fact count.
    pub accepted: usize,
    /// Quality vs non-seed gold facts.
    pub metrics: gold::PrF1,
}

/// Runs all methods over the corpus, plus the pattern-generalization
/// ablation on top of the reasoning stack.
pub fn run_t3(corpus: &Corpus) -> Vec<FactsResult> {
    let gold_facts = gold::gold_fact_strings(&corpus.world);
    let mut results: Vec<FactsResult> = [
        (Method::PatternsOnly, "patterns"),
        (Method::Statistical, "+ statistics"),
        (Method::Reasoning, "+ reasoning (MaxSat)"),
        (Method::FactorGraph, "factor graph"),
    ]
    .into_iter()
    .map(|(method, label)| {
        let out = harvest_with(corpus, method, 4);
        FactsResult {
            method: label.to_string(),
            accepted: out.accepted.len(),
            metrics: evaluate_discovered(&out.accepted, &gold_facts, &out.seeds),
        }
    })
    .collect();
    // Ablation: PrefixSpan pattern generalization. At the default 25%
    // seeds every template paraphrase is already learned exactly, so the
    // ablation runs at scarce seeds (4%) where unseen paraphrases exist.
    for (generalize, label) in [(false, "scarce seeds (4%)"), (true, "scarce + generalized")] {
        let cfg = kb_harvest::pipeline::HarvestConfig {
            method: Method::Reasoning,
            generalize,
            seed_fraction: 0.04,
            workers: 4,
            ..Default::default()
        };
        let out = kb_harvest::pipeline::harvest(corpus, &cfg)
            .expect("harvest pipeline failed on a benchmark corpus");
        results.push(FactsResult {
            method: label.to_string(),
            accepted: out.accepted.len(),
            metrics: evaluate_discovered(&out.accepted, &gold_facts, &out.seeds),
        });
    }
    results
}

/// Renders T3.
pub fn t3(corpus: &Corpus) -> String {
    let mut t = Table::new(&["method", "accepted", "precision", "recall", "F1"]);
    for r in run_t3(corpus) {
        t.row(vec![
            r.method,
            r.accepted.to_string(),
            f3(r.metrics.precision),
            f3(r.metrics.recall),
            f3(r.metrics.f1),
        ]);
    }
    format!("T3 — relational fact extraction: discovered-fact quality per method\n{}", t.render())
}

/// F1: precision/recall while sweeping the confidence threshold over
/// the statistically-scored candidates.
pub fn f1(corpus: &Corpus) -> String {
    let out = harvest_with(corpus, Method::Statistical, 4);
    let gold_facts = gold::gold_fact_strings(&corpus.world);
    let target: HashSet<_> = gold_facts.difference(&out.seeds).cloned().collect();
    let mut t = Table::new(&["threshold", "predicted", "precision", "recall", "F1"]);
    // Evidence aggregation (noisy-or) concentrates confidences near the
    // top, so the sweep is finer there.
    for threshold in [0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99] {
        let predicted: HashSet<_> = predicted_set(&out.candidates, threshold)
            .into_iter()
            .filter(|k| !out.seeds.contains(k))
            .collect();
        let m = gold::pr_f1(&predicted, &target);
        t.row(vec![
            format!("{threshold:.2}"),
            predicted.len().to_string(),
            f3(m.precision),
            f3(m.recall),
            f3(m.f1),
        ]);
    }
    format!("F1 — precision/recall vs confidence threshold (statistical scoring)\n{}", t.render())
}

/// T7 result: temporal inference quality on accepted facts.
pub fn run_t7(corpus: &Corpus) -> temporal::TemporalAccuracy {
    let out = harvest_with(corpus, Method::Reasoning, 4);
    // gold (s, rel, o) -> (begin, end)
    type GoldSpans = HashMap<(String, String, String), (Option<i32>, Option<i32>)>;
    let mut gold_spans: GoldSpans = HashMap::new();
    for f in &corpus.world.facts {
        if f.rel.temporal() {
            gold_spans.insert(
                (
                    corpus.world.entity(f.s).canonical.clone(),
                    f.rel.name().to_string(),
                    corpus.world.entity(f.o).canonical.clone(),
                ),
                (f.begin, f.end),
            );
        }
    }
    let rows: Vec<_> = out
        .accepted
        .iter()
        .filter_map(|c| {
            gold_spans.get(&c.key()).map(|&(gb, ge)| (temporal::infer_span(&c.hints), gb, ge))
        })
        .collect();
    temporal::score_spans(&rows)
}

/// Renders T7.
pub fn t7(corpus: &Corpus) -> String {
    let acc = run_t7(corpus);
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["temporal gold facts matched".into(), acc.total.to_string()]);
    t.row(vec!["spans inferred".into(), acc.inferred.to_string()]);
    t.row(vec!["coverage".into(), f3(acc.coverage())]);
    t.row(vec!["begin-year accuracy".into(), f3(acc.begin_accuracy())]);
    t.row(vec!["full-interval correct".into(), acc.end_correct.to_string()]);
    format!("T7 — temporal scoping of harvested facts\n{}", t.render())
}

/// T12: semi-structured (infobox) extraction vs text extraction vs
/// their union.
pub fn run_t12(corpus: &Corpus) -> Vec<FactsResult> {
    use kb_harvest::facts::infobox::harvest_infoboxes;
    use std::collections::HashMap;

    let gold_facts = gold::gold_fact_strings(&corpus.world);
    let text_out = harvest_with(corpus, Method::Reasoning, 4);
    // Surface → canonical resolver from article mention statistics
    // (the anchor-text channel — NOT the world's alias table).
    let mut surface_votes: HashMap<String, HashMap<String, usize>> = HashMap::new();
    for doc in corpus.all_docs() {
        for m in &doc.mentions {
            *surface_votes
                .entry(m.surface.clone())
                .or_default()
                .entry(corpus.world.entity(m.entity).canonical.clone())
                .or_insert(0) += 1;
        }
    }
    let resolve = |surface: &str| -> Option<String> {
        surface_votes.get(surface).and_then(|votes| {
            votes
                .iter()
                .max_by_key(|&(name, count)| (*count, std::cmp::Reverse(name.clone())))
                .map(|(name, _)| name.clone())
        })
    };
    let docs = corpus.all_docs();
    let canonical_of = |id: kb_corpus::EntityId| corpus.world.entity(id).canonical.as_str();
    let infobox = harvest_infoboxes(&docs, canonical_of, resolve);

    // Union: noisy-or merge by fact key.
    let mut union: HashMap<kb_harvest::facts::distant::FactKey, kb_harvest::CandidateFact> =
        HashMap::new();
    for c in text_out.accepted.iter().chain(infobox.iter()) {
        union
            .entry(c.key())
            .and_modify(|existing| {
                existing.confidence = 1.0 - (1.0 - existing.confidence) * (1.0 - c.confidence);
                existing.support += c.support;
            })
            .or_insert_with(|| c.clone());
    }
    let union_facts: Vec<kb_harvest::CandidateFact> = union.into_values().collect();

    let score = |label: &str, facts: &[kb_harvest::CandidateFact]| FactsResult {
        method: label.to_string(),
        accepted: facts.len(),
        metrics: evaluate_discovered(facts, &gold_facts, &text_out.seeds),
    };
    vec![
        score("text (reasoning)", &text_out.accepted),
        score("infobox only", &infobox),
        score("text + infobox", &union_facts),
    ]
}

/// Renders T12.
pub fn t12(corpus: &Corpus) -> String {
    let mut t = Table::new(&["channel", "accepted", "precision", "recall", "F1"]);
    for r in run_t12(corpus) {
        t.row(vec![
            r.method,
            r.accepted.to_string(),
            f3(r.metrics.precision),
            f3(r.metrics.recall),
            f3(r.metrics.f1),
        ]);
    }
    format!("T12 — semi-structured (infobox) vs text extraction\n{}", t.render())
}

/// F6: precision/recall per bootstrapping round (NELL-style coupled
/// learning), starting from a small seed slice.
pub fn f6(corpus: &Corpus) -> String {
    use kb_harvest::facts::bootstrap::{bootstrap, BootstrapConfig};
    use kb_harvest::facts::distant::stratified_seeds;
    use kb_harvest::facts::patterns::CollectConfig;
    use kb_harvest::facts::scoring::build_type_index;
    use kb_harvest::openie::OpenIeConfig;
    use kb_harvest::pipeline::analyze_parallel;
    use kb_harvest::taxonomy::{category, hearst, induce};

    let docs = corpus.all_docs();
    let world = &corpus.world;
    let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
    let (occurrences, _) = analyze_parallel(
        &docs,
        &canonical_of,
        &CollectConfig::default(),
        &OpenIeConfig::default(),
        4,
    )
    .expect("parallel analysis failed on a benchmark corpus");
    let cat = category::harvest_categories(&docs, canonical_of);
    let hearst_found = hearst::harvest_hearst(&docs, canonical_of);
    let instances = induce::merge_instances(&[(&cat.instances, 0.9), (&hearst_found, 0.7)]);
    let types = build_type_index(&instances, &cat.subclass_edges);

    let gold_facts = gold::gold_fact_strings(world);
    let initial = stratified_seeds(&gold_facts, 0.08);
    let mut t = Table::new(&["rounds", "seeds", "patterns", "candidates", "precision", "recall"]);
    for rounds in 1..=4usize {
        let cfg = BootstrapConfig { rounds, promote_threshold: 0.7, ..Default::default() };
        let out = bootstrap(&occurrences, &initial, &types, &cfg);
        let accepted: Vec<kb_harvest::CandidateFact> =
            out.candidates.iter().filter(|c| c.confidence >= 0.5).cloned().collect();
        // Evaluate against gold minus the *initial* seeds only — the
        // promotions are the system's own discoveries.
        let m = evaluate_discovered(&accepted, &gold_facts, &initial);
        let last = out.rounds.last().expect("at least one round");
        t.row(vec![
            out.rounds.len().to_string(),
            (last.seeds + last.promoted).to_string(),
            last.patterns.to_string(),
            accepted.len().to_string(),
            f3(m.precision),
            f3(m.recall),
        ]);
    }
    format!("F6 — NELL-style bootstrapping from {} initial seeds\n{}", initial.len(), t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn reasoning_and_statistics_beat_raw_patterns_on_precision() {
        let corpus = small_corpus(42);
        let results = run_t3(&corpus);
        let get = |m: &str| results.iter().find(|r| r.method.contains(m)).unwrap().metrics;
        let patterns = get("patterns");
        let stats = get("statistics");
        let reasoning = get("reasoning");
        assert!(stats.precision >= patterns.precision - 0.02);
        assert!(reasoning.precision >= patterns.precision - 0.02);
    }

    #[test]
    fn f1_curve_trades_precision_for_recall() {
        let corpus = small_corpus(42);
        let text = f1(&corpus);
        assert!(text.contains("0.3"));
        assert!(text.contains("0.99"));
        // Title + header + separator + 9 data rows.
        assert_eq!(text.lines().count(), 3 + 9);
    }

    #[test]
    fn t7_scores_temporal_facts() {
        let corpus = small_corpus(42);
        let acc = run_t7(&corpus);
        assert!(acc.total > 0, "some temporal facts must be matched");
        if acc.inferred > 0 {
            // "graduated from X in Y" hints carry the END year of the
            // studiedAt interval, a systematic begin-year hazard (as in
            // YAGO2); on the tiny corpus this caps accuracy around 0.5.
            assert!(acc.begin_accuracy() >= 0.4, "begin accuracy {}", acc.begin_accuracy());
        }
    }
}
