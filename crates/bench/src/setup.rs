//! Shared experiment fixtures: corpora, harvest runs, NED engines.

use kb_corpus::{Corpus, CorpusConfig, Doc};
use kb_harvest::pipeline::{harvest, HarvestConfig, HarvestOutput, Method};
use kb_ned::eval::GoldDoc;
use kb_ned::Ned;
use kb_store::KbRead;

/// The standard evaluation corpus for a seed.
pub fn standard_corpus(seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig::standard(seed))
}

/// A small corpus for timing-sensitive micro-experiments.
pub fn small_corpus(seed: u64) -> Corpus {
    let mut cfg = CorpusConfig::tiny();
    cfg.world.seed = seed;
    Corpus::generate(&cfg)
}

/// Runs the harvesting pipeline with the given method.
pub fn harvest_with(corpus: &Corpus, method: Method, workers: usize) -> HarvestOutput {
    let cfg = HarvestConfig { method, workers, ..Default::default() };
    harvest(corpus, &cfg).expect("harvest pipeline failed on a benchmark corpus")
}

/// Builds a NED engine over a harvested KB, using the corpus' article
/// mentions as anchor statistics.
pub fn build_ned<'kb, K: KbRead + ?Sized>(corpus: &Corpus, kb: &'kb K) -> Ned<'kb, K> {
    let mut ned = Ned::new(kb);
    for doc in corpus.all_docs() {
        for m in &doc.mentions {
            let canonical = &corpus.world.entity(m.entity).canonical;
            if let Some(term) = kb.term(canonical) {
                ned.add_anchor(&m.surface, term);
            }
        }
    }
    ned.finalize();
    ned
}

/// Converts corpus articles into NED gold documents (mentions whose
/// gold entity is unknown to the KB are skipped).
pub fn ned_gold_docs<'a, K: KbRead + ?Sized>(
    docs: &'a [Doc],
    corpus: &Corpus,
    kb: &K,
) -> Vec<GoldDoc<'a>> {
    docs.iter()
        .map(|d| GoldDoc {
            text: &d.text,
            mentions: d
                .mentions
                .iter()
                .filter_map(|m| {
                    kb.term(&corpus.world.entity(m.entity).canonical).map(|t| (m.start, m.end, t))
                })
                .collect(),
        })
        .filter(|g| !g.mentions.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_ned::Strategy;

    #[test]
    fn fixtures_compose() {
        let corpus = small_corpus(42);
        let out = harvest_with(&corpus, Method::Statistical, 2);
        assert!(!out.kb.is_empty());
        let ned = build_ned(&corpus, &out.kb);
        let gold = ned_gold_docs(&corpus.articles, &corpus, &out.kb);
        assert!(!gold.is_empty());
        let acc = kb_ned::evaluate(&ned, &gold, Strategy::Prior);
        assert!(acc.total > 0);
        assert!(acc.accuracy() > 0.3, "prior accuracy {}", acc.accuracy());
    }
}
