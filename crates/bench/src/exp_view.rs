//! T20 (standing-query maintenance): patching a materialized view with
//! a signed delta join vs re-executing the query from scratch on every
//! install. The workload replays the §4 rival-product case study as a
//! stream: a 100k-fact KB of posts mentioning two product families,
//! then a long run of small delta installs (new posts plus retractions
//! of old ones) against standing COUNT…GROUP BY and filtered-join
//! views. The claim under test: at 0.1% delta sizes, incremental
//! maintenance is ≥10× cheaper at p99 than full re-execution, while
//! producing byte-identical answers.

use std::sync::Arc;
use std::time::Instant;

use kb_query::{canonical_output, execute, QueryService};
use kb_store::{KbBuilder, KnowledgeBase};

use crate::table::Table;

/// The two standing views: mention totals per product (the case
/// study's headline chart), and the filtered join feeding the
/// per-window drill-down on one product.
pub const VIEW_QUERIES: [&str; 2] = [
    "SELECT ?prod COUNT(?post) AS ?n WHERE { ?post mentions ?prod } GROUP BY ?prod",
    "SELECT ?post ?d WHERE { ?post mentions Strato_1 . ?post postedOn ?d . \
     FILTER(?d != day_3) }",
];

/// The two `(subject, predicate, object)` triples planted per post —
/// its `mentions` and `postedOn` facts — kept so the streaming phase
/// can retract old posts.
pub type PlantedPost = [(String, String, String); 2];

/// Builds the rival-product KB: `posts` post entities, each mentioning
/// one of ten products (two five-product families) and stamped with a
/// day in a 90-day horizon — two facts per post, so `2 * posts + 10`
/// facts total. Returns the KB alongside the per-post triples so the
/// streaming phase can retract old posts.
pub fn rival_kb(posts: usize) -> (KnowledgeBase, Vec<PlantedPost>) {
    let mut kb = KnowledgeBase::new();
    let products: Vec<String> = (0..5)
        .map(|k| format!("Strato_{k}"))
        .chain((0..5).map(|k| format!("Nimbus_{k}")))
        .collect();
    for prod in &products {
        let brand = if prod.starts_with("Strato") { "Strato" } else { "Nimbus" };
        let (p, m, b) = (kb.intern(prod), kb.intern("madeBy"), kb.intern(brand));
        kb.add_triple(p, m, b);
    }
    let mut planted = Vec::with_capacity(posts);
    for i in 0..posts {
        let s = format!("post_{i}");
        let prod = products[i % products.len()].clone();
        let day = format!("day_{}", i % 90);
        let (si, pi) = (kb.intern(&s), kb.intern("mentions"));
        let oi = kb.intern(&prod);
        kb.add_triple(si, pi, oi);
        let (di, vi) = (kb.intern("postedOn"), kb.intern(&day));
        kb.add_triple(si, di, vi);
        planted.push([(s.clone(), "mentions".to_string(), prod), (s, "postedOn".to_string(), day)]);
    }
    (kb, planted)
}

/// One measured install: per-view patch latency (reported by the view
/// registry) vs full re-execution of the same query on the post-install
/// snapshot, plus the identity check between the two answers.
pub struct InstallSample {
    /// Summed standing-view patch latency reported by the registry.
    pub patch_us: u64,
    /// Wall-clock cost of re-executing both view queries from scratch.
    pub reexec_us: u64,
}

/// Streams `installs` deltas of `new_posts` fresh posts + `retracts`
/// retractions each into a service with both standing views registered,
/// measuring each install and asserting answer identity throughout.
/// Returns per-install samples summed over the views.
pub fn t20_measure(
    base_posts: usize,
    installs: usize,
    new_posts: usize,
    retracts: usize,
) -> Vec<InstallSample> {
    let (kb, planted) = rival_kb(base_posts);
    let service = QueryService::new(kb.snapshot().into_shared());
    let ids: Vec<_> = VIEW_QUERIES
        .iter()
        .map(|q| service.register_view(q).expect("standing view registers"))
        .collect();
    let plans: Vec<_> =
        VIEW_QUERIES.iter().map(|q| service.plan_for(q).expect("view query plans")).collect();

    let mut samples = Vec::with_capacity(installs);
    for r in 0..installs {
        let view = service.snapshot();
        let mut b = KbBuilder::new();
        for j in 0..new_posts {
            let s = format!("live_{r}_{j}");
            b.assert_str(&s, "mentions", &format!("Strato_{}", (r + j) % 5));
            b.assert_str(&s, "postedOn", &format!("day_{}", (r * new_posts + j) % 90));
        }
        // Retract the oldest still-live base posts' mention facts —
        // the case study's sliding window dropping expired posts.
        for j in 0..retracts {
            let idx = r * retracts + j;
            if let Some([(s, p, o), _]) = planted.get(idx) {
                b.retract_str(s, p, o);
            }
        }
        let delta = Arc::new(b.freeze_delta(&view));
        let updates = service.apply_delta_publishing(delta);
        let patch_us: u64 = updates.iter().map(|u| u.patch_us).sum();

        // Baseline: execute each view query from scratch over the new
        // snapshot. Parsing and planning are excluded (the plans are
        // reused), so the reported re-execution cost — and therefore
        // the speedup — is a lower bound.
        let after = service.snapshot();
        let t0 = Instant::now();
        let full: Vec<_> = plans
            .iter()
            .map(|p| canonical_output(p, &execute(p, after.as_ref()), after.as_ref()))
            .collect();
        let reexec_us = t0.elapsed().as_micros() as u64;

        for ((id, plan), want) in ids.iter().zip(&plans).zip(&full) {
            let got = service.view_result(*id).expect("view is registered");
            assert_eq!(
                got.render(after.as_ref()),
                want.render(after.as_ref()),
                "standing view diverged from re-execution at install {r} ({})",
                plan.explain().join("; "),
            );
        }
        samples.push(InstallSample { patch_us, reexec_us });
    }
    samples
}

fn p99(mut xs: Vec<u64>) -> u64 {
    assert!(!xs.is_empty());
    xs.sort_unstable();
    let idx = ((xs.len() as f64) * 0.99).ceil() as usize;
    xs[idx.saturating_sub(1).min(xs.len() - 1)]
}

/// T20: standing-view maintenance vs full re-execution on the
/// million-scale rival-product stream — 0.1% deltas against a
/// 100k-fact base, p99 over 40 installs, identity asserted on every
/// install.
pub fn t20() -> String {
    const BASE_POSTS: usize = 49_995; // 2 facts each + 10 brand facts ≈ 100k
    const INSTALLS: usize = 40;
    let samples = t20_measure(BASE_POSTS, INSTALLS, 40, 20);
    let patch_p99 = p99(samples.iter().map(|s| s.patch_us).collect());
    let reexec_p99 = p99(samples.iter().map(|s| s.reexec_us).collect());
    let patch_mean: f64 =
        samples.iter().map(|s| s.patch_us as f64).sum::<f64>() / samples.len() as f64;
    let reexec_mean: f64 =
        samples.iter().map(|s| s.reexec_us as f64).sum::<f64>() / samples.len() as f64;
    assert!(
        reexec_p99 >= 10 * patch_p99,
        "standing-view maintenance must be ≥10× cheaper than re-execution at p99 \
         (patch {patch_p99}µs, reexec {reexec_p99}µs)"
    );

    let mut t = Table::new(&[
        "base facts",
        "installs",
        "delta entries",
        "patch p99 µs",
        "reexec p99 µs",
        "p99 speedup",
        "mean speedup",
    ]);
    t.row(vec![
        (2 * BASE_POSTS + 10).to_string(),
        INSTALLS.to_string(),
        "100".to_string(),
        patch_p99.to_string(),
        reexec_p99.to_string(),
        format!("{:.0}x", reexec_p99 as f64 / patch_p99.max(1) as f64),
        format!("{:.0}x", reexec_mean / patch_mean.max(1.0)),
    ]);
    format!(
        "T20 — standing-query maintenance: delta patch vs full re-execution\n\
         (views: mention totals per product, filtered Strato_1 drill-down; \
         answers byte-identical on every install)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-scale T20: identity holds on every install and the patch
    /// path wins on average even at 10k facts (the harness asserts the
    /// ≥10× p99 bound at 100k).
    #[test]
    fn standing_views_track_reexecution_through_a_stream() {
        let samples = t20_measure(5_000, 6, 20, 10);
        assert_eq!(samples.len(), 6);
        let patch: u64 = samples.iter().map(|s| s.patch_us).sum();
        let reexec: u64 = samples.iter().map(|s| s.reexec_us).sum();
        assert!(
            patch < reexec,
            "patching should beat re-execution even at smoke scale ({patch}µs vs {reexec}µs)"
        );
    }

    #[test]
    fn p99_picks_the_tail() {
        assert_eq!(p99((1..=100).collect()), 99);
        assert_eq!(p99(vec![5]), 5);
        assert_eq!(p99(vec![3, 1, 2]), 3);
    }
}
