//! T4: Open IE yield and precision vs closed IE.

use std::collections::HashMap;

use kb_corpus::{Corpus, EntityId};
use kb_harvest::openie::{extract_open, relation_inventory, OpenFact, OpenIeConfig};
use kb_harvest::pipeline::Method;

use crate::setup::harvest_with;
use crate::table::{f3, Table};

/// Maps argument surface strings to world entities by alias lookup.
fn alias_map(corpus: &Corpus) -> HashMap<String, EntityId> {
    let mut map = HashMap::new();
    for e in &corpus.world.entities {
        for a in &e.aliases {
            // Ambiguous aliases resolve to the first owner; precision
            // estimation tolerates this (we check gold facts both ways).
            map.entry(a.to_lowercase()).or_insert(e.id);
        }
    }
    map
}

/// Whether an open extraction corresponds to *some* gold fact between
/// its two arguments (either direction, any relation) — the standard
/// proxy for Open IE precision without per-phrase gold.
pub fn is_supported(
    corpus: &Corpus,
    aliases: &HashMap<String, EntityId>,
    f: &OpenFact,
) -> Option<bool> {
    let a = aliases.get(&f.arg1.to_lowercase())?;
    let b = aliases.get(&f.arg2.to_lowercase())?;
    let supported =
        corpus.world.facts.iter().any(|g| (g.s == *a && g.o == *b) || (g.s == *b && g.o == *a));
    Some(supported)
}

/// T4 result.
#[derive(Debug, Clone)]
pub struct OpenIeResult {
    /// Open extractions produced.
    pub extractions: usize,
    /// Distinct normalized relation phrases.
    pub distinct_relations: usize,
    /// Precision over extractions whose args resolve to known entities.
    pub precision: f64,
    /// Fraction of extractions with both args resolvable.
    pub resolvable: f64,
    /// Closed-IE accepted facts (for the comparison row).
    pub closed_accepted: usize,
    /// Closed-IE precision (from T3's reasoning method).
    pub closed_precision: f64,
}

/// Runs T4.
pub fn run_t4(corpus: &Corpus) -> OpenIeResult {
    let docs = corpus.all_docs();
    let open = extract_open(&docs, &OpenIeConfig::default());
    let aliases = alias_map(corpus);
    let mut supported = 0usize;
    let mut resolvable = 0usize;
    for f in &open {
        match is_supported(corpus, &aliases, f) {
            Some(true) => {
                supported += 1;
                resolvable += 1;
            }
            Some(false) => resolvable += 1,
            None => {}
        }
    }
    let closed = harvest_with(corpus, Method::Reasoning, 4);
    let gold_facts = kb_corpus::gold::gold_fact_strings(&corpus.world);
    let closed_metrics =
        kb_harvest::pipeline::evaluate_discovered(&closed.accepted, &gold_facts, &closed.seeds);
    OpenIeResult {
        extractions: open.len(),
        distinct_relations: relation_inventory(&open).len(),
        precision: if resolvable == 0 { 0.0 } else { supported as f64 / resolvable as f64 },
        resolvable: if open.is_empty() { 0.0 } else { resolvable as f64 / open.len() as f64 },
        closed_accepted: closed.accepted.len(),
        closed_precision: closed_metrics.precision,
    }
}

/// Renders T4.
pub fn t4(corpus: &Corpus) -> String {
    let r = run_t4(corpus);
    let mut t = Table::new(&["system", "extractions", "distinct relations", "precision"]);
    t.row(vec![
        "Open IE (ReVerb-style)".into(),
        r.extractions.to_string(),
        r.distinct_relations.to_string(),
        f3(r.precision),
    ]);
    t.row(vec![
        "Closed IE (schema + reasoning)".into(),
        r.closed_accepted.to_string(),
        "10 (schema)".into(),
        f3(r.closed_precision),
    ]);
    format!(
        "T4 — Open IE vs closed IE (arg-resolvable extractions: {:.0}%)\n{}",
        r.resolvable * 100.0,
        t.render()
    )
}

/// Also expose the top relation phrases (qualitative inventory).
pub fn top_relations(corpus: &Corpus, k: usize) -> Vec<(String, usize)> {
    let docs = corpus.all_docs();
    let open = extract_open(&docs, &OpenIeConfig::default());
    relation_inventory(&open).into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn open_ie_yields_more_relations_but_less_precision_than_closed() {
        let corpus = small_corpus(42);
        let r = run_t4(&corpus);
        assert!(r.extractions > 0);
        assert!(r.distinct_relations > 10, "open IE should exceed the closed schema");
        assert!(r.precision > 0.3, "open precision {}", r.precision);
        assert!(
            r.closed_precision >= r.precision - 0.05,
            "closed {} should generally beat open {}",
            r.closed_precision,
            r.precision
        );
    }

    #[test]
    fn top_relations_include_template_verbs() {
        let corpus = small_corpus(42);
        let top = top_relations(&corpus, 15);
        assert!(!top.is_empty());
        let phrases: Vec<&str> = top.iter().map(|(p, _)| p.as_str()).collect();
        assert!(
            phrases.iter().any(|p| p.contains("found") || p.contains("born") || p.contains("work")),
            "expected template verbs in {phrases:?}"
        );
    }
}
