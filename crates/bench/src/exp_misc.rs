//! T8 (commonsense mining) and T9 (multilingual label harvesting).

use kb_corpus::lexicon::CONCEPTS;
use kb_corpus::{Corpus, Doc};
use kb_harvest::commonsense::{mine_commonsense, property_precision_at_k, CommonsenseConfig};
use kb_harvest::multilingual::{harvest_labels, links_from_world, MultilingualConfig};
use kb_store::{KbRead, KnowledgeBase};

use crate::table::{f3, Table};

/// Gold check for a mined property.
fn property_gold(concept: &str, prop: &str) -> bool {
    CONCEPTS.iter().any(|c| c.name == concept && c.properties.contains(&prop))
}

/// Gold check for a mined part.
fn part_gold(part: &str, whole: &str) -> bool {
    CONCEPTS.iter().any(|c| c.name == whole && c.parts.contains(&part))
}

/// Renders T8.
pub fn t8(corpus: &Corpus) -> String {
    let docs: Vec<&Doc> = corpus.essays.iter().collect();
    let (props, parts) = mine_commonsense(&docs, &CommonsenseConfig::default());
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["mined properties".into(), props.len().to_string()]);
    for k in [5usize, 10, 25] {
        t.row(vec![
            format!("property precision@{k}"),
            f3(property_precision_at_k(&props, k, property_gold)),
        ]);
    }
    let part_correct = parts.iter().filter(|p| part_gold(&p.part, &p.whole)).count();
    let gold_parts: usize = CONCEPTS.iter().map(|c| c.parts.len()).sum();
    t.row(vec!["mined parts".into(), parts.len().to_string()]);
    t.row(vec![
        "part precision".into(),
        f3(if parts.is_empty() { 0.0 } else { part_correct as f64 / parts.len() as f64 }),
    ]);
    t.row(vec!["part recall".into(), f3(part_correct as f64 / gold_parts as f64)]);
    format!("T8 — commonsense property and part-whole mining\n{}", t.render())
}

/// One T9 row.
#[derive(Debug, Clone)]
pub struct MultilingualRow {
    /// Filter on?
    pub filtered: bool,
    /// Labels accepted.
    pub accepted: usize,
    /// Accepted labels that match the uncorrupted gold.
    pub accuracy: f64,
    /// Coverage of gold links.
    pub coverage: f64,
}

/// Runs the multilingual harvest with noisy links, filtered vs not.
pub fn run_t9(corpus: &Corpus) -> Vec<MultilingualRow> {
    let world = &corpus.world;
    let noisy = links_from_world(world, 4);
    let gold: std::collections::HashSet<(String, String, String)> =
        links_from_world(world, 0).into_iter().map(|l| (l.entity, l.lang, l.label)).collect();
    [false, true]
        .into_iter()
        .map(|filtered| {
            let mut kb = KnowledgeBase::new();
            let stats = harvest_labels(&mut kb, &noisy, &MultilingualConfig::default(), filtered);
            let mut correct = 0usize;
            for (term, lang, label) in kb.labels.iter() {
                let entity = kb.resolve(term).unwrap_or_default().to_string();
                let lang = kb.labels.lang_tag(lang).unwrap_or_default().to_string();
                if gold.contains(&(entity, lang, label.to_string())) {
                    correct += 1;
                }
            }
            MultilingualRow {
                filtered,
                accepted: stats.accepted,
                accuracy: correct as f64 / stats.accepted.max(1) as f64,
                coverage: correct as f64 / gold.len().max(1) as f64,
            }
        })
        .collect()
}

/// Renders T9.
pub fn t9(corpus: &Corpus) -> String {
    let mut t = Table::new(&["consistency filter", "accepted", "accuracy", "gold coverage"]);
    for r in run_t9(corpus) {
        t.row(vec![
            if r.filtered { "on" } else { "off" }.to_string(),
            r.accepted.to_string(),
            f3(r.accuracy),
            f3(r.coverage),
        ]);
    }
    format!("T9 — multilingual label harvesting from noisy interlanguage links\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn t8_finds_high_precision_properties() {
        let corpus = small_corpus(42);
        let text = t8(&corpus);
        assert!(text.contains("precision@5"));
        // Extract and check the precision@5 line numerically.
        let docs: Vec<&Doc> = corpus.essays.iter().collect();
        let (props, _) = mine_commonsense(&docs, &CommonsenseConfig::default());
        assert!(property_precision_at_k(&props, 5, property_gold) >= 0.8);
    }

    #[test]
    fn t9_filter_trades_coverage_for_accuracy() {
        let corpus = small_corpus(42);
        let rows = run_t9(&corpus);
        let off = rows.iter().find(|r| !r.filtered).unwrap();
        let on = rows.iter().find(|r| r.filtered).unwrap();
        assert!(on.accuracy > off.accuracy, "filter must raise accuracy");
        assert!(on.accepted <= off.accepted);
        assert!(on.coverage > 0.5);
    }
}
