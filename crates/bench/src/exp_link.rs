//! T6 (blocking + matcher quality) and F5 (constrained clustering).

use std::collections::HashSet;
use std::time::Instant;

use kb_corpus::gold::{linkage_dump, pr_f1, LinkageDump};
use kb_corpus::Corpus;
use kb_link::blocking::{blocking_quality, candidate_pairs, Blocking};
use kb_link::cluster::cluster_with_constraints;
use kb_link::logreg::{LogRegMatcher, TrainConfig};
use kb_link::record::{from_corpus, Record};
use kb_link::rules::{rule_match, RuleConfig};

use crate::table::{f3, Table};

/// The linkage fixture: records plus gold pairs.
pub struct LinkFixture {
    /// All records from both sources.
    pub records: Vec<Record>,
    /// Gold duplicate pairs.
    pub gold: HashSet<(u32, u32)>,
}

/// Builds the fixture from a corpus world.
pub fn fixture(corpus: &Corpus, seed: u64) -> LinkFixture {
    let LinkageDump { records, gold_pairs } = linkage_dump(&corpus.world, seed);
    LinkFixture { records: records.iter().map(from_corpus).collect(), gold: gold_pairs }
}

/// One blocking row of T6.
#[derive(Debug, Clone)]
pub struct BlockingRow {
    /// Strategy label.
    pub strategy: String,
    /// Candidate pairs.
    pub pairs: usize,
    /// Pair recall.
    pub recall: f64,
    /// Wall time in milliseconds.
    pub millis: f64,
}

/// Measures the blocking strategies.
pub fn run_blocking(fix: &LinkFixture) -> Vec<BlockingRow> {
    [
        (Blocking::Full, "full cross product"),
        (Blocking::Token, "token blocking"),
        (Blocking::SortedNeighborhood(4), "sorted neighborhood w=4"),
        (Blocking::SortedNeighborhood(8), "sorted neighborhood w=8"),
    ]
    .into_iter()
    .map(|(strategy, label)| {
        let t0 = Instant::now();
        let pairs = candidate_pairs(&fix.records, strategy);
        let millis = t0.elapsed().as_secs_f64() * 1e3;
        let q = blocking_quality(&pairs, &fix.gold);
        BlockingRow { strategy: label.to_string(), pairs: q.pairs, recall: q.pair_recall, millis }
    })
    .collect()
}

/// Matcher quality over token-blocked candidates with a train/test
/// split on the gold labels.
#[derive(Debug, Clone)]
pub struct MatcherRow {
    /// Matcher label.
    pub matcher: String,
    /// Pair-level precision/recall/F1 on the held-out pairs.
    pub metrics: kb_corpus::gold::PrF1,
}

/// Runs rule vs learned matcher.
pub fn run_matchers(fix: &LinkFixture) -> Vec<MatcherRow> {
    let candidates = candidate_pairs(&fix.records, Blocking::Token);
    let by_id: std::collections::HashMap<u32, &Record> =
        fix.records.iter().map(|r| (r.id, r)).collect();
    // Split candidate pairs deterministically: even-indexed train,
    // odd-indexed test.
    let mut train: Vec<(&Record, &Record, bool)> = Vec::new();
    let mut test: Vec<(u32, u32)> = Vec::new();
    for (i, &(a, b)) in candidates.iter().enumerate() {
        let label = fix.gold.contains(&(a, b));
        if i % 2 == 0 {
            train.push((by_id[&a], by_id[&b], label));
        } else {
            test.push((a, b));
        }
    }
    let test_gold: HashSet<(u32, u32)> =
        test.iter().copied().filter(|p| fix.gold.contains(p)).collect();
    let model = LogRegMatcher::train(&train, &TrainConfig::default());
    let rule_cfg = RuleConfig::default();

    let eval = |name: &str, decide: &dyn Fn(&Record, &Record) -> bool| -> MatcherRow {
        let predicted: HashSet<(u32, u32)> =
            test.iter().copied().filter(|&(a, b)| decide(by_id[&a], by_id[&b])).collect();
        MatcherRow { matcher: name.to_string(), metrics: pr_f1(&predicted, &test_gold) }
    };
    vec![
        eval("rule matcher", &|a, b| rule_match(a, b, &rule_cfg)),
        eval("logistic regression", &|a, b| model.matches(a, b)),
    ]
}

/// Renders T6.
pub fn t6(corpus: &Corpus) -> String {
    let fix = fixture(corpus, 99);
    let mut t = Table::new(&["blocking", "pairs", "pair recall", "ms"]);
    for r in run_blocking(&fix) {
        t.row(vec![r.strategy, r.pairs.to_string(), f3(r.recall), format!("{:.1}", r.millis)]);
    }
    let mut m = Table::new(&["matcher", "precision", "recall", "F1"]);
    for r in run_matchers(&fix) {
        m.row(vec![r.matcher, f3(r.metrics.precision), f3(r.metrics.recall), f3(r.metrics.f1)]);
    }
    format!(
        "T6 — entity linkage: blocking ({} records, {} gold pairs)\n{}\nmatchers on held-out token-blocked pairs\n{}",
        fix.records.len(),
        fix.gold.len(),
        t.render(),
        m.render()
    )
}

/// F5: clustering with vs without constraint checking.
pub fn f5(corpus: &Corpus) -> String {
    let fix = fixture(corpus, 99);
    let candidates = candidate_pairs(&fix.records, Blocking::Token);
    let by_id: std::collections::HashMap<u32, &Record> =
        fix.records.iter().map(|r| (r.id, r)).collect();
    let rule_cfg = RuleConfig::default();
    let matched: Vec<(u32, u32)> = candidates
        .into_iter()
        .filter(|&(a, b)| rule_match(by_id[&a], by_id[&b], &rule_cfg))
        .collect();
    let mut t = Table::new(&["mode", "implied pairs", "precision", "recall", "refused merges"]);
    for (label, constrained) in [("unconstrained closure", false), ("constrained closure", true)] {
        let clusters = cluster_with_constraints(&fix.records, &matched, constrained);
        let implied = clusters.implied_pairs();
        // Evaluate only cross-source implications against gold.
        let predicted: HashSet<(u32, u32)> = implied
            .into_iter()
            .filter(|&(a, b)| by_id[&a].source != by_id[&b].source)
            .map(|(a, b)| if by_id[&a].source == 0 { (a, b) } else { (b, a) })
            .collect();
        let m = pr_f1(&predicted, &fix.gold);
        t.row(vec![
            label.to_string(),
            predicted.len().to_string(),
            f3(m.precision),
            f3(m.recall),
            clusters.refused_merges.to_string(),
        ]);
    }
    format!("F5 — sameAs closure with and without constraint checking\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn blocking_prunes_with_high_recall() {
        let corpus = small_corpus(42);
        let fix = fixture(&corpus, 99);
        let rows = run_blocking(&fix);
        let full = rows.iter().find(|r| r.strategy.contains("full")).unwrap();
        let token = rows.iter().find(|r| r.strategy.contains("token")).unwrap();
        assert!(token.pairs * 2 < full.pairs, "token {} vs full {}", token.pairs, full.pairs);
        assert!(token.recall > 0.9, "token recall {}", token.recall);
        assert!((full.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learned_matcher_is_at_least_competitive() {
        let corpus = small_corpus(42);
        let fix = fixture(&corpus, 99);
        let rows = run_matchers(&fix);
        let rule = rows.iter().find(|r| r.matcher.contains("rule")).unwrap();
        let learned = rows.iter().find(|r| r.matcher.contains("logistic")).unwrap();
        assert!(
            learned.metrics.f1 >= rule.metrics.f1 - 0.05,
            "learned {} vs rule {}",
            learned.metrics.f1,
            rule.metrics.f1
        );
        assert!(learned.metrics.f1 > 0.6, "learned F1 {}", learned.metrics.f1);
    }

    #[test]
    fn constrained_clustering_never_reduces_precision() {
        let corpus = small_corpus(42);
        let text = f5(&corpus);
        assert!(text.contains("constrained closure"));
    }
}
