//! T11: Horn-rule mining over the harvested KB and rule-based
//! completion precision.

use std::collections::HashSet;

use kb_corpus::{gold, Corpus};
use kb_harvest::pipeline::Method;
use kb_harvest::rules::{apply_rules, mine_rules, Rule, RuleConfig};

use crate::setup::harvest_with;
use crate::table::{f3, Table};

/// T11 outcome.
pub struct RulesResult {
    /// Mined rules (ranked).
    pub rules: Vec<Rule>,
    /// Completion predictions (facts not in the KB).
    pub predictions: usize,
    /// Predictions that are gold facts.
    pub correct: usize,
}

/// Mines rules on the harvested KB and scores the completion step.
pub fn run_t11(corpus: &Corpus) -> RulesResult {
    let out = harvest_with(corpus, Method::Reasoning, 4);
    let cfg = RuleConfig {
        min_support: 5,
        min_pca_confidence: 0.6,
        min_std_confidence: 0.4,
        ..Default::default()
    };
    let rules = mine_rules(&out.kb, &cfg);
    let predictions = apply_rules(&out.kb, &rules, &cfg);
    let gold_facts = gold::gold_fact_strings(&corpus.world);
    let gold_keys: HashSet<(String, String, String)> = gold_facts;
    let correct = predictions
        .iter()
        .filter(|p| gold_keys.contains(&(p.subject.clone(), p.relation.clone(), p.object.clone())))
        .count();
    RulesResult { rules, predictions: predictions.len(), correct }
}

/// Renders T11.
pub fn t11(corpus: &Corpus) -> String {
    let r = run_t11(corpus);
    let mut out = String::from("T11 — AMIE-style rule mining on the harvested KB\n");
    out.push_str("top mined rules:\n");
    for rule in r.rules.iter().take(8) {
        out.push_str(&format!("  {rule}\n"));
    }
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["rules mined".into(), r.rules.len().to_string()]);
    t.row(vec!["completion predictions".into(), r.predictions.to_string()]);
    t.row(vec![
        "completion precision".into(),
        f3(if r.predictions == 0 { 0.0 } else { r.correct as f64 / r.predictions as f64 }),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;
    use kb_harvest::rules::RuleShape;

    #[test]
    fn expected_world_regularities_are_mined() {
        let corpus = small_corpus(42);
        let r = run_t11(&corpus);
        assert!(!r.rules.is_empty(), "no rules mined");
        // Marriage symmetry must surface (it holds by construction).
        assert!(
            r.rules.iter().any(|rule| rule.shape == RuleShape::Inverse
                && rule.body == vec!["marriedTo"]
                && rule.head == "marriedTo"),
            "marriage symmetry not mined: {:?}",
            r.rules.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn completion_predictions_are_mostly_correct() {
        let corpus = small_corpus(42);
        let r = run_t11(&corpus);
        if r.predictions >= 5 {
            let precision = r.correct as f64 / r.predictions as f64;
            assert!(precision > 0.5, "completion precision {precision}");
        }
    }

    #[test]
    fn renders() {
        let corpus = small_corpus(42);
        let text = t11(&corpus);
        assert!(text.contains("rules mined"));
        assert!(text.contains("completion precision"));
    }
}
