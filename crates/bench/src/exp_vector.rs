//! T17 — compressed, vectorized batch execution: columnar batch scan
//! throughput against the tuple iterator, and the memory footprint of
//! the compressed permutation indexes.
//!
//! The harness asserts the PR's acceptance bars inline, like T15/T16:
//! at 100k facts the batch path must scan F4/F8-style workloads ≥2×
//! faster than tuple-at-a-time, and the frame-compressed indexes must
//! undercut the uncompressed sorted-array layout by ≥30%.

use std::sync::Arc;
use std::time::Instant;

use kb_store::{
    KbBuilder, KbRead, KbReadBatch, PairBatch, SegmentedSnapshot, TripleBatch, TriplePattern,
};

use crate::exp_kb::synthetic_kb;
use crate::exp_query::synthetic_kb_skewed;
use crate::table::Table;

/// Times `f` until ≥200ms elapsed (at least two iterations), returning
/// (million rows per second, rows per iteration).
fn mrows_per_sec(mut f: impl FnMut() -> usize) -> (f64, usize) {
    let rows = f(); // warmup, and the per-iteration row count
    let t0 = Instant::now();
    let mut iters = 0usize;
    while iters < 2 || t0.elapsed().as_millis() < 200 {
        let r = f();
        assert_eq!(r, rows, "non-deterministic scan while timing");
        iters += 1;
    }
    ((rows * iters) as f64 / t0.elapsed().as_secs_f64() / 1e6, rows)
}

/// Tuple-at-a-time scan over every pattern: the pre-vectorization hot
/// path. Sums subject ids so the compiler cannot skip the decode.
pub fn tuple_scan<K: KbRead + ?Sized>(kb: &K, pats: &[TriplePattern]) -> usize {
    let mut rows = 0usize;
    let mut sum = 0u64;
    for pat in pats {
        for f in kb.matching_iter(pat) {
            rows += 1;
            sum = sum.wrapping_add(f.triple.s.0 as u64);
        }
    }
    std::hint::black_box(sum);
    rows
}

/// Columnar batch scan over the same patterns.
pub fn batch_scan<K: KbRead + ?Sized>(kb: &K, pats: &[TriplePattern]) -> usize {
    let mut rows = 0usize;
    let mut sum = 0u64;
    let mut tb = TripleBatch::new();
    for pat in pats {
        let mut mb = kb.matching_batches(pat);
        while mb.next_batch(&mut tb) {
            rows += tb.len();
            for id in &tb.s {
                sum = sum.wrapping_add(id.0 as u64);
            }
        }
    }
    std::hint::black_box(sum);
    rows
}

/// The three scan workloads at one size: F4-style per-predicate range
/// scans on the uniform KB, the F8 skew-dominant predicate, and a full
/// unbound scan. Returns `(label, patterns, snapshot)` triples.
fn workloads(n: usize) -> Vec<(String, Vec<TriplePattern>, kb_store::KbSnapshot)> {
    let uniform = synthetic_kb(n, 7).snapshot();
    let rel_pats: Vec<TriplePattern> = (0..32)
        .filter_map(|i| uniform.term(&format!("rel_{i}")))
        .map(TriplePattern::with_p)
        .collect();
    let skewed = synthetic_kb_skewed(n, 7).snapshot();
    let big = TriplePattern::with_p(skewed.term("rel_big").expect("skewed KB has rel_big"));
    vec![
        ("predicate scans (F4)".into(), rel_pats, uniform.clone()),
        ("skewed rel_big scan (F8)".into(), vec![big], skewed),
        ("full scan".into(), vec![TriplePattern::any()], uniform),
    ]
}

/// T17: batch vs tuple scan throughput, compressed index memory, and
/// informational segmented / path-join rows.
pub fn t17() -> String {
    let mut scans = Table::new(&[
        "facts",
        "workload",
        "tuple Mrows/s",
        "batch Mrows/s",
        "speedup",
        "rows/scan",
    ]);
    let mut mem = Table::new(&["facts", "entries", "frames", "compressed KiB", "raw KiB", "saved"]);
    for &n in &[100_000usize, 1_000_000] {
        for (label, pats, snap) in workloads(n) {
            let (tuple, rows_t) = mrows_per_sec(|| tuple_scan(&snap, &pats));
            let (batch, rows_b) = mrows_per_sec(|| batch_scan(&snap, &pats));
            assert_eq!(rows_t, rows_b, "{label}: batch and tuple scans disagree on rows");
            let speedup = batch / tuple;
            if n == 100_000 {
                assert!(
                    speedup >= 2.0,
                    "batch scan must be ≥2× tuple-at-a-time on `{label}` at 100k facts \
                     (tuple {tuple:.1} Mrows/s, batch {batch:.1} Mrows/s)"
                );
            }
            scans.row(vec![
                n.to_string(),
                label,
                format!("{tuple:.1}"),
                format!("{batch:.1}"),
                format!("{speedup:.1}x"),
                rows_t.to_string(),
            ]);
        }
        let snap = synthetic_kb(n, 7).snapshot();
        let st = snap.index_stats();
        if n == 100_000 {
            assert!(
                st.saved_ratio() >= 0.30,
                "compressed frames must save ≥30% of the raw permutation layout at 100k facts \
                 (compressed {} B, raw {} B)",
                st.compressed_bytes,
                st.raw_bytes
            );
        }
        mem.row(vec![
            n.to_string(),
            st.entries.to_string(),
            st.frames.to_string(),
            format!("{:.0}", st.compressed_bytes as f64 / 1024.0),
            format!("{:.0}", st.raw_bytes as f64 / 1024.0),
            format!("{:.0}%", st.saved_ratio() * 100.0),
        ]);
    }

    // Informational: the segmented merge and the path join fall back to
    // tuple merging inside the batch API — chunking must not cost
    // anything, but no splice speedup is expected either.
    let mut extra = Table::new(&["view", "workload", "tuple Mrows/s", "batch Mrows/s"]);
    let base = synthetic_kb(80_000, 7).snapshot().into_shared();
    let mut seg = SegmentedSnapshot::from_base(base);
    for d in 0..4 {
        let mut b = KbBuilder::new();
        for j in 0..5_000 {
            b.assert_str(&format!("dx_{d}_{j}"), &format!("rel_{}", j % 32), &format!("dy_{j}"));
        }
        seg = seg.with_delta(Arc::new(b.freeze_delta(&seg)));
    }
    let pats = [TriplePattern::any()];
    let (seg_tuple, _) = mrows_per_sec(|| tuple_scan(&seg, &pats));
    let (seg_batch, _) = mrows_per_sec(|| batch_scan(&seg, &pats));
    extra.row(vec![
        "4-delta stack (100k)".into(),
        "full scan".into(),
        format!("{seg_tuple:.1}"),
        format!("{seg_batch:.1}"),
    ]);
    let snap = synthetic_kb(100_000, 7).snapshot();
    let (r0, r1) = (snap.term("rel_0").expect("rel_0"), snap.term("rel_1").expect("rel_1"));
    let (pj_tuple, _) = mrows_per_sec(|| {
        let mut sum = 0u64;
        let mut rows = 0usize;
        for (x, y) in snap.path_join_iter(r0, r1) {
            rows += 1;
            sum = sum.wrapping_add(x.0 as u64 ^ y.0 as u64);
        }
        std::hint::black_box(sum);
        rows
    });
    let (pj_batch, _) = mrows_per_sec(|| {
        let mut sum = 0u64;
        let mut rows = 0usize;
        let mut pb = PairBatch::new();
        let mut it = snap.path_join_batches(r0, r1);
        while it.next_batch(&mut pb) {
            rows += pb.len();
            for (x, y) in pb.a.iter().zip(&pb.b) {
                sum = sum.wrapping_add(x.0 as u64 ^ y.0 as u64);
            }
        }
        std::hint::black_box(sum);
        rows
    });
    extra.row(vec![
        "monolithic (100k)".into(),
        "path join rel_0 ⋈ rel_1".into(),
        format!("{pj_tuple:.1}"),
        format!("{pj_batch:.1}"),
    ]);

    format!(
        "T17 — vectorized batch execution: scan throughput and compressed-index memory\n{}\n\
         permutation-index memory (frame-compressed vs raw sorted arrays)\n{}\n\
         fallback paths (informational — tuple merge inside the batch API)\n{}",
        scans.render(),
        mem.render(),
        extra.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_and_tuple_scans_agree_at_smoke_scale() {
        let snap = synthetic_kb(5_000, 3).snapshot();
        let pats = [TriplePattern::any(), TriplePattern::with_p(snap.term("rel_0").unwrap())];
        assert_eq!(tuple_scan(&snap, &pats), batch_scan(&snap, &pats));
        assert!(tuple_scan(&snap, &pats) > 5_000, "full + rel_0 scans cover the KB");
    }

    #[test]
    fn compression_saves_memory_at_smoke_scale() {
        // The harness asserts ≥30% at 100k; at 5k the structure alone
        // must already be winning, not losing.
        let snap = synthetic_kb(5_000, 3).snapshot();
        let st = snap.index_stats();
        assert!(st.compressed_bytes > 0);
        assert!(st.compressed_bytes < st.raw_bytes, "frames should beat the raw layout: {st:?}");
    }
}
