//! T18 (partitioned serving under overload): the saturation curve of
//! the scatter-gather router with admission control — throughput and
//! shed rate vs offered load at 1/2/4 partitions.
//!
//! The offered-load schedule is driven by a [`ManualClock`], so the
//! token-bucket arithmetic — and therefore the shed column — is exactly
//! reproducible: below the admission rate nothing sheds; past the knee
//! the bucket drains and the excess is refused with typed rejections,
//! never queued and never panicking. Wall-clock throughput is reported
//! for color but not asserted.

use std::time::Instant;

use kb_obs::{ManualClock, Registry};
use kb_serve::{AdmissionConfig, KbRouter, ServeError};

use crate::exp_query::synthetic_kb_skewed;
use crate::table::Table;

/// The per-tenant admission rate (requests/second of simulated time).
const RATE: f64 = 400.0;
/// Token-bucket burst capacity.
const BURST: f64 = 32.0;
/// Simulated wall time per load level.
const SIM_SECS: u64 = 5;

pub fn t18() -> String {
    let snap = synthetic_kb_skewed(100_000, 7).into_snapshot().into_shared();
    let mut t = Table::new(&[
        "partitions",
        "offered rps",
        "requests",
        "served",
        "shed",
        "shed %",
        "routed single",
        "scattered",
        "wall req/s",
    ]);
    for &partitions in &[1usize, 2, 4] {
        for &offered in &[100u64, 200, 400, 800, 1600] {
            let clock = ManualClock::shared(0);
            let registry = Registry::with_clock(clock.clone());
            let config = AdmissionConfig {
                rate_per_sec: Some(RATE),
                burst: BURST,
                queue_depth: 64,
                ..Default::default()
            };
            let router = KbRouter::with_config(snap.clone(), partitions, config, &registry);
            let total = offered * SIM_SECS;
            // Arrivals are evenly spaced: each request advances the
            // simulated clock by its inter-arrival gap, refilling the
            // bucket by RATE/offered tokens.
            let gap_micros = 1_000_000 / offered;
            let (mut served, mut shed) = (0u64, 0u64);
            let t0 = Instant::now();
            for i in 0..total {
                clock.advance(gap_micros);
                // 7:1 cheap subject-bound probes (cached per replica) to
                // scatter queries over the rare relation (planned fresh
                // over the merged view each time).
                let q = if i % 8 == 7 {
                    "?x rel_rare ?y".to_string()
                } else {
                    format!("entity_{} rel_big ?o", i % 64)
                };
                match router.query(&q) {
                    Ok(_) => served += 1,
                    Err(ServeError::Overloaded(_)) => shed += 1,
                    Err(e) => panic!("T18 query failed outright: {e}"),
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            // The knee is the admission rate: below it the bucket
            // refills at least one token per arrival and nothing sheds;
            // at 2x and beyond the deficit is structural.
            if (offered as f64) <= RATE {
                assert_eq!(shed, 0, "{offered} rps is below the {RATE} rps knee");
            }
            if (offered as f64) >= 2.0 * RATE {
                assert!(shed > 0, "{offered} rps must shed past the {RATE} rps knee");
            }
            assert_eq!(served + shed, total, "every request is answered or refused");
            t.row(vec![
                partitions.to_string(),
                offered.to_string(),
                total.to_string(),
                served.to_string(),
                shed.to_string(),
                format!("{:.1}", 100.0 * shed as f64 / total as f64),
                registry.counter("serve.routed_single").get().to_string(),
                registry.counter("serve.scattered").get().to_string(),
                format!("{:.0}", total as f64 / wall),
            ]);
        }
    }
    format!(
        "T18 — partitioned serving saturation (admission {RATE} rps, burst {BURST}, \
         {SIM_SECS}s simulated per level, deterministic manual clock)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t18_sheds_exactly_at_the_knee() {
        let out = t18();
        assert!(out.contains("T18"), "table header present");
    }
}
