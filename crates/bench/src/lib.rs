//! # kb-bench
//!
//! The experiment suite: one function per table/figure defined in
//! DESIGN.md, shared between the `harness` binary (which prints every
//! table) and the Criterion benches (which time the hot paths).
//!
//! Every experiment is deterministic: same seed, same numbers.

pub mod exp_analytics;
pub mod exp_facts;
pub mod exp_kb;
pub mod exp_link;
pub mod exp_misc;
pub mod exp_ned;
pub mod exp_openie;
pub mod exp_query;
pub mod exp_rules;
pub mod exp_scale;
pub mod exp_segment;
pub mod exp_serve;
pub mod exp_store;
pub mod exp_taxonomy;
pub mod exp_vector;
pub mod exp_view;
pub mod setup;
pub mod table;

/// The seed every harness experiment uses.
pub const HARNESS_SEED: u64 = 2014;
