//! T5 (NED accuracy per strategy) and F3 (accuracy vs ambiguity).

use kb_corpus::Corpus;
use kb_harvest::pipeline::Method;
use kb_ned::{evaluate, NedAccuracy, Strategy};

use crate::setup::{build_ned, harvest_with, ned_gold_docs};
use crate::table::{f3 as fmt3, Table};

/// T5/F3 results for the three strategies.
#[derive(Debug)]
pub struct NedResults {
    /// Prior-only accuracy.
    pub prior: NedAccuracy,
    /// Prior + context.
    pub context: NedAccuracy,
    /// Prior + context + coherence.
    pub coherence: NedAccuracy,
}

/// Runs all three strategies over the corpus articles.
pub fn run_ned(corpus: &Corpus) -> NedResults {
    let out = harvest_with(corpus, Method::Reasoning, 4);
    let ned = build_ned(corpus, &out.kb);
    let gold = ned_gold_docs(&corpus.articles, corpus, &out.kb);
    NedResults {
        prior: evaluate(&ned, &gold, Strategy::Prior),
        context: evaluate(&ned, &gold, Strategy::Context),
        coherence: evaluate(&ned, &gold, Strategy::Coherence),
    }
}

/// Renders T5.
pub fn t5(corpus: &Corpus) -> String {
    let r = run_ned(corpus);
    let mut t = Table::new(&["strategy", "mentions", "accuracy", "ambiguous", "amb. accuracy"]);
    for (name, acc) in
        [("prior", &r.prior), ("+ context", &r.context), ("+ coherence", &r.coherence)]
    {
        t.row(vec![
            name.to_string(),
            acc.total.to_string(),
            fmt3(acc.accuracy()),
            acc.ambiguous.to_string(),
            fmt3(acc.ambiguous_accuracy()),
        ]);
    }
    format!("T5 — named entity disambiguation accuracy\n{}", t.render())
}

/// Renders F3: per-ambiguity-bin accuracy for the three strategies.
pub fn f3(corpus: &Corpus) -> String {
    let r = run_ned(corpus);
    let mut t = Table::new(&["candidates", "mentions", "prior", "+context", "+coherence"]);
    let lookup = |acc: &NedAccuracy, bin: usize| -> Option<f64> {
        acc.by_ambiguity.iter().find(|&&(k, _, _)| k == bin).map(|&(_, total, correct)| {
            if total == 0 {
                0.0
            } else {
                correct as f64 / total as f64
            }
        })
    };
    for bin in 1..=5usize {
        let total = r
            .prior
            .by_ambiguity
            .iter()
            .find(|&&(k, _, _)| k == bin)
            .map(|&(_, t, _)| t)
            .unwrap_or(0);
        if total == 0 {
            continue;
        }
        let label = if bin == 5 { "5+".to_string() } else { bin.to_string() };
        t.row(vec![
            label,
            total.to_string(),
            lookup(&r.prior, bin).map(fmt3).unwrap_or_default(),
            lookup(&r.context, bin).map(fmt3).unwrap_or_default(),
            lookup(&r.coherence, bin).map(fmt3).unwrap_or_default(),
        ]);
    }
    format!("F3 — NED accuracy vs surface-form ambiguity\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn strategies_rank_as_the_literature_says() {
        let corpus = small_corpus(42);
        let r = run_ned(&corpus);
        // Context must beat prior on ambiguous mentions; coherence must
        // not be worse than prior.
        assert!(
            r.context.ambiguous_accuracy() >= r.prior.ambiguous_accuracy(),
            "context {} < prior {}",
            r.context.ambiguous_accuracy(),
            r.prior.ambiguous_accuracy()
        );
        assert!(
            r.coherence.ambiguous_accuracy() >= r.prior.ambiguous_accuracy() - 0.02,
            "coherence {} too far below prior {}",
            r.coherence.ambiguous_accuracy(),
            r.prior.ambiguous_accuracy()
        );
        assert!(r.prior.total > 50, "need a meaningful mention count");
    }

    #[test]
    fn tables_render() {
        let corpus = small_corpus(42);
        assert!(t5(&corpus).contains("coherence"));
        assert!(f3(&corpus).contains("candidates"));
    }
}

/// F7: ablation of the coherence weight — how much joint coherence is
/// worth on ambiguous mentions (0 = context-only behavior inside the
/// joint algorithm; large values let coherence overrule local evidence).
pub fn f7(corpus: &Corpus) -> String {
    let out = harvest_with(corpus, Method::Reasoning, 4);
    let ned_base = build_ned(corpus, &out.kb);
    let gold = crate::setup::ned_gold_docs(&corpus.articles, corpus, &out.kb);
    let mut t = Table::new(&["coherence weight", "accuracy", "amb. accuracy"]);
    for w in [0.0, 0.15, 0.3, 0.6, 1.2, 2.4] {
        let mut ned = build_ned(corpus, &out.kb);
        ned.weights = ned_base.weights;
        ned.weights.coherence = w;
        let acc = evaluate(&ned, &gold, Strategy::Coherence);
        t.row(vec![format!("{w:.2}"), fmt3(acc.accuracy()), fmt3(acc.ambiguous_accuracy())]);
    }
    format!("F7 — NED coherence-weight ablation (joint strategy)\n{}", t.render())
}

#[cfg(test)]
mod f7_tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn zero_coherence_is_never_better_than_tuned() {
        let corpus = small_corpus(42);
        let out = harvest_with(&corpus, Method::Reasoning, 2);
        let gold = crate::setup::ned_gold_docs(&corpus.articles, &corpus, &out.kb);
        let eval_at = |w: f64| {
            let mut ned = build_ned(&corpus, &out.kb);
            ned.weights.coherence = w;
            evaluate(&ned, &gold, Strategy::Coherence).ambiguous_accuracy()
        };
        let zero = eval_at(0.0);
        let tuned = eval_at(0.6);
        assert!(tuned >= zero - 1e-9, "tuned {tuned} < zero-coherence {zero}");
    }

    #[test]
    fn f7_renders_all_rows() {
        let corpus = small_corpus(42);
        let text = f7(&corpus);
        assert!(text.contains("0.00"));
        assert!(text.contains("2.40"));
    }
}
