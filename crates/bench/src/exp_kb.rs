//! T1 (KB statistics after construction) and F4 (triple-store query
//! performance vs KB size).

use std::time::Instant;

use kb_corpus::Corpus;
use kb_harvest::pipeline::Method;
use kb_store::{KbRead, KnowledgeBase, TriplePattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::setup::harvest_with;
use crate::table::{f3, Table};

/// T1: builds the KB and reports its statistics plus pipeline counters.
pub fn t1(corpus: &Corpus) -> String {
    let out = harvest_with(corpus, Method::Reasoning, 4);
    let stats = out.kb.stats();
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["documents processed".into(), out.stats.docs.to_string()]);
    t.row(vec!["pattern occurrences".into(), out.stats.occurrences.to_string()]);
    t.row(vec!["patterns learned".into(), out.stats.patterns_learned.to_string()]);
    t.row(vec!["fact candidates".into(), out.stats.candidates.to_string()]);
    t.row(vec!["facts accepted".into(), out.stats.accepted.to_string()]);
    t.row(vec!["docs quarantined".into(), out.stats.quarantined_count().to_string()]);
    t.row(vec!["extraction retries".into(), out.stats.retries.to_string()]);
    t.row(vec!["method downgrades".into(), out.stats.downgrades.len().to_string()]);
    t.row(vec!["instance assertions".into(), out.stats.instances.to_string()]);
    t.row(vec!["KB terms".into(), stats.terms.to_string()]);
    t.row(vec!["KB facts".into(), stats.facts.to_string()]);
    t.row(vec!["KB predicates".into(), stats.predicates.to_string()]);
    t.row(vec!["KB classes".into(), stats.classes.to_string()]);
    t.row(vec!["subclass edges".into(), stats.subclass_edges.to_string()]);
    t.row(vec!["labels (surface forms)".into(), stats.labels.to_string()]);
    t.row(vec!["temporal facts".into(), stats.temporal_facts.to_string()]);
    t.row(vec!["mean confidence".into(), f3(stats.mean_confidence)]);
    let mut hist = Table::new(&["predicate", "facts"]);
    for (p, n) in out.kb.predicate_histogram().into_iter().take(12) {
        hist.row(vec![p, n.to_string()]);
    }
    format!(
        "T1 — knowledge base construction summary\n{}\nper-predicate fact counts\n{}",
        t.render(),
        hist.render()
    )
}

/// Builds a synthetic KB with `n` random triples for scaling runs.
pub fn synthetic_kb(n: usize, seed: u64) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_entities = (n / 4).max(16);
    let n_rels = 32.min(n_entities);
    let entities: Vec<_> = (0..n_entities).map(|i| kb.intern(&format!("entity_{i}"))).collect();
    let rels: Vec<_> = (0..n_rels).map(|i| kb.intern(&format!("rel_{i}"))).collect();
    for _ in 0..n {
        let s = entities[rng.gen_range(0..entities.len())];
        let p = rels[rng.gen_range(0..rels.len())];
        let o = entities[rng.gen_range(0..entities.len())];
        kb.add_triple(s, p, o);
    }
    kb
}

/// One F4 measurement row.
#[derive(Debug, Clone, Copy)]
pub struct StoreProfile {
    /// Live triples in the store.
    pub size: usize,
    /// Point lookups (fully bound pattern) per second.
    pub point_lookups_per_sec: f64,
    /// Subject scans per second.
    pub scans_per_sec: f64,
    /// Path joins per second.
    pub joins_per_sec: f64,
}

/// Measures store query throughput at one size.
pub fn profile_store<K: KbRead>(kb: &K, seed: u64) -> StoreProfile {
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<_> = kb.matching_triples(&TriplePattern::any());
    let size = all.len();
    // Point lookups.
    let iters = 20_000;
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..iters {
        let t = all[rng.gen_range(0..all.len())];
        if kb.contains(&t) {
            hits += 1;
        }
    }
    assert_eq!(hits, iters);
    let point = iters as f64 / t0.elapsed().as_secs_f64();
    // Subject scans.
    let scan_iters = 5_000;
    let t1 = Instant::now();
    let mut total = 0usize;
    for _ in 0..scan_iters {
        let t = all[rng.gen_range(0..all.len())];
        total += kb.matching_triples(&TriplePattern::with_s(t.s)).len();
    }
    assert!(total > 0);
    let scans = scan_iters as f64 / t1.elapsed().as_secs_f64();
    // Path joins over random relation pairs.
    let rel0 = kb.term("rel_0").expect("synthetic rel");
    let rel1 = kb.term("rel_1").expect("synthetic rel");
    let join_iters = 20;
    let t2 = Instant::now();
    let mut join_rows = 0usize;
    for _ in 0..join_iters {
        join_rows += kb.path_join(rel0, rel1).len();
    }
    let joins = join_iters as f64 / t2.elapsed().as_secs_f64();
    let _ = join_rows;
    StoreProfile { size, point_lookups_per_sec: point, scans_per_sec: scans, joins_per_sec: joins }
}

/// F4: store throughput across sizes.
pub fn f4() -> String {
    let mut t = Table::new(&["triples", "point lookups/s", "subject scans/s", "path joins/s"]);
    for n in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let kb = synthetic_kb(n, 7);
        let p = profile_store(&kb, 11);
        t.row(vec![
            p.size.to_string(),
            format!("{:.0}", p.point_lookups_per_sec),
            format!("{:.0}", p.scans_per_sec),
            format!("{:.1}", p.joins_per_sec),
        ]);
    }
    format!("F4 — triple-store query throughput vs KB size\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn t1_renders_on_small_corpus() {
        let corpus = small_corpus(42);
        let s = t1(&corpus);
        assert!(s.contains("KB facts"));
        assert!(s.contains("mean confidence"));
        assert!(s.contains("docs quarantined"));
    }

    #[test]
    fn synthetic_kb_reaches_requested_scale() {
        let kb = synthetic_kb(5_000, 3);
        // Random collisions shrink it slightly, but not by much.
        assert!(kb.len() > 4_000);
    }

    #[test]
    fn profile_runs_on_small_store() {
        let kb = synthetic_kb(2_000, 3);
        let p = profile_store(&kb, 5);
        assert!(p.point_lookups_per_sec > 0.0);
        assert!(p.scans_per_sec > 0.0);
        assert!(p.joins_per_sec > 0.0);
    }
}
