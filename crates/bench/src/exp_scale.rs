//! F2: pipeline throughput (documents/second) vs worker threads.
//!
//! The measured unit is the per-document *analysis* stage — pattern
//! occurrence collection plus raw Open IE extraction (tokenize, tag,
//! chunk) — which is where a real harvesting pipeline burns its CPU.

use std::time::Instant;

use kb_corpus::Corpus;
use kb_harvest::facts::patterns::CollectConfig;
use kb_harvest::openie::OpenIeConfig;
use kb_harvest::pipeline::analyze_parallel;

use crate::table::Table;

/// One F2 measurement.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Worker threads.
    pub workers: usize,
    /// Documents per second.
    pub docs_per_sec: f64,
    /// Speedup relative to 1 worker.
    pub speedup: f64,
}

/// Measures document-analysis throughput for each worker count.
/// `repeat` controls how many passes are timed (higher = stabler).
pub fn run_f2(corpus: &Corpus, worker_counts: &[usize], repeat: usize) -> Vec<ScalePoint> {
    let docs = corpus.all_docs();
    let world = &corpus.world;
    let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
    let collect_cfg = CollectConfig::default();
    let openie_cfg = OpenIeConfig::default();
    let mut baseline = None;
    let mut out = Vec::new();
    for &workers in worker_counts {
        // Warm-up pass.
        let _ = analyze_parallel(&docs, &canonical_of, &collect_cfg, &openie_cfg, workers);
        let t0 = Instant::now();
        for _ in 0..repeat.max(1) {
            let (occs, open) =
                analyze_parallel(&docs, &canonical_of, &collect_cfg, &openie_cfg, workers)
                    .expect("parallel analysis failed on a benchmark corpus");
            assert!(occs.len() + open.len() > 0 || docs.is_empty());
        }
        let secs = t0.elapsed().as_secs_f64() / repeat.max(1) as f64;
        let dps = docs.len() as f64 / secs;
        let base = *baseline.get_or_insert(dps);
        out.push(ScalePoint { workers, docs_per_sec: dps, speedup: dps / base });
    }
    out
}

/// Renders F2.
pub fn f2(corpus: &Corpus) -> String {
    let points = run_f2(corpus, &[1, 2, 4, 8], 3);
    let mut t = Table::new(&["workers", "docs/s", "speedup"]);
    for p in points {
        t.row(vec![
            p.workers.to_string(),
            format!("{:.0}", p.docs_per_sec),
            format!("{:.2}x", p.speedup),
        ]);
    }
    format!("F2 — document-parallel analysis throughput (occurrences + Open IE)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn throughput_is_positive_and_parallel_runs_agree() {
        let corpus = small_corpus(42);
        let points = run_f2(&corpus, &[1, 2], 1);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.docs_per_sec > 0.0));
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_analysis_is_order_stable() {
        use kb_harvest::pipeline::analyze_parallel;
        let corpus = small_corpus(42);
        let docs = corpus.all_docs();
        let world = &corpus.world;
        let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
        let (o1, f1) = analyze_parallel(
            &docs,
            &canonical_of,
            &CollectConfig::default(),
            &OpenIeConfig::default(),
            1,
        )
        .expect("serial analysis failed");
        let (o4, f4) = analyze_parallel(
            &docs,
            &canonical_of,
            &CollectConfig::default(),
            &OpenIeConfig::default(),
            4,
        )
        .expect("parallel analysis failed");
        assert_eq!(o1, o4);
        assert_eq!(f1.len(), f4.len());
    }
}
