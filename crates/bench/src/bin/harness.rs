//! The experiment harness: regenerates every table and figure defined
//! in DESIGN.md.
//!
//! Usage:
//!
//! ```text
//! harness            # run everything on the standard corpus
//! harness t3 f1      # run selected experiments
//! harness --small    # use the tiny corpus (fast smoke run)
//! ```

use std::env;
use std::time::Instant;

use kb_bench::{
    exp_analytics, exp_facts, exp_kb, exp_link, exp_misc, exp_ned, exp_openie, exp_query,
    exp_rules, exp_scale, exp_segment, exp_serve, exp_store, exp_taxonomy, exp_vector, exp_view,
    setup, HARNESS_SEED,
};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let corpus = if small {
        setup::small_corpus(HARNESS_SEED)
    } else {
        setup::standard_corpus(HARNESS_SEED)
    };
    println!(
        "kbkit experiment harness — corpus: {} entities, {} gold facts, {} docs, {} posts (seed {})\n",
        corpus.world.entities.len(),
        corpus.world.facts.len(),
        corpus.all_docs().len(),
        corpus.posts.len(),
        HARNESS_SEED
    );
    let want = |id: &str| selected.is_empty() || selected.contains(&id);
    type Experiment<'a> = (&'a str, Box<dyn Fn() -> String + 'a>);
    let experiments: Vec<Experiment> = vec![
        ("t1", Box::new(|| exp_kb::t1(&corpus))),
        ("t2", Box::new(|| exp_taxonomy::t2(&corpus))),
        ("t3", Box::new(|| exp_facts::t3(&corpus))),
        ("f1", Box::new(|| exp_facts::f1(&corpus))),
        ("t4", Box::new(|| exp_openie::t4(&corpus))),
        ("f2", Box::new(|| exp_scale::f2(&corpus))),
        ("t5", Box::new(|| exp_ned::t5(&corpus))),
        ("f3", Box::new(|| exp_ned::f3(&corpus))),
        ("f7", Box::new(|| exp_ned::f7(&corpus))),
        ("t6", Box::new(|| exp_link::t6(&corpus))),
        ("f5", Box::new(|| exp_link::f5(&corpus))),
        ("t7", Box::new(|| exp_facts::t7(&corpus))),
        ("t8", Box::new(|| exp_misc::t8(&corpus))),
        ("t9", Box::new(|| exp_misc::t9(&corpus))),
        ("f4", Box::new(exp_kb::f4)),
        ("t11", Box::new(|| exp_rules::t11(&corpus))),
        ("t12", Box::new(|| exp_facts::t12(&corpus))),
        ("f6", Box::new(|| exp_facts::f6(&corpus))),
        ("t10", Box::new(|| exp_analytics::t10(&corpus))),
        ("t13", Box::new(exp_query::t13)),
        ("f8", Box::new(exp_query::f8)),
        ("t14", Box::new(exp_query::t14)),
        ("t15", Box::new(exp_segment::t15)),
        ("t16", Box::new(|| exp_store::t16(&corpus))),
        ("t17", Box::new(exp_vector::t17)),
        ("t18", Box::new(exp_serve::t18)),
        ("t19", Box::new(exp_store::t19)),
        ("t20", Box::new(exp_view::t20)),
    ];
    for (id, run) in experiments {
        if !want(id) {
            continue;
        }
        // Each experiment gets a clean global registry, so the blob
        // below holds exactly the metrics that experiment produced.
        kb_obs::global().reset();
        let t0 = Instant::now();
        let output = run();
        println!("{output}");
        println!("[{id} metrics] {}", kb_obs::global().render_json());
        println!("[{id} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
