//! T2: taxonomy induction quality — category analysis vs Hearst
//! patterns vs set expansion vs the merged harvest.

use std::collections::HashSet;

use kb_corpus::{gold, Corpus, Doc, EntityKind};
use kb_harvest::taxonomy::{category, hearst, induce, setexp, to_eval_set, InstanceAssertion};

use crate::table::{f3, Table};

/// Per-method instance-assertion quality.
#[derive(Debug, Clone)]
pub struct TaxonomyResult {
    /// Method label.
    pub method: String,
    /// Assertions produced.
    pub assertions: usize,
    /// Precision / recall / F1 vs gold instanceOf.
    pub metrics: gold::PrF1,
}

/// Runs all three harvesters plus the merge and scores them.
pub fn run_t2(corpus: &Corpus) -> Vec<TaxonomyResult> {
    let world = &corpus.world;
    let docs: Vec<&Doc> = corpus.all_docs();
    let canonical_of = |id: kb_corpus::EntityId| world.entity(id).canonical.as_str();
    let gold_set = gold::gold_instance_strings(world);

    let cat = category::harvest_categories(&docs, canonical_of);
    let hearst_found = hearst::harvest_hearst(&docs, canonical_of);

    // Set expansion: seed each kind class with 3 gold members, expand,
    // take candidates sharing at least 2 lists with the seeds.
    let mut setexp_found: Vec<InstanceAssertion> = Vec::new();
    for kind in [
        EntityKind::Person,
        EntityKind::Company,
        EntityKind::City,
        EntityKind::Country,
        EntityKind::University,
        EntityKind::Product,
    ] {
        let class = kind.class_name().to_string();
        let seeds: HashSet<String> =
            world.of_kind(kind).take(3).map(|e| e.canonical.clone()).collect();
        if seeds.is_empty() {
            continue;
        }
        for cand in setexp::expand_set(&docs, canonical_of, &seeds) {
            if cand.shared_lists >= 2 {
                setexp_found.push(InstanceAssertion { entity: cand.entity, class: class.clone() });
            }
        }
        for s in seeds {
            setexp_found.push(InstanceAssertion { entity: s, class: class.clone() });
        }
    }

    let merged = induce::merge_instances(&[
        (&cat.instances, 0.9),
        (&hearst_found, 0.7),
        (&setexp_found, 0.5),
    ]);
    let merged_assertions: Vec<InstanceAssertion> = merged
        .iter()
        .map(|m| InstanceAssertion { entity: m.entity.clone(), class: m.class.clone() })
        .collect();

    let score = |name: &str, found: &[InstanceAssertion]| TaxonomyResult {
        method: name.to_string(),
        assertions: found.len(),
        metrics: gold::pr_f1(&to_eval_set(found), &gold_set),
    };
    vec![
        score("categories", &cat.instances),
        score("hearst", &hearst_found),
        score("set expansion", &setexp_found),
        score("merged", &merged_assertions),
    ]
}

/// Renders T2.
pub fn t2(corpus: &Corpus) -> String {
    let mut t = Table::new(&["method", "assertions", "precision", "recall", "F1"]);
    for r in run_t2(corpus) {
        t.row(vec![
            r.method,
            r.assertions.to_string(),
            f3(r.metrics.precision),
            f3(r.metrics.recall),
            f3(r.metrics.f1),
        ]);
    }
    format!("T2 — taxonomy induction: instanceOf quality per method\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::small_corpus;

    #[test]
    fn categories_are_highest_precision() {
        let corpus = small_corpus(42);
        let results = run_t2(&corpus);
        let get = |m: &str| results.iter().find(|r| r.method == m).unwrap().metrics;
        assert!(get("categories").precision > 0.9);
        assert!(get("categories").precision >= get("set expansion").precision);
        // Merging should not lose recall vs the best single method.
        let best_recall = results
            .iter()
            .filter(|r| r.method != "merged")
            .map(|r| r.metrics.recall)
            .fold(0.0, f64::max);
        assert!(get("merged").recall >= best_recall - 1e-9);
    }

    #[test]
    fn renders_all_rows() {
        let corpus = small_corpus(42);
        let s = t2(&corpus);
        for m in ["categories", "hearst", "set expansion", "merged"] {
            assert!(s.contains(m), "missing {m}");
        }
    }
}
