//! T15 (segmented snapshots): the cost of making new facts queryable.
//! A non-segmented store must re-freeze the whole snapshot — re-sort
//! all three permutations, rebuild the stats catalog, swap the
//! generation — even when the new facts are a fraction of a percent of
//! the base. The segmented path freezes just the delta against the
//! live view and pushes it onto the stack, with predicate-scoped cache
//! invalidation instead of a wholesale flush.

use std::sync::Arc;
use std::time::Instant;

use kb_obs::Registry;
use kb_query::{QueryService, StatsCatalog};
use kb_store::{KbBuilder, KnowledgeBase};

use crate::exp_query::synthetic_kb_skewed;
use crate::table::Table;

/// Times `f` over `iters` runs and returns the mean milliseconds.
fn mean_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Full-rebuild cost for a KB of this fact set: re-freeze every
/// permutation, rebuild the stats catalog, install the new generation.
/// Fact re-accumulation into a builder is *excluded*, which favors the
/// rebuild side — the reported speedup is a lower bound.
fn full_rebuild_ms(kb_full: &KnowledgeBase, iters: usize) -> f64 {
    let svc = QueryService::with_instrumentation(
        kb_full.snapshot().into_shared(),
        kb_query::DEFAULT_CACHE_CAPACITY,
        &Registry::new(),
    );
    mean_ms(iters, || {
        let snap = kb_full.snapshot();
        let _stats = StatsCatalog::build(&snap);
        svc.install(snap.into_shared());
    })
}

/// Delta-install cost: freeze `delta_facts` fresh triples against the
/// live view and push the segment (stats merged incrementally, caches
/// swept by predicate footprint).
fn delta_install_ms(svc: &QueryService, delta_facts: usize, iters: usize) -> f64 {
    let mut round = 0usize;
    mean_ms(iters, || {
        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        for j in 0..delta_facts {
            b.assert_str(&format!("dx_{round}_{j}"), "rel_rare", &format!("dy_{round}_{j}"));
        }
        svc.apply_delta(Arc::new(b.freeze_delta(&view)));
        round += 1;
    })
}

/// T15 core comparison at one scale, shared by the harness table and
/// the smoke test. Returns `(full_ms, delta_ms)` for each delta size.
pub fn t15_measure(n: usize, delta_sizes: &[usize], iters: usize) -> Vec<(usize, f64, f64)> {
    let base = synthetic_kb_skewed(n, 7);
    let base_snap = base.snapshot().into_shared();
    delta_sizes
        .iter()
        .map(|&d| {
            // The union KB a monolithic store would have to re-freeze.
            let mut kb_full = synthetic_kb_skewed(n, 7);
            let rare = kb_full.intern("rel_rare");
            for j in 0..d {
                let s = kb_full.intern(&format!("dx_{j}"));
                let o = kb_full.intern(&format!("dy_{j}"));
                kb_full.add_triple(s, rare, o);
            }
            let full_ms = full_rebuild_ms(&kb_full, iters);

            let svc = QueryService::with_instrumentation(
                base_snap.clone(),
                kb_query::DEFAULT_CACHE_CAPACITY,
                &Registry::new(),
            );
            let delta_ms = delta_install_ms(&svc, d, iters);
            (d, full_ms, delta_ms)
        })
        .collect()
}

/// T15: delta install vs full rebuild, plus the cache-retention payoff
/// of predicate-scoped invalidation.
pub fn t15() -> String {
    const N: usize = 100_000;
    let mut t = Table::new(&[
        "base facts",
        "delta facts",
        "full rebuild ms",
        "delta install ms",
        "speedup",
    ]);
    for (d, full_ms, delta_ms) in t15_measure(N, &[100, 1_000], 5) {
        assert!(
            full_ms >= 10.0 * delta_ms,
            "delta install must be ≥10× cheaper than a full rebuild \
             (full {full_ms:.3}ms, delta {delta_ms:.3}ms at {d} facts)"
        );
        t.row(vec![
            N.to_string(),
            d.to_string(),
            format!("{full_ms:.3}"),
            format!("{delta_ms:.3}"),
            format!("{:.0}x", full_ms / delta_ms),
        ]);
    }

    // The serving payoff: warm results whose predicates a delta never
    // touches keep serving; a monolithic install would flush them all.
    let base = synthetic_kb_skewed(N, 7);
    let svc = QueryService::with_instrumentation(
        base.snapshot().into_shared(),
        kb_query::DEFAULT_CACHE_CAPACITY,
        &Registry::new(),
    );
    let warm = [
        "SELECT DISTINCT ?c WHERE { ?a rel_mid ?c } LIMIT 20",
        "SELECT ?x ?y WHERE { ?x rel_mid2 ?y } LIMIT 20",
        "SELECT ?x WHERE { ?x rel_rare ?y } ORDER BY ?x",
    ];
    for q in warm {
        svc.query(q).expect("warm query");
    }
    let view = svc.snapshot();
    let mut b = KbBuilder::new();
    b.assert_str("dx_demo", "rel_rare", "dy_demo");
    svc.apply_delta(Arc::new(b.freeze_delta(&view)));
    let stats = svc.cache_stats();
    let mut ret = Table::new(&["warm entries", "delta touches", "retained", "invalidated"]);
    ret.row(vec![
        warm.len().to_string(),
        "rel_rare".to_string(),
        stats.result_retained.to_string(),
        stats.result_invalidated.to_string(),
    ]);
    format!(
        "T15 — segmented snapshots: delta install vs full rebuild (mean of 5 installs)\n{}\n\
         predicate-scoped invalidation on one rel_rare delta\n{}",
        t.render(),
        ret.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_install_beats_full_rebuild_at_smoke_scale() {
        // Smoke-scale sanity: even at 20k facts the delta path wins by
        // a wide margin (the harness asserts ≥10× at 100k).
        let rows = t15_measure(20_000, &[100], 3);
        let (_, full_ms, delta_ms) = rows[0];
        assert!(
            full_ms > delta_ms,
            "delta install should be cheaper than rebuild: full {full_ms:.3}ms vs delta {delta_ms:.3}ms"
        );
    }

    #[test]
    fn t15_retention_counters_move() {
        let base = synthetic_kb_skewed(2_000, 3);
        let svc = QueryService::with_instrumentation(
            base.snapshot().into_shared(),
            kb_query::DEFAULT_CACHE_CAPACITY,
            &Registry::new(),
        );
        svc.query("SELECT DISTINCT ?c WHERE { ?a rel_mid ?c } LIMIT 5").unwrap();
        svc.query("SELECT ?x WHERE { ?x rel_rare ?y } ORDER BY ?x").unwrap();
        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        b.assert_str("dx", "rel_rare", "dy");
        svc.apply_delta(Arc::new(b.freeze_delta(&view)));
        let stats = svc.cache_stats();
        assert_eq!(stats.delta_installs, 1);
        assert!(stats.result_retained >= 1, "untouched rel_mid entry must survive: {stats:?}");
        assert!(stats.result_invalidated >= 1, "touched rel_rare entry must die: {stats:?}");
    }
}
