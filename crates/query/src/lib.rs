//! `kb-query`: a SPARQL-style declarative query engine over the KB
//! store, replacing ad-hoc pattern-matching call sites with parsed,
//! planned, cached query execution — the workload class the paper's
//! "querying and analytics" discussion assumes a big-data KB must
//! serve.
//!
//! Four layers:
//!
//! 1. **Language + algebra** ([`ast`], [`mod@parse`]) — a SPARQL-like
//!    surface (`SELECT`/`DISTINCT`, conjunctive basic graph patterns,
//!    `FILTER`, `OPTIONAL`, `UNION`, `GROUP BY`/`COUNT`,
//!    `ORDER BY`/`LIMIT`/`OFFSET`, and `@point` temporal restriction)
//!    parsed KB-independently into a typed algebra whose
//!    [`Display`](std::fmt::Display) form is canonical: `parse ∘
//!    display` is the identity, and the canonical text keys the plan
//!    cache.
//! 2. **Cost-based planner** ([`stats`], [`mod@plan`]) — per-predicate
//!    cardinality and distinct counts harvested from the snapshot's
//!    index buckets feed a Selinger-style join-order optimizer (exact
//!    subset DP for small BGPs, greedy beyond), emitting physical
//!    plans of index-nested-loop scans and POS-bucket merge-range
//!    joins that execute over any [`KbRead`] with no per-row
//!    allocation.
//! 3. **Serving layer** ([`service`]) — an `Arc<KbSnapshot>`-backed
//!    [`QueryService`] with a bounded LRU plan cache keyed on
//!    normalized query text, a result cache invalidated by snapshot
//!    generation, and a crossbeam worker pool for concurrent batches.
//! 4. **Standing views** ([`view`]) — a [`ViewRegistry`] of
//!    materialized continuous queries patched incrementally from each
//!    delta install via signed delta joins, falling back to
//!    re-execution only for plan shapes outside the maintainable
//!    fragment.
//!
//! The legacy engine in `kb_store::query` is kept as a differential
//! oracle — `crates/query/tests/differential.rs` checks both engines
//! produce identical binding sets on random KBs and queries.
//!
//! ```
//! use kb_store::KbBuilder;
//!
//! let mut b = KbBuilder::new();
//! b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
//! b.assert_str("San_Francisco", "locatedIn", "California");
//! let snap = b.freeze();
//!
//! let out = kb_query::query(&snap, "?p bornIn ?c . ?c locatedIn California").unwrap();
//! assert_eq!(out.rows.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod parse;
pub mod plan;
pub mod service;
pub mod stats;
pub mod view;

pub use ast::SelectQuery;
pub use error::QueryError;
pub use exec::{cell_str, execute, execute_traced, execute_tuple, Cell, ExecTrace, QueryOutput};
pub use parse::{normalize, parse};
pub use plan::{plan, routing_decision, Footprint, OpInfo, Plan, RoutingDecision};
pub use service::{CacheStats, QueryService, DEFAULT_CACHE_CAPACITY};
pub use stats::{PredStat, StatsCatalog};
pub use view::{
    canonical_output, canonical_sort, maintainability, Maintainability, ViewId, ViewRegistry,
    ViewUpdate,
};

use kb_store::KbRead;

/// One-shot convenience: parse, plan and execute `text` against `kb`.
///
/// Builds a fresh [`StatsCatalog`] per call — fine for scripts and
/// tests; long-lived callers should hold a [`QueryService`] (snapshot
/// sharing, plan/result caches) or at least reuse a catalog with
/// [`plan()`] + [`execute`].
pub fn query<K: KbRead + ?Sized>(kb: &K, text: &str) -> Result<QueryOutput, QueryError> {
    let parsed = parse(text)?;
    let stats = StatsCatalog::build(kb);
    let compiled = plan(&parsed, kb, &stats)?;
    Ok(execute(&compiled, kb))
}
