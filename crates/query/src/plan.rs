//! The cost-based planner: lowers a parsed [`SelectQuery`] into a
//! physical [`Plan`] of index-nested-loop and merge-range operators.
//!
//! ## Cost model
//!
//! Every triple pattern's cardinality is estimated from the
//! [`StatsCatalog`] under the classic uniformity assumption (fixing a
//! component divides the predicate's range cardinality by its distinct
//! count). The cost of a join order is the sum of intermediate result
//! sizes — the number of index probes the nested-loop execution will
//! actually perform.
//!
//! ## Join ordering
//!
//! Basic graph patterns of up to [`DP_CUTOFF`] patterns are ordered by
//! Selinger-style dynamic programming over pattern subsets (optimal
//! left-deep order under the cost model); larger BGPs fall back to a
//! greedy ordering that repeatedly picks the cheapest remaining
//! pattern. Both leave execution *correct* under any order — the order
//! only decides how much work the scans do.
//!
//! ## Merge-range operator
//!
//! Two patterns with constant predicates that share an unbound object
//! variable (`?a bornIn ?c . ?b diedIn ?c`) can skip the nested loop
//! entirely: the POS index streams each predicate's bucket sorted by
//! `(o, s)`, so both ranges merge on `o` in a single co-scan. The
//! planner emits a `Step::MergeRange` when its scan cost undercuts
//! the best nested-loop order.

use std::collections::HashMap;

use kb_store::{KbRead, TermId, TimePoint};

use crate::ast::{CmpOp, Condition, Group, ProjItem, SelectQuery, Term};
use crate::error::QueryError;
use crate::stats::StatsCatalog;

/// BGPs up to this size are join-ordered by exact subset DP; larger
/// ones greedily.
pub const DP_CUTOFF: usize = 10;

/// A pattern component in a physical scan: a resolved constant or a
/// variable slot in the binding array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// A constant already resolved against the dictionary.
    Const(TermId),
    /// Variable slot index.
    Var(usize),
}

/// One step of a basic-graph-pattern pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Step {
    /// Index-nested-loop step: one range scan per row of the prefix.
    Scan { s: Slot, p: Slot, o: Slot, at: Option<TimePoint> },
    /// Merge-range step (always first in its pipeline): co-scan the POS
    /// buckets of `p1` and `p2`, merging on the shared object variable.
    MergeRange { p1: TermId, s1: usize, p2: TermId, s2: usize, o: usize },
}

/// A compiled filter operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CondOperand {
    /// Variable slot.
    Slot(usize),
    /// Constant: interned id if the dictionary knows it, plus the raw
    /// text (ordered comparisons work even for never-interned literals
    /// like a year that appears in no fact).
    Const { id: Option<TermId>, text: String },
}

/// A compiled filter condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CondC {
    pub lhs: CondOperand,
    pub op: CmpOp,
    pub rhs: CondOperand,
}

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PhysOp {
    /// An ordered BGP pipeline.
    Steps(Vec<Step>),
    /// Sequential join: for each row of the left, run the right.
    Join(Box<PhysOp>, Box<PhysOp>),
    /// SPARQL `OPTIONAL`: rows of the left survive even when the right
    /// finds nothing.
    LeftJoin(Box<PhysOp>, Box<PhysOp>),
    /// SPARQL `UNION`: both branches run against the same prefix row.
    Union(Box<PhysOp>, Box<PhysOp>),
    /// Filter over the inner operator's rows.
    Filter(Box<PhysOp>, Vec<CondC>),
    /// Provably empty (a pattern constant the dictionary has never
    /// seen).
    Empty,
}

/// One output column of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Col {
    /// A projected variable.
    Var { name: String, slot: usize },
    /// A `COUNT` aggregate (`arg` is the counted slot; `None` = `*`).
    Count { name: String, arg: Option<usize> },
}

impl Col {
    pub(crate) fn name(&self) -> &str {
        match self {
            Col::Var { name, .. } | Col::Count { name, .. } => name,
        }
    }
}

/// Planner-side description of one physical operator instance: a human
/// label plus the cost model's output-row estimate. The list in
/// [`Plan::ops`] is aligned index-for-index with the actual row counts
/// the executor collects in
/// [`ExecTrace::op_rows`](crate::exec::ExecTrace::op_rows), which is
/// what lets `--explain` print estimated vs actual rows per operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpInfo {
    /// Short operator description (resolved constants, `?var` slots).
    pub label: String,
    /// Estimated output rows under the planner's cost model.
    pub est_rows: f64,
}

/// Number of [`OpInfo`]/trace slots an operator tree occupies. The
/// annotator ([`Ctx::annotate`]) and the batch executor walk the tree
/// in the same order with the same slot layout: every BGP step gets a
/// slot, `Join` is pure composition (no slot of its own), and
/// `Union`/`LeftJoin`/`Filter` each claim one slot before their
/// children.
pub(crate) fn op_slots(op: &PhysOp) -> usize {
    match op {
        PhysOp::Steps(steps) => steps.len(),
        PhysOp::Join(l, r) => op_slots(l) + op_slots(r),
        PhysOp::LeftJoin(l, r) | PhysOp::Union(l, r) => 1 + op_slots(l) + op_slots(r),
        PhysOp::Filter(inner, _) => 1 + op_slots(inner),
        PhysOp::Empty => 0,
    }
}

/// The set of predicates a plan's answer can depend on — the unit of
/// *partial* cache invalidation in the serving layer: a delta install
/// only kills cached entries whose footprint intersects the delta's
/// touched predicates.
///
/// `wildcard` is the conservative escape hatch: a variable in predicate
/// position depends on every predicate, and a constant the dictionary
/// has never seen (anywhere in the query — pattern or filter) can be
/// interned by a future delta, turning an `Empty` sub-plan non-empty or
/// changing a filter comparison. Wildcard entries are invalidated by
/// every delta.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Sorted, deduplicated predicate ids the query scans.
    pub(crate) preds: Vec<TermId>,
    /// Depends on predicates (or terms) beyond `preds`.
    pub(crate) wildcard: bool,
}

impl Footprint {
    /// Whether a delta touching `touched` (sorted) can change this
    /// plan's answer.
    pub fn is_touched_by(&self, touched: &[TermId]) -> bool {
        if self.wildcard {
            return true;
        }
        let (mut i, mut j) = (0, 0);
        while i < self.preds.len() && j < touched.len() {
            match self.preds[i].cmp(&touched[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Whether the footprint depends on every predicate.
    pub fn is_wildcard(&self) -> bool {
        self.wildcard
    }

    /// The sorted predicate ids the plan's answer can depend on
    /// (empty for pure-wildcard footprints). `--explain` prints these
    /// so users can predict which delta installs touch a standing view.
    pub fn preds(&self) -> &[TermId] {
        &self.preds
    }
}

/// Walks the query group collecting its predicate footprint.
fn collect_footprint<K: KbRead + ?Sized>(g: &Group, kb: &K, fp: &mut Footprint) {
    for pat in &g.patterns {
        match &pat.p {
            Term::Var(_) => fp.wildcard = true,
            Term::Const(c) => match kb.term(c) {
                Some(id) => fp.preds.push(id),
                None => fp.wildcard = true,
            },
        }
        for t in [&pat.s, &pat.o] {
            if let Term::Const(c) = t {
                if kb.term(c).is_none() {
                    fp.wildcard = true;
                }
            }
        }
    }
    for c in &g.filters {
        for t in [&c.lhs, &c.rhs] {
            if let Term::Const(s) = t {
                if kb.term(s).is_none() {
                    fp.wildcard = true;
                }
            }
        }
    }
    for (a, b) in &g.unions {
        collect_footprint(a, kb, fp);
        collect_footprint(b, kb, fp);
    }
    for o in &g.optionals {
        collect_footprint(o, kb, fp);
    }
}

/// Whether a parsed query is answerable by a single subject partition.
///
/// A query is *subject-bound* when every triple pattern anywhere in it
/// — the basic graph pattern, both branches of every `UNION`, every
/// `OPTIONAL` — puts one and the same constant in subject position.
/// Such a query can only ever touch facts colocated with that subject,
/// so a subject-partitioned deployment routes it to exactly one
/// partition; anything else must scatter.
///
/// Decided purely on the AST (no dictionary access): a constant the
/// store has never seen still routes to the partition that *would* own
/// it, where planning resolves it to an empty scan exactly as a
/// monolithic service would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingDecision {
    /// Every pattern binds the subject to this constant.
    SubjectBound {
        /// The shared subject constant.
        subject: String,
    },
    /// Patterns disagree on the subject, bind it to a variable, or the
    /// query has no patterns at all.
    Scatter,
}

impl RoutingDecision {
    /// One-line human description, used by `--explain`.
    pub fn describe(&self) -> String {
        match self {
            RoutingDecision::SubjectBound { subject } => {
                format!("single partition (subject-bound to {subject:?})")
            }
            RoutingDecision::Scatter => "scatter to all partitions".to_string(),
        }
    }
}

/// Computes the [`RoutingDecision`] for a parsed query.
pub fn routing_decision(query: &SelectQuery) -> RoutingDecision {
    fn walk<'a>(g: &'a Group, subject: &mut Option<&'a str>) -> bool {
        for pat in &g.patterns {
            match &pat.s {
                Term::Var(_) => return false,
                Term::Const(c) => match subject {
                    Some(s) if *s != c.as_str() => return false,
                    Some(_) => {}
                    None => *subject = Some(c),
                },
            }
        }
        g.unions.iter().all(|(a, b)| walk(a, subject) && walk(b, subject))
            && g.optionals.iter().all(|o| walk(o, subject))
    }
    let mut subject = None;
    if walk(&query.group, &mut subject) {
        if let Some(s) = subject {
            return RoutingDecision::SubjectBound { subject: s.to_string() };
        }
    }
    RoutingDecision::Scatter
}

/// An executable physical plan. Produced by [`plan()`]; run with
/// [`crate::exec::execute`]. Plans borrow nothing — they are cheap to
/// cache and share across threads for a given snapshot generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Number of variable slots in the binding array.
    pub(crate) nvars: usize,
    /// Root operator.
    pub(crate) root: PhysOp,
    /// Output columns, in projection order.
    pub(crate) cols: Vec<Col>,
    /// Deduplicate output rows.
    pub(crate) distinct: bool,
    /// Aggregation keys (slots); meaningful when `aggregate` is set.
    pub(crate) group_by: Vec<usize>,
    /// Whether the plan aggregates.
    pub(crate) aggregate: bool,
    /// `ORDER BY` keys as (column index, descending).
    pub(crate) order_by: Vec<(usize, bool)>,
    /// Row limit.
    pub(crate) limit: Option<usize>,
    /// Rows skipped.
    pub(crate) offset: usize,
    /// Total estimated cost (index probes) of the chosen join orders.
    pub(crate) est_cost: f64,
    /// Human-readable description of the chosen physical operators.
    pub(crate) explain: Vec<String>,
    /// Per-operator labels + row estimates, in executor slot order.
    pub(crate) ops: Vec<OpInfo>,
    /// Predicates the answer depends on (partial-invalidation key).
    pub(crate) footprint: Footprint,
}

impl Plan {
    /// Output column names, in projection order.
    pub fn columns(&self) -> Vec<&str> {
        self.cols.iter().map(Col::name).collect()
    }

    /// The predicates this plan's answer depends on.
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }

    /// The planner's total cost estimate (expected index probes).
    pub fn estimated_cost(&self) -> f64 {
        self.est_cost
    }

    /// One line per physical operator, in execution order.
    pub fn explain(&self) -> &[String] {
        &self.explain
    }

    /// Per-operator labels and row estimates, aligned index-for-index
    /// with [`ExecTrace::op_rows`](crate::exec::ExecTrace::op_rows).
    pub fn ops(&self) -> &[OpInfo] {
        &self.ops
    }
}

/// Variable-slot interner.
struct Slots {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl Slots {
    fn new() -> Self {
        Slots { names: Vec::new(), index: HashMap::new() }
    }

    fn slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }
}

/// A pattern with terms resolved to slots/ids (`None` in a position
/// means the constant is unknown to the dictionary).
#[derive(Clone, Copy)]
struct RPattern {
    s: Option<Slot>,
    p: Option<Slot>,
    o: Option<Slot>,
    at: Option<TimePoint>,
}

impl RPattern {
    fn slots(&self) -> impl Iterator<Item = usize> + '_ {
        [self.s, self.p, self.o].into_iter().flatten().filter_map(|sl| match sl {
            Slot::Var(v) => Some(v),
            Slot::Const(_) => None,
        })
    }

    /// Estimated matches given the set of bound slots.
    fn estimate(&self, bound: &[bool], stats: &StatsCatalog) -> f64 {
        let fixed = |sl: Option<Slot>| match sl {
            Some(Slot::Const(_)) => true,
            Some(Slot::Var(v)) => bound[v],
            None => true, // unknown constant: fixed (and unmatchable)
        };
        if self.s.is_none() || self.p.is_none() || self.o.is_none() {
            return 0.0;
        }
        let pred = match self.p {
            Some(Slot::Const(id)) => Some(id),
            _ => None,
        };
        stats.estimate(pred, fixed(self.s), fixed(self.o))
    }
}

/// Compiles and cost-orders one BGP, returning the operator, its
/// estimated cost and output rows, and explain lines.
struct BgpPlan {
    op: PhysOp,
    cost: f64,
    rows: f64,
    explain: Vec<String>,
}

/// Internal planning context.
struct Ctx<'a, K: KbRead + ?Sized> {
    kb: &'a K,
    stats: &'a StatsCatalog,
    slots: Slots,
}

impl<K: KbRead + ?Sized> Ctx<'_, K> {
    fn resolve_term(&mut self, t: &Term) -> Option<Slot> {
        match t {
            Term::Var(v) => Some(Slot::Var(self.slots.slot(v))),
            Term::Const(c) => self.kb.term(c).map(Slot::Const),
        }
    }

    /// Orders the BGP with subset DP (≤ [`DP_CUTOFF`] patterns) or
    /// greedily, then considers a merge-range fusion; returns the
    /// cheaper plan.
    fn plan_bgp(&mut self, patterns: &[crate::ast::Pattern], bound: &[bool]) -> BgpPlan {
        let rp: Vec<RPattern> = patterns
            .iter()
            .map(|p| RPattern {
                s: self.resolve_term(&p.s),
                p: self.resolve_term(&p.p),
                o: self.resolve_term(&p.o),
                at: p.at,
            })
            .collect();
        // `resolve_term` may have grown the slot table; re-pad `bound`.
        let mut bound = bound.to_vec();
        bound.resize(self.slots.names.len(), false);

        if rp.iter().any(|p| p.s.is_none() || p.p.is_none() || p.o.is_none()) {
            let which = rp
                .iter()
                .zip(patterns)
                .find(|(r, _)| r.s.is_none() || r.p.is_none() || r.o.is_none())
                .map(|(_, p)| p.to_string())
                .unwrap_or_default();
            return BgpPlan {
                op: PhysOp::Empty,
                cost: 0.0,
                rows: 0.0,
                explain: vec![format!("empty (unknown constant in `{which}`)")],
            };
        }
        if rp.is_empty() {
            return BgpPlan {
                op: PhysOp::Steps(Vec::new()),
                cost: 0.0,
                rows: 1.0,
                explain: vec![],
            };
        }

        let order = if rp.len() <= DP_CUTOFF {
            self.dp_order(&rp, &bound)
        } else {
            self.greedy_order(&rp, &bound, &(0..rp.len()).collect::<Vec<_>>())
        };
        let (nested_cost, nested_rows) = self.sequence_cost(&rp, &order, &bound);
        let nested = (order, nested_cost, nested_rows);

        let best = self
            .best_merge(&rp, &bound)
            .filter(|m| m.cost < nested.1)
            .map(|m| (m, true))
            .unwrap_or_else(|| {
                (
                    MergeCandidate {
                        steps: nested
                            .0
                            .iter()
                            .map(|&i| Step::Scan {
                                s: rp[i].s.unwrap(),
                                p: rp[i].p.unwrap(),
                                o: rp[i].o.unwrap(),
                                at: rp[i].at,
                            })
                            .collect(),
                        pattern_order: nested.0.clone(),
                        cost: nested.1,
                        rows: nested.2,
                        merged: None,
                    },
                    false,
                )
            });
        let (cand, fused) = best;
        let mut explain = Vec::new();
        let mut step_iter = cand.steps.iter();
        if let (Some(Step::MergeRange { p1, p2, .. }), Some((i, j))) =
            (step_iter.next(), cand.merged)
        {
            explain.push(format!(
                "merge-range `{}` ⋈o `{}` (|{}|={}, |{}|={})",
                patterns[i],
                patterns[j],
                self.kb.resolve(*p1).unwrap_or("?"),
                self.stats.per_pred.get(p1).map_or(0, |s| s.count),
                self.kb.resolve(*p2).unwrap_or("?"),
                self.stats.per_pred.get(p2).map_or(0, |s| s.count),
            ));
        } else {
            step_iter = cand.steps.iter();
        }
        let skip = usize::from(fused);
        for (&pi, step) in cand.pattern_order.iter().skip(skip * 2).zip(step_iter) {
            if let Step::Scan { s, p, o, .. } = step {
                let _ = (s, p, o);
                explain.push(format!("index-nested-loop scan `{}`", patterns[pi]));
            }
        }
        BgpPlan { op: PhysOp::Steps(cand.steps), cost: cand.cost, rows: cand.rows, explain }
    }

    /// Exact left-deep join ordering by DP over pattern subsets.
    fn dp_order(&self, rp: &[RPattern], entry_bound: &[bool]) -> Vec<usize> {
        let k = rp.len();
        let full = (1usize << k) - 1;
        // (cost, rows, last pattern chosen)
        let mut best: Vec<Option<(f64, f64, usize)>> = vec![None; full + 1];
        best[0] = Some((0.0, 1.0, usize::MAX));
        let mut bound = entry_bound.to_vec();
        for mask in 0..=full {
            let Some((cost, rows, _)) = best[mask] else { continue };
            // Recompute the bound set for this subset.
            for b in bound.iter_mut() {
                *b = false;
            }
            bound.copy_from_slice(entry_bound);
            for (i, p) in rp.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    for v in p.slots() {
                        bound[v] = true;
                    }
                }
            }
            for (j, p) in rp.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let sel = p.estimate(&bound, self.stats);
                let nrows = rows * sel;
                // Each prefix row pays for its probe plus the results
                // it streams out.
                let ncost = cost + rows.max(1.0) + nrows;
                let nm = mask | (1 << j);
                if best[nm].is_none_or(|(c, _, _)| ncost < c) {
                    best[nm] = Some((ncost, nrows, j));
                }
            }
        }
        // Reconstruct the order back from the full mask.
        let mut order = Vec::with_capacity(k);
        let mut mask = full;
        while mask != 0 {
            let (_, _, last) = best[mask].expect("DP table is dense");
            order.push(last);
            mask &= !(1 << last);
        }
        order.reverse();
        order
    }

    /// Greedy ordering: repeatedly take the cheapest remaining pattern.
    fn greedy_order(&self, rp: &[RPattern], entry_bound: &[bool], todo: &[usize]) -> Vec<usize> {
        let mut bound = entry_bound.to_vec();
        let mut remaining: Vec<usize> = todo.to_vec();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (pos, &pick) = remaining
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    let ea = rp[a].estimate(&bound, self.stats);
                    let eb = rp[b].estimate(&bound, self.stats);
                    ea.total_cmp(&eb).then(a.cmp(&b))
                })
                .expect("non-empty remaining");
            order.push(pick);
            for v in rp[pick].slots() {
                bound[v] = true;
            }
            remaining.remove(pos);
        }
        order
    }

    /// Cost and output rows of executing `rp` in `order`.
    fn sequence_cost(&self, rp: &[RPattern], order: &[usize], entry_bound: &[bool]) -> (f64, f64) {
        let mut bound = entry_bound.to_vec();
        let mut cost = 0.0;
        let mut rows = 1.0;
        for &i in order {
            let sel = rp[i].estimate(&bound, self.stats);
            let nrows = rows * sel;
            cost += rows.max(1.0) + nrows;
            rows = nrows;
            for v in rp[i].slots() {
                bound[v] = true;
            }
        }
        (cost, rows)
    }

    /// The cheapest merge-range fusion over any eligible pattern pair,
    /// if one exists.
    fn best_merge(&self, rp: &[RPattern], entry_bound: &[bool]) -> Option<MergeCandidate> {
        let mut best: Option<MergeCandidate> = None;
        for i in 0..rp.len() {
            for j in (i + 1)..rp.len() {
                let Some(cand) = self.merge_pair(rp, i, j, entry_bound) else { continue };
                if best.as_ref().is_none_or(|b| cand.cost < b.cost) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    fn merge_pair(
        &self,
        rp: &[RPattern],
        i: usize,
        j: usize,
        entry_bound: &[bool],
    ) -> Option<MergeCandidate> {
        let (a, b) = (&rp[i], &rp[j]);
        if a.at.is_some() || b.at.is_some() {
            return None;
        }
        let (Some(Slot::Const(p1)), Some(Slot::Const(p2))) = (a.p, b.p) else { return None };
        let (Some(Slot::Var(o1)), Some(Slot::Var(o2))) = (a.o, b.o) else { return None };
        let (Some(Slot::Var(s1)), Some(Slot::Var(s2))) = (a.s, b.s) else { return None };
        if o1 != o2 || s1 == s2 || s1 == o1 || s2 == o2 {
            return None;
        }
        if entry_bound[o1] || entry_bound[s1] || entry_bound[s2] {
            return None;
        }
        let st1 = self.stats.per_pred.get(&p1)?;
        let st2 = self.stats.per_pred.get(&p2)?;
        let (c1, c2) = (st1.count as f64, st2.count as f64);
        let rows_pair = (c1 * c2) / (st1.distinct_o.max(st2.distinct_o).max(1) as f64);
        let mut cost = c1 + c2 + rows_pair;
        // Order the remaining patterns greedily with the merged trio
        // bound.
        let mut bound = entry_bound.to_vec();
        for v in [s1, s2, o1] {
            bound[v] = true;
        }
        let rest: Vec<usize> = (0..rp.len()).filter(|&x| x != i && x != j).collect();
        let rest_order = self.greedy_order(rp, &bound, &rest);
        let mut rows = rows_pair;
        for &r in &rest_order {
            let sel = rp[r].estimate(&bound, self.stats);
            let nrows = rows * sel;
            cost += rows.max(1.0) + nrows;
            rows = nrows;
            for v in rp[r].slots() {
                bound[v] = true;
            }
        }
        let mut steps = vec![Step::MergeRange { p1, s1, p2, s2, o: o1 }];
        let mut pattern_order = vec![i, j];
        for &r in &rest_order {
            steps.push(Step::Scan {
                s: rp[r].s.unwrap(),
                p: rp[r].p.unwrap(),
                o: rp[r].o.unwrap(),
                at: rp[r].at,
            });
            pattern_order.push(r);
        }
        Some(MergeCandidate { steps, pattern_order, cost, rows, merged: Some((i, j)) })
    }

    /// Lowers a group: BGP ⋈ unions ⟕ optionals, filtered.
    fn lower_group(&mut self, g: &Group, bound: &[bool]) -> BgpPlan {
        let mut plan = self.plan_bgp(&g.patterns, bound);
        let mut bound = bound.to_vec();
        bound.resize(self.slots.names.len(), false);
        for p in &g.patterns {
            for t in [&p.s, &p.p, &p.o] {
                if let Term::Var(v) = t {
                    let s = self.slots.slot(v);
                    if s < bound.len() {
                        bound[s] = true;
                    }
                }
            }
        }
        for (a, b) in &g.unions {
            let pa = self.lower_group(a, &bound);
            let pb = self.lower_group(b, &bound);
            bound.resize(self.slots.names.len(), false);
            plan.explain.push("union {".into());
            plan.explain.extend(pa.explain.iter().map(|l| format!("  {l}")));
            plan.explain.push("} ∪ {".into());
            plan.explain.extend(pb.explain.iter().map(|l| format!("  {l}")));
            plan.explain.push("}".into());
            let cost = plan.cost + plan.rows.max(1.0) * (pa.cost + pb.cost);
            let rows = plan.rows * (pa.rows + pb.rows);
            plan = BgpPlan {
                op: PhysOp::Join(
                    Box::new(plan.op),
                    Box::new(PhysOp::Union(Box::new(pa.op), Box::new(pb.op))),
                ),
                cost,
                rows,
                explain: plan.explain,
            };
        }
        for opt in &g.optionals {
            let po = self.lower_group(opt, &bound);
            bound.resize(self.slots.names.len(), false);
            plan.explain.push("optional {".into());
            plan.explain.extend(po.explain.iter().map(|l| format!("  {l}")));
            plan.explain.push("}".into());
            let cost = plan.cost + plan.rows.max(1.0) * po.cost;
            let rows = plan.rows * po.rows.max(1.0);
            plan = BgpPlan {
                op: PhysOp::LeftJoin(Box::new(plan.op), Box::new(po.op)),
                cost,
                rows,
                explain: plan.explain,
            };
        }
        if !g.filters.is_empty() {
            let conds: Vec<CondC> = g.filters.iter().map(|c| self.compile_cond(c)).collect();
            plan.explain.push(format!(
                "filter {}",
                g.filters.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" ∧ ")
            ));
            plan = BgpPlan {
                op: PhysOp::Filter(Box::new(plan.op), conds),
                cost: plan.cost,
                rows: plan.rows * 0.5f64.powi(g.filters.len() as i32),
                explain: plan.explain,
            };
        }
        plan
    }

    fn compile_cond(&mut self, c: &Condition) -> CondC {
        let mut operand = |t: &Term| match t {
            Term::Var(v) => CondOperand::Slot(self.slots.slot(v)),
            Term::Const(s) => CondOperand::Const { id: self.kb.term(s), text: s.clone() },
        };
        CondC { lhs: operand(&c.lhs), op: c.op, rhs: operand(&c.rhs) }
    }

    fn slot_label(&self, sl: Slot) -> String {
        match sl {
            Slot::Const(id) => self.kb.resolve(id).unwrap_or("?").to_string(),
            Slot::Var(v) => format!("?{}", self.slots.names[v]),
        }
    }

    /// Walks the finished operator tree producing one [`OpInfo`] per
    /// executor trace slot (same layout as [`op_slots`]), re-deriving
    /// row estimates with the bound-variable state each operator sees
    /// at runtime. Returns the estimated rows flowing out of `op`.
    fn annotate(
        &self,
        op: &PhysOp,
        bound: &mut Vec<bool>,
        rows_in: f64,
        out: &mut Vec<OpInfo>,
    ) -> f64 {
        match op {
            PhysOp::Steps(steps) => {
                let mut rows = rows_in;
                for step in steps {
                    match step {
                        Step::Scan { s, p, o, at } => {
                            let fixed = |sl: &Slot| match sl {
                                Slot::Const(_) => true,
                                Slot::Var(v) => bound[*v],
                            };
                            let pred = match p {
                                Slot::Const(id) => Some(*id),
                                Slot::Var(_) => None,
                            };
                            let per = self.stats.estimate(pred, fixed(s), fixed(o));
                            rows *= per;
                            let mut label = format!(
                                "scan `{} {} {}`",
                                self.slot_label(*s),
                                self.slot_label(*p),
                                self.slot_label(*o)
                            );
                            if at.is_some() {
                                label.push_str(" @t");
                            }
                            out.push(OpInfo { label, est_rows: rows });
                            for sl in [s, o] {
                                if let Slot::Var(v) = sl {
                                    bound[*v] = true;
                                }
                            }
                        }
                        Step::MergeRange { p1, s1, p2, s2, o } => {
                            let stat = |p: &TermId| {
                                self.stats.per_pred.get(p).cloned().unwrap_or_default()
                            };
                            let (st1, st2) = (stat(p1), stat(p2));
                            let per = (st1.count as f64 * st2.count as f64)
                                / (st1.distinct_o.max(st2.distinct_o).max(1) as f64);
                            rows *= per;
                            out.push(OpInfo {
                                label: format!(
                                    "merge-range `?{} {} ?{}` ⋈o `?{} {} ?{}`",
                                    self.slots.names[*s1],
                                    self.kb.resolve(*p1).unwrap_or("?"),
                                    self.slots.names[*o],
                                    self.slots.names[*s2],
                                    self.kb.resolve(*p2).unwrap_or("?"),
                                    self.slots.names[*o],
                                ),
                                est_rows: rows,
                            });
                            for v in [s1, s2, o] {
                                bound[*v] = true;
                            }
                        }
                    }
                }
                rows
            }
            PhysOp::Join(l, r) => {
                let lr = self.annotate(l, bound, rows_in, out);
                self.annotate(r, bound, lr, out)
            }
            PhysOp::Union(l, r) => {
                let idx = out.len();
                out.push(OpInfo { label: "union".into(), est_rows: 0.0 });
                let old = bound.clone();
                let mut bl = old.clone();
                let lo = self.annotate(l, &mut bl, rows_in, out);
                let mut br = old.clone();
                let ro = self.annotate(r, &mut br, rows_in, out);
                // A variable is bound after the union only if both
                // branches bind it (or it already was).
                for (i, b) in bound.iter_mut().enumerate() {
                    *b = old[i] || (bl[i] && br[i]);
                }
                let est = lo + ro;
                out[idx].est_rows = est;
                est
            }
            PhysOp::LeftJoin(l, r) => {
                let idx = out.len();
                out.push(OpInfo { label: "optional".into(), est_rows: 0.0 });
                let lo = self.annotate(l, bound, rows_in, out);
                // Optional bindings don't survive as bound downstream.
                let mut br = bound.clone();
                let ro = self.annotate(r, &mut br, lo, out);
                let est = ro.max(lo);
                out[idx].est_rows = est;
                est
            }
            PhysOp::Filter(inner, conds) => {
                let idx = out.len();
                out.push(OpInfo {
                    label: format!(
                        "filter ({} cond{})",
                        conds.len(),
                        if conds.len() == 1 { "" } else { "s" }
                    ),
                    est_rows: 0.0,
                });
                let io = self.annotate(inner, bound, rows_in, out);
                let est = io * 0.5f64.powi(conds.len() as i32);
                out[idx].est_rows = est;
                est
            }
            PhysOp::Empty => 0.0,
        }
    }
}

struct MergeCandidate {
    steps: Vec<Step>,
    pattern_order: Vec<usize>,
    cost: f64,
    rows: f64,
    merged: Option<(usize, usize)>,
}

/// Plans a parsed query against a KB view and its statistics catalog.
pub fn plan<K: KbRead + ?Sized>(
    query: &SelectQuery,
    kb: &K,
    stats: &StatsCatalog,
) -> Result<Plan, QueryError> {
    let mut ctx = Ctx { kb, stats, slots: Slots::new() };
    // Intern the group's variables first, in sorted order, so `SELECT *`
    // column order is independent of pattern order.
    for v in query.group.variables() {
        ctx.slots.slot(v);
    }
    let lowered = ctx.lower_group(&query.group, &vec![false; ctx.slots.names.len()]);

    // Projection.
    let aggregate = query.is_aggregate();
    let cols: Vec<Col> = match &query.projection {
        None => {
            if aggregate {
                return Err(QueryError::Plan("GROUP BY requires an explicit projection".into()));
            }
            query
                .group
                .variables()
                .into_iter()
                .map(|v| Col::Var { name: v.to_string(), slot: ctx.slots.slot(v) })
                .collect()
        }
        Some(items) => items
            .iter()
            .map(|item| match item {
                ProjItem::Var(v) => Col::Var { name: v.clone(), slot: ctx.slots.slot(v) },
                ProjItem::Count { arg, alias } => {
                    Col::Count { name: alias.clone(), arg: arg.as_ref().map(|v| ctx.slots.slot(v)) }
                }
            })
            .collect(),
    };
    if aggregate {
        for col in &cols {
            if let Col::Var { name, .. } = col {
                if !query.group_by.iter().any(|g| g == name) {
                    return Err(QueryError::Plan(format!(
                        "projected variable ?{name} must appear in GROUP BY"
                    )));
                }
            }
        }
    }
    let group_by: Vec<usize> = query.group_by.iter().map(|v| ctx.slots.slot(v)).collect();

    // ORDER BY keys must reference projected columns.
    let mut order_by = Vec::with_capacity(query.order_by.len());
    for key in &query.order_by {
        let idx = cols.iter().position(|c| c.name() == key.var).ok_or_else(|| {
            QueryError::Plan(format!("ORDER BY key ?{} is not a projected column", key.var))
        })?;
        order_by.push((idx, key.desc));
    }

    let mut explain = lowered.explain;
    if aggregate {
        explain.push(format!(
            "aggregate ({} group key{})",
            group_by.len(),
            if group_by.len() == 1 { "" } else { "s" }
        ));
    }
    let mut footprint = Footprint::default();
    collect_footprint(&query.group, kb, &mut footprint);
    footprint.preds.sort_unstable();
    footprint.preds.dedup();
    let mut ops = Vec::new();
    let mut annotate_bound = vec![false; ctx.slots.names.len()];
    ctx.annotate(&lowered.op, &mut annotate_bound, 1.0, &mut ops);
    Ok(Plan {
        nvars: ctx.slots.names.len(),
        root: lowered.op,
        cols,
        distinct: query.distinct,
        group_by,
        aggregate,
        order_by,
        limit: query.limit,
        offset: query.offset,
        est_cost: lowered.cost,
        explain,
        ops,
        footprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use kb_store::KbBuilder;

    fn skewed_snap() -> kb_store::KbSnapshot {
        let mut b = KbBuilder::new();
        // rel_big: 600 facts; rel_rare: 3 facts.
        for i in 0..600 {
            b.assert_str(&format!("s{}", i % 100), "rel_big", &format!("o{}", i % 50));
        }
        for i in 0..3 {
            b.assert_str(&format!("s{i}"), "rel_rare", &format!("s{}", i + 1));
        }
        b.freeze()
    }

    #[test]
    fn planner_starts_with_the_selective_pattern() {
        let snap = skewed_snap();
        let stats = StatsCatalog::build(&snap);
        // Text order puts the big relation first; the planner must not.
        let q = parse("?x rel_big ?y . ?a rel_rare ?x").unwrap();
        let p = plan(&q, &snap, &stats).unwrap();
        let PhysOp::Steps(steps) = &p.root else { panic!("expected steps") };
        let rare = snap.term("rel_rare").unwrap();
        assert!(
            matches!(&steps[0], Step::Scan { p: Slot::Const(pid), .. } if *pid == rare),
            "first step should scan rel_rare: {steps:?}"
        );
    }

    #[test]
    fn unknown_constants_plan_to_empty() {
        let snap = skewed_snap();
        let stats = StatsCatalog::build(&snap);
        let q = parse("?x rel_big Atlantis").unwrap();
        let p = plan(&q, &snap, &stats).unwrap();
        assert_eq!(p.root, PhysOp::Empty);
        assert_eq!(p.estimated_cost(), 0.0);
    }

    #[test]
    fn shared_object_pair_uses_merge_range() {
        let snap = skewed_snap();
        let stats = StatsCatalog::build(&snap);
        let q = parse("?a rel_big ?c . ?b rel_big ?c").unwrap();
        let p = plan(&q, &snap, &stats).unwrap();
        let PhysOp::Steps(steps) = &p.root else { panic!("expected steps") };
        assert!(
            matches!(steps[0], Step::MergeRange { .. }),
            "expected a merge-range first step: {steps:?}"
        );
    }

    #[test]
    fn order_by_must_be_projected() {
        let snap = skewed_snap();
        let stats = StatsCatalog::build(&snap);
        let q = parse("SELECT ?a WHERE { ?a rel_big ?b } ORDER BY ?zzz").unwrap();
        assert!(matches!(plan(&q, &snap, &stats), Err(QueryError::Plan(_))));
    }

    #[test]
    fn aggregate_projection_is_validated() {
        let snap = skewed_snap();
        let stats = StatsCatalog::build(&snap);
        let q = parse("SELECT ?b COUNT(?a) AS ?n WHERE { ?a rel_big ?b } GROUP BY ?a").unwrap();
        assert!(matches!(plan(&q, &snap, &stats), Err(QueryError::Plan(_))));
    }

    #[test]
    fn footprint_scopes_invalidation_to_touched_predicates() {
        let snap = skewed_snap();
        let stats = StatsCatalog::build(&snap);
        let big = snap.term("rel_big").unwrap();
        let rare = snap.term("rel_rare").unwrap();

        let q = parse("?x rel_big ?y . ?a rel_rare ?x").unwrap();
        let p = plan(&q, &snap, &stats).unwrap();
        assert!(!p.footprint().is_wildcard());
        assert!(p.footprint().is_touched_by(&[big]));
        assert!(p.footprint().is_touched_by(&[rare]));
        let other = TermId(9999);
        assert!(!p.footprint().is_touched_by(&[other]));

        // A variable in predicate position depends on everything.
        let q = parse("?x ?r ?y").unwrap();
        let p = plan(&q, &snap, &stats).unwrap();
        assert!(p.footprint().is_wildcard());
        assert!(p.footprint().is_touched_by(&[other]));

        // An unknown constant anywhere makes the plan wildcard: a delta
        // interning `Atlantis` could turn this Empty plan non-empty.
        let q = parse("?x rel_big Atlantis").unwrap();
        let p = plan(&q, &snap, &stats).unwrap();
        assert!(p.footprint().is_wildcard());
    }

    #[test]
    fn routing_decision_detects_subject_bound_queries() {
        let bound = |text: &str| match routing_decision(&parse(text).unwrap()) {
            RoutingDecision::SubjectBound { subject } => Some(subject),
            RoutingDecision::Scatter => None,
        };
        // One constant subject everywhere — patterns, unions, optionals.
        assert_eq!(bound("s1 rel_big ?y"), Some("s1".into()));
        assert_eq!(bound("s1 rel_big ?y . s1 rel_rare ?z"), Some("s1".into()));
        assert_eq!(
            bound("SELECT ?y WHERE { { s1 rel_big ?y } UNION { s1 rel_rare ?y } }"),
            Some("s1".into())
        );
        assert_eq!(
            bound("SELECT ?y ?z WHERE { s1 rel_big ?y OPTIONAL { s1 rel_rare ?z } }"),
            Some("s1".into())
        );
        // A constant the store never interned is still subject-bound:
        // it routes to the partition that would own it.
        assert_eq!(bound("Atlantis rel_big ?y"), Some("Atlantis".into()));
        // Variable subject, disagreeing subjects, or no patterns at all.
        assert_eq!(bound("?x rel_big ?y"), None);
        assert_eq!(bound("s1 rel_big ?y . s2 rel_big ?z"), None);
        assert_eq!(bound("SELECT ?y WHERE { { s1 rel_big ?y } UNION { s2 rel_big ?y } }"), None);
        assert_eq!(bound("SELECT ?y WHERE { s1 rel_big ?y OPTIONAL { ?x rel_rare ?y } }"), None);
    }
}
