//! Cardinality statistics harvested from a KB view — the planner's
//! cost-model input.
//!
//! Per-predicate fact counts come straight from the snapshot's POS
//! offset buckets (`count_matching` on a bound-predicate pattern is
//! `O(1)` there); distinct-object counts stream the same bucket, which
//! the index contract sorts by `(o, s)`, so distinct objects are just
//! run boundaries; distinct subjects sort the bucket's subject column
//! once. Building the catalog is `O(n log n)` worst case and done once
//! per snapshot — the serving layer shares one catalog across all
//! queries against a generation.

use std::collections::HashMap;

use kb_store::{KbRead, TermId, TriplePattern};

/// Statistics for one predicate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredStat {
    /// Live facts with this predicate.
    pub count: usize,
    /// Distinct subjects among them.
    pub distinct_s: usize,
    /// Distinct objects among them.
    pub distinct_o: usize,
}

/// Per-predicate and whole-KB cardinality statistics.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    /// Total live facts.
    pub total: usize,
    /// Per-predicate stats.
    pub per_pred: HashMap<TermId, PredStat>,
    /// Distinct subjects across the whole KB.
    pub distinct_s: usize,
    /// Distinct objects across the whole KB.
    pub distinct_o: usize,
}

impl StatsCatalog {
    /// Harvests the catalog from any [`KbRead`] view.
    pub fn build<K: KbRead + ?Sized>(kb: &K) -> Self {
        // One cheap insertion-order pass discovers the predicate set and
        // the global distinct-subject/object counts.
        let mut preds: Vec<TermId> = Vec::new();
        let mut seen_p: HashMap<TermId, ()> = HashMap::new();
        let mut subjects: Vec<TermId> = Vec::with_capacity(kb.len());
        let mut objects: Vec<TermId> = Vec::with_capacity(kb.len());
        for f in kb.facts() {
            if seen_p.insert(f.triple.p, ()).is_none() {
                preds.push(f.triple.p);
            }
            subjects.push(f.triple.s);
            objects.push(f.triple.o);
        }
        // The two global sorts are independent and sized by the whole
        // KB; overlapping them shaves a visible slice off cold start.
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                objects.sort_unstable();
                objects.dedup();
            });
            subjects.sort_unstable();
            subjects.dedup();
            h.join().expect("object sort");
        });

        // Per predicate: the POS bucket is one contiguous range sorted
        // by (o, s) — count is O(1), distinct objects are run
        // boundaries, distinct subjects need one sort of the bucket.
        let mut per_pred = HashMap::with_capacity(preds.len());
        for p in preds {
            let pattern = TriplePattern::with_p(p);
            let count = kb.count_matching(&pattern);
            let mut distinct_o = 0usize;
            let mut last_o: Option<TermId> = None;
            let mut bucket_s: Vec<TermId> = Vec::with_capacity(count);
            for t in kb.triples_iter(&pattern) {
                if last_o != Some(t.o) {
                    distinct_o += 1;
                    last_o = Some(t.o);
                }
                bucket_s.push(t.s);
            }
            bucket_s.sort_unstable();
            bucket_s.dedup();
            per_pred.insert(p, PredStat { count, distinct_s: bucket_s.len(), distinct_o });
        }
        StatsCatalog {
            total: kb.len(),
            per_pred,
            distinct_s: subjects.len(),
            distinct_o: objects.len(),
        }
    }

    /// Folds one [`DeltaSegment`] into the catalog without rescanning
    /// the base: net-new facts bump the per-predicate and total counts
    /// exactly; tombstones subtract exactly; shadow entries change no
    /// cardinality. Distinct-value counts are maintained as *sums of
    /// per-segment distincts* — an upper bound (a delta may repeat a
    /// subject the base already knows), which only skews the uniformity
    /// division slightly and keeps the merge `O(delta)` instead of
    /// `O(base)`. The next full rebuild/compaction restores exactness.
    ///
    /// [`DeltaSegment`]: kb_store::DeltaSegment
    pub fn merged_with_delta(&self, delta: &kb_store::DeltaSegment) -> Self {
        let mut cat = self.clone();
        // Group the net-new facts per predicate; count delta-local
        // distincts in one sort each.
        let mut per_new: HashMap<TermId, (usize, Vec<TermId>, Vec<TermId>)> = HashMap::new();
        let mut new_s: Vec<TermId> = Vec::new();
        let mut new_o: Vec<TermId> = Vec::new();
        for f in delta.new_facts_iter() {
            let e = per_new.entry(f.triple.p).or_default();
            e.0 += 1;
            e.1.push(f.triple.s);
            e.2.push(f.triple.o);
            new_s.push(f.triple.s);
            new_o.push(f.triple.o);
            cat.total += 1;
        }
        for (p, (count, mut ss, mut oo)) in per_new {
            ss.sort_unstable();
            ss.dedup();
            oo.sort_unstable();
            oo.dedup();
            let st = cat.per_pred.entry(p).or_insert(PredStat {
                count: 0,
                distinct_s: 0,
                distinct_o: 0,
            });
            st.count += count;
            st.distinct_s += ss.len();
            st.distinct_o += oo.len();
        }
        for f in delta.tombstones_iter() {
            cat.total = cat.total.saturating_sub(1);
            if let Some(st) = cat.per_pred.get_mut(&f.triple.p) {
                st.count = st.count.saturating_sub(1);
            }
        }
        // Global distincts: only terms allocated by this delta are
        // provably unseen; older ids may already be counted, so they
        // are skipped (keeps the bound tight-ish in both directions).
        let first = delta.first_term();
        for terms in [&mut new_s, &mut new_o] {
            terms.retain(|t| *t >= first);
            terms.sort_unstable();
            terms.dedup();
        }
        cat.distinct_s += new_s.len();
        cat.distinct_o += new_o.len();
        cat
    }

    /// Estimated matches for a scan of `pred` (a constant predicate id,
    /// or `None` for an unbound/variable predicate position) given
    /// whether the subject/object positions are fixed (a constant or an
    /// already-bound variable) at scan time.
    ///
    /// Uses the classic uniformity assumption: fixing a component
    /// divides the range cardinality by its distinct count.
    pub fn estimate(&self, pred: Option<TermId>, s_fixed: bool, o_fixed: bool) -> f64 {
        let (base, ds, do_) = match pred {
            Some(p) => match self.per_pred.get(&p) {
                // A constant predicate the KB has never seen: the scan
                // is empty, whatever else is bound.
                None => return 0.0,
                Some(st) => (st.count as f64, st.distinct_s as f64, st.distinct_o as f64),
            },
            None => (self.total as f64, self.distinct_s as f64, self.distinct_o as f64),
        };
        let mut est = base;
        if s_fixed {
            est /= ds.max(1.0);
        }
        if o_fixed {
            est /= do_.max(1.0);
        }
        est.max(if base == 0.0 { 0.0 } else { f64::MIN_POSITIVE })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KbBuilder;

    #[test]
    fn catalog_counts_are_exact() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "r", "x");
        b.assert_str("b", "r", "x");
        b.assert_str("b", "r", "y");
        b.assert_str("c", "q", "y");
        let snap = b.freeze();
        let cat = StatsCatalog::build(&snap);
        assert_eq!(cat.total, 4);
        assert_eq!(cat.distinct_s, 3);
        assert_eq!(cat.distinct_o, 2);
        let r = snap.term("r").unwrap();
        let q = snap.term("q").unwrap();
        assert_eq!(cat.per_pred[&r], PredStat { count: 3, distinct_s: 2, distinct_o: 2 });
        assert_eq!(cat.per_pred[&q], PredStat { count: 1, distinct_s: 1, distinct_o: 1 });
    }

    #[test]
    fn estimates_shrink_with_bound_components() {
        let mut b = KbBuilder::new();
        for i in 0..10 {
            b.assert_str(&format!("s{i}"), "r", &format!("o{}", i % 2));
        }
        let snap = b.freeze();
        let cat = StatsCatalog::build(&snap);
        let r = snap.term("r").unwrap();
        assert_eq!(cat.estimate(Some(r), false, false), 10.0);
        assert_eq!(cat.estimate(Some(r), true, false), 1.0);
        assert_eq!(cat.estimate(Some(r), false, true), 5.0);
        // Unknown predicate: provably empty.
        assert_eq!(cat.estimate(Some(kb_store::TermId(9999)), false, false), 0.0);
        // Variable predicate: whole-KB stats.
        assert_eq!(cat.estimate(None, false, false), 10.0);
    }
}
