//! Parser for the query language — text to [`SelectQuery`], with no KB
//! in sight: constants stay strings and resolve to term ids only at
//! plan time, so parsed queries (and the plan cache keyed on their
//! canonical form) are independent of any particular snapshot.
//!
//! ## Grammar
//!
//! ```text
//! query      := select | elements                  (bare form = SELECT * over the elements)
//! select     := SELECT [DISTINCT] proj WHERE '{' elements '}' modifier*
//! proj       := '*' | item+
//! item       := ?var | COUNT '(' ('*' | ?var) ')' [AS ?var]
//! elements   := element ( ['.'] element )*
//! element    := pattern
//!             | FILTER '(' operand cmp operand ')'
//!             | OPTIONAL '{' elements '}'
//!             | '{' elements '}' UNION '{' elements '}'
//! pattern    := term term term [ '@' timepoint ]
//! term       := ?var | constant
//! cmp        := '=' | '!=' | '<' | '<=' | '>' | '>='
//! modifier   := GROUP BY ?var+ | ORDER BY key+ | LIMIT n | OFFSET n
//! key        := ?var | ASC '(' ?var ')' | DESC '(' ?var ')'
//! timepoint  := YYYY[-MM[-DD]]
//! ```
//!
//! Keywords are case-insensitive and reserved (a constant cannot be
//! named `filter`). The bare form subsumes the legacy
//! `kb_store::query` compact syntax (`?p bornIn ?c . ?c locatedIn ?n`).

use kb_store::TimePoint;

use crate::ast::{CmpOp, Condition, Group, OrderKey, Pattern, ProjItem, SelectQuery, Term};
use crate::error::QueryError;

/// Lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// `{`, `}`, `(`, `)`, `.` or `@`.
    Punct(char),
    /// A comparison operator.
    Op(CmpOp),
    /// `?name`.
    Var(String),
    /// Any other word (constant or keyword).
    Word(String),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Punct(c) => format!("{c:?}"),
            Tok::Op(op) => format!("{:?}", op.symbol()),
            Tok::Var(v) => format!("?{v}"),
            Tok::Word(w) => format!("{w:?}"),
        }
    }
}

/// Characters that terminate a word.
fn is_reserved(c: char) -> bool {
    c.is_whitespace() || matches!(c, '{' | '}' | '(' | ')' | '.' | '@' | '<' | '>' | '=' | '!')
}

fn tokenize(text: &str) -> Result<Vec<Tok>, QueryError> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if matches!(c, '{' | '}' | '(' | ')' | '.' | '@') {
            chars.next();
            toks.push(Tok::Punct(c));
        } else if matches!(c, '<' | '>' | '=' | '!') {
            chars.next();
            let eq = chars.peek() == Some(&'=');
            if eq {
                chars.next();
            }
            let op = match (c, eq) {
                ('=', false) => CmpOp::Eq,
                ('!', true) => CmpOp::Ne,
                ('<', false) => CmpOp::Lt,
                ('<', true) => CmpOp::Le,
                ('>', false) => CmpOp::Gt,
                ('>', true) => CmpOp::Ge,
                _ => return Err(QueryError::parse(toks.len(), format!("stray {c:?}"))),
            };
            toks.push(Tok::Op(op));
        } else if c == '?' {
            chars.next();
            let mut name = String::new();
            while let Some(&c) = chars.peek() {
                if is_reserved(c) || c == '?' {
                    break;
                }
                name.push(c);
                chars.next();
            }
            if name.is_empty() {
                return Err(QueryError::parse(toks.len(), "empty variable name"));
            }
            toks.push(Tok::Var(name));
        } else {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if is_reserved(c) || c == '?' {
                    break;
                }
                word.push(c);
                chars.next();
            }
            toks.push(Tok::Word(word));
        }
    }
    Ok(toks)
}

/// Recursive-descent parser over the token stream.
struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::parse(self.pos, message)
    }

    /// Whether the next token is the (case-insensitive) keyword.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    /// Consumes the keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, got {}", self.describe_next())))
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), QueryError> {
        match self.peek() {
            Some(Tok::Punct(p)) if *p == c => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {c:?}, got {}", self.describe_next()))),
        }
    }

    fn describe_next(&self) -> String {
        self.peek().map_or_else(|| "end of query".into(), Tok::describe)
    }

    fn expect_var(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(v),
            other => Err(QueryError::parse(
                self.pos.saturating_sub(1),
                format!(
                    "expected a ?variable, got {}",
                    other.map_or_else(|| "end of query".into(), |t| t.describe())
                ),
            )),
        }
    }

    /// A pattern/filter operand: variable or constant word (keywords
    /// are reserved and rejected here).
    fn term(&mut self) -> Result<Term, QueryError> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(Term::Var(v)),
            Some(Tok::Word(w)) => {
                if RESERVED.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                    Err(QueryError::parse(
                        self.pos - 1,
                        format!("{w:?} is a reserved keyword, not a term"),
                    ))
                } else {
                    Ok(Term::Const(w))
                }
            }
            other => Err(QueryError::parse(
                self.pos.saturating_sub(1),
                format!(
                    "expected a term, got {}",
                    other.map_or_else(|| "end of query".into(), |t| t.describe())
                ),
            )),
        }
    }

    /// Group elements until `}` (when `braced`) or end of input.
    fn group(&mut self, braced: bool) -> Result<Group, QueryError> {
        let mut group = Group::default();
        loop {
            // Optional `.` separators between elements.
            while matches!(self.peek(), Some(Tok::Punct('.'))) {
                self.pos += 1;
            }
            match self.peek() {
                None => break,
                Some(Tok::Punct('}')) if braced => break,
                Some(Tok::Punct('{')) => {
                    self.pos += 1;
                    let a = self.group(true)?;
                    self.expect_punct('}')?;
                    self.expect_keyword("UNION")?;
                    self.expect_punct('{')?;
                    let b = self.group(true)?;
                    self.expect_punct('}')?;
                    group.unions.push((a, b));
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.pos += 1;
                    self.expect_punct('(')?;
                    let lhs = self.term()?;
                    let op = match self.next() {
                        Some(Tok::Op(op)) => op,
                        other => {
                            return Err(QueryError::parse(
                                self.pos.saturating_sub(1),
                                format!(
                                    "expected a comparison operator, got {}",
                                    other.map_or_else(|| "end of query".into(), |t| t.describe())
                                ),
                            ))
                        }
                    };
                    let rhs = self.term()?;
                    self.expect_punct(')')?;
                    group.filters.push(Condition { lhs, op, rhs });
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.pos += 1;
                    self.expect_punct('{')?;
                    let opt = self.group(true)?;
                    self.expect_punct('}')?;
                    group.optionals.push(opt);
                }
                _ => {
                    let s = self.term()?;
                    let p = self.term()?;
                    let o = self.term()?;
                    let at = if matches!(self.peek(), Some(Tok::Punct('@'))) {
                        self.pos += 1;
                        match self.next() {
                            Some(Tok::Word(w)) => Some(TimePoint::parse(&w).ok_or_else(|| {
                                QueryError::parse(
                                    self.pos - 1,
                                    format!("bad time point {w:?} (want YYYY[-MM[-DD]])"),
                                )
                            })?),
                            _ => {
                                return Err(self.err("expected a time point after '@'"));
                            }
                        }
                    } else {
                        None
                    };
                    group.patterns.push(Pattern { s, p, o, at });
                }
            }
        }
        if group.is_empty() {
            return Err(self.err("empty group pattern"));
        }
        Ok(group)
    }

    fn projection(&mut self) -> Result<Option<Vec<ProjItem>>, QueryError> {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == "*") {
            self.pos += 1;
            return Ok(None);
        }
        let mut items = Vec::new();
        loop {
            if self.at_keyword("WHERE") {
                break;
            }
            match self.peek() {
                Some(Tok::Var(_)) => {
                    let v = self.expect_var()?;
                    items.push(ProjItem::Var(v));
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("COUNT") => {
                    self.pos += 1;
                    self.expect_punct('(')?;
                    let arg = match self.peek() {
                        Some(Tok::Word(w)) if w == "*" => {
                            self.pos += 1;
                            None
                        }
                        _ => Some(self.expect_var()?),
                    };
                    self.expect_punct(')')?;
                    let alias = if self.eat_keyword("AS") {
                        self.expect_var()?
                    } else {
                        // Default alias: `?n` for COUNT(*), `?n_x` for COUNT(?x).
                        match &arg {
                            None => "n".to_string(),
                            Some(a) => format!("n_{a}"),
                        }
                    };
                    items.push(ProjItem::Count { arg, alias });
                }
                _ => {
                    return Err(self.err(format!(
                        "expected a projection item or WHERE, got {}",
                        self.describe_next()
                    )))
                }
            }
        }
        if items.is_empty() {
            return Err(self.err("empty projection"));
        }
        Ok(Some(items))
    }

    fn number(&mut self) -> Result<usize, QueryError> {
        match self.next() {
            Some(Tok::Word(w)) => w.parse().map_err(|_| {
                QueryError::parse(self.pos - 1, format!("expected a number, got {w:?}"))
            }),
            other => Err(QueryError::parse(
                self.pos.saturating_sub(1),
                format!(
                    "expected a number, got {}",
                    other.map_or_else(|| "end of query".into(), |t| t.describe())
                ),
            )),
        }
    }

    fn modifiers(&mut self, q: &mut SelectQuery) -> Result<(), QueryError> {
        loop {
            if self.eat_keyword("GROUP") {
                self.expect_keyword("BY")?;
                q.group_by.push(self.expect_var()?);
                while matches!(self.peek(), Some(Tok::Var(_))) {
                    q.group_by.push(self.expect_var()?);
                }
            } else if self.eat_keyword("ORDER") {
                self.expect_keyword("BY")?;
                loop {
                    match self.peek() {
                        Some(Tok::Var(_)) => {
                            q.order_by.push(OrderKey { var: self.expect_var()?, desc: false });
                        }
                        Some(Tok::Word(w))
                            if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                        {
                            let desc = w.eq_ignore_ascii_case("DESC");
                            self.pos += 1;
                            self.expect_punct('(')?;
                            let var = self.expect_var()?;
                            self.expect_punct(')')?;
                            q.order_by.push(OrderKey { var, desc });
                        }
                        _ => break,
                    }
                }
                if q.order_by.is_empty() {
                    return Err(self.err("ORDER BY needs at least one key"));
                }
            } else if self.eat_keyword("LIMIT") {
                q.limit = Some(self.number()?);
            } else if self.eat_keyword("OFFSET") {
                q.offset = self.number()?;
            } else {
                break;
            }
        }
        Ok(())
    }
}

/// Reserved keywords (rejected as bare constants).
const RESERVED: &[&str] = &[
    "SELECT", "DISTINCT", "WHERE", "FILTER", "OPTIONAL", "UNION", "GROUP", "ORDER", "BY", "ASC",
    "DESC", "LIMIT", "OFFSET", "COUNT", "AS",
];

/// Parses query text: either a full `SELECT` form or the bare
/// conjunctive form, which desugars to `SELECT *` with no modifiers.
pub fn parse(text: &str) -> Result<SelectQuery, QueryError> {
    let toks = tokenize(text)?;
    if toks.is_empty() {
        return Err(QueryError::parse(0, "empty query"));
    }
    let mut p = Parser { toks, pos: 0 };
    let query = if p.at_keyword("SELECT") {
        p.pos += 1;
        let distinct = p.eat_keyword("DISTINCT");
        let projection = p.projection()?;
        p.expect_keyword("WHERE")?;
        p.expect_punct('{')?;
        let group = p.group(true)?;
        p.expect_punct('}')?;
        let mut q = SelectQuery { distinct, projection, ..SelectQuery::star(Group::default()) };
        q.group = group;
        p.modifiers(&mut q)?;
        q
    } else {
        SelectQuery::star(p.group(false)?)
    };
    if p.pos < p.toks.len() {
        return Err(p.err(format!("trailing input: {}", p.describe_next())));
    }
    Ok(query)
}

/// Parses and re-renders the query in canonical form — the cache key of
/// the serving layer, so spelling variants share plans and results.
pub fn normalize(text: &str) -> Result<String, QueryError> {
    Ok(parse(text)?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_form_parses_like_legacy() {
        let q = parse("?p bornIn ?c . ?c locatedIn Norland").unwrap();
        assert!(q.projection.is_none());
        assert_eq!(q.group.patterns.len(), 2);
        assert_eq!(q.group.patterns[1].o, Term::Const("Norland".into()));
    }

    #[test]
    fn select_with_modifiers_round_trips() {
        let text = "SELECT DISTINCT ?p COUNT(?c) AS ?n WHERE { ?p bornIn ?c . \
                    FILTER(?p != ?c) } GROUP BY ?p ORDER BY DESC(?n) LIMIT 10 OFFSET 2";
        let q = parse(text).unwrap();
        assert_eq!(q.to_string(), text);
        let again = parse(&q.to_string()).unwrap();
        assert_eq!(q, again);
    }

    #[test]
    fn optional_union_and_at_parse() {
        let text = "SELECT * WHERE { ?p worksAt ?co @1999 . { ?p bornIn ?c } UNION \
                    { ?p citizenOf ?c } . OPTIONAL { ?p marriedTo ?q } }";
        let q = parse(text).unwrap();
        assert_eq!(q.group.patterns.len(), 1);
        assert!(q.group.patterns[0].at.is_some());
        assert_eq!(q.group.unions.len(), 1);
        assert_eq!(q.group.optionals.len(), 1);
        assert_eq!(parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn keywords_are_case_insensitive_and_normalize() {
        let a = normalize("select ?x where { ?x bornIn ?y } limit 5").unwrap();
        let b = normalize("SELECT ?x  WHERE  {?x bornIn ?y} LIMIT 5").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "SELECT ?x WHERE { ?x bornIn ?y } LIMIT 5");
    }

    #[test]
    fn errors_are_structured() {
        assert!(parse("").is_err());
        assert!(parse("one two").is_err());
        assert!(parse("SELECT WHERE { ?a ?b ?c }").is_err());
        assert!(parse("?a FILTER ?c").is_err());
        assert!(parse("SELECT * WHERE { ?a r ?b } LIMIT banana").is_err());
        assert!(parse("?a r ?b extra_token_tail ?x ?y . junk").is_err());
        assert!(parse("?a r ?b @notadate").is_err());
        let err = parse("?p bornIn ?").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn count_gets_default_alias() {
        let q = parse("SELECT COUNT(*) WHERE { ?a ?r ?b }").unwrap();
        let Some(items) = &q.projection else { panic!() };
        assert_eq!(items[0], ProjItem::Count { arg: None, alias: "n".into() });
        let q = parse("SELECT COUNT(?a) WHERE { ?a ?r ?b }").unwrap();
        let Some(items) = &q.projection else { panic!() };
        assert_eq!(items[0], ProjItem::Count { arg: Some("a".into()), alias: "n_a".into() });
    }
}
