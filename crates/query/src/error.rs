//! Error type shared by parsing, planning and execution.

use std::error::Error;
use std::fmt;

/// Errors raised by the query subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse {
        /// 0-based token index where the problem was detected.
        token: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed query is well-formed but cannot be planned (e.g. an
    /// `ORDER BY` key that is not a projected column).
    Plan(String),
    /// The underlying store failed while faulting lazily loaded
    /// segment regions (see [`SegmentedSnapshot::prefault`]) — e.g. a
    /// cold region whose checksum no longer matches the manifest.
    ///
    /// [`SegmentedSnapshot::prefault`]: kb_store::KbRead::prefault
    Store(kb_store::StoreError),
}

impl QueryError {
    pub(crate) fn parse(token: usize, message: impl Into<String>) -> Self {
        QueryError::Parse { token, message: message.into() }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { token, message } => {
                write!(f, "parse error at token {token}: {message}")
            }
            QueryError::Plan(message) => write!(f, "planning error: {message}"),
            QueryError::Store(err) => write!(f, "store error: {err}"),
        }
    }
}

impl From<kb_store::StoreError> for QueryError {
    fn from(err: kb_store::StoreError) -> Self {
        QueryError::Store(err)
    }
}

impl Error for QueryError {}
